//! Per-task inference state: the matrix `M^{(i)}`, its unnormalized
//! numerator `M̂^{(i)}`, and the probabilistic truth `s_i`.

use docs_types::{prob, ChoiceIndex, DomainVector, WorkerId};
use serde::Serialize;

/// Worker qualities are probabilities; products in Eq. 3 divide by `1 - q`
/// and by `q`, so both are kept away from the exact endpoints.
const Q_EPS: f64 = 1e-6;

/// Clamps a quality value into `[Q_EPS, 1 - Q_EPS]` for use inside
/// likelihood products.
#[inline]
pub fn clamp_quality(q: f64) -> f64 {
    q.clamp(Q_EPS, 1.0 - Q_EPS)
}

/// The per-task state Section 4.2 stores in the database: the `m × ℓ`
/// matrix `M^{(i)}` (each row `M^{(i)}_{k,•}` is the truth distribution
/// conditioned on the task's true domain being `d_k`), the numerator matrix
/// `M̂^{(i)}` that makes single-answer updates O(m·ℓ), and the probabilistic
/// truth `s_i = r^{t_i} × M^{(i)}`.
#[derive(Debug, Clone, Serialize)]
pub struct TaskState {
    m: usize,
    num_choices: usize,
    /// Numerator of Eq. 3, row-major `m × ℓ`: products of per-worker answer
    /// likelihoods. An empty answer set gives the all-ones matrix.
    m_hat: Vec<f64>,
    /// Row-normalized `M^{(i)}`, row-major `m × ℓ`.
    m_matrix: Vec<f64>,
    /// Probabilistic truth `s_i`, length `ℓ`.
    s: Vec<f64>,
    /// Cached `H(s_i)`: maintained whenever `s` changes (answer ingestion,
    /// full re-inference), so the OTA benefit scan reads it in O(1) per task
    /// instead of recomputing the entropy of unchanged posteriors on every
    /// worker request.
    s_entropy: f64,
}

/// Hand-written deserialization: `s_entropy` is *derived* state, so it is
/// recomputed from the stored `s` rather than read back — snapshots written
/// before the cache existed still load, and a stale or tampered stored
/// value can never skew the OTA benefit function.
impl serde::Deserialize for TaskState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::DeError::expected("map for TaskState", v))?;
        let field = |name: &str| serde::map_get(map, name).unwrap_or(&serde::Value::Null);
        let s: Vec<f64> =
            serde::Deserialize::from_value(field("s")).map_err(|e| e.in_field("s"))?;
        Ok(TaskState {
            m: serde::Deserialize::from_value(field("m")).map_err(|e| e.in_field("m"))?,
            num_choices: serde::Deserialize::from_value(field("num_choices"))
                .map_err(|e| e.in_field("num_choices"))?,
            m_hat: serde::Deserialize::from_value(field("m_hat"))
                .map_err(|e| e.in_field("m_hat"))?,
            m_matrix: serde::Deserialize::from_value(field("m_matrix"))
                .map_err(|e| e.in_field("m_matrix"))?,
            s_entropy: prob::entropy(&s),
            s,
        })
    }
}

impl TaskState {
    /// Fresh state for a task with `ℓ` choices over `m` domains: no answers
    /// yet, so every row of `M` (and `s`) is uniform — the paper's uniform
    /// prior assumption.
    pub fn new(m: usize, num_choices: usize) -> Self {
        assert!(m >= 1 && num_choices >= 2);
        let s = prob::uniform(num_choices);
        TaskState {
            m,
            num_choices,
            m_hat: vec![1.0; m * num_choices],
            m_matrix: vec![1.0 / num_choices as f64; m * num_choices],
            s_entropy: prob::entropy(&s),
            s,
        }
    }

    /// Number of domains `m`.
    #[inline]
    pub fn num_domains(&self) -> usize {
        self.m
    }

    /// Number of choices `ℓ`.
    #[inline]
    pub fn num_choices(&self) -> usize {
        self.num_choices
    }

    /// `M^{(i)}_{k,j}`.
    #[inline]
    pub fn m_entry(&self, k: usize, j: usize) -> f64 {
        self.m_matrix[k * self.num_choices + j]
    }

    /// Row `M^{(i)}_{k,•}`.
    #[inline]
    pub fn m_row(&self, k: usize) -> &[f64] {
        &self.m_matrix[k * self.num_choices..(k + 1) * self.num_choices]
    }

    /// The probabilistic truth `s_i`.
    #[inline]
    pub fn s(&self) -> &[f64] {
        &self.s
    }

    /// Cached entropy `H(s_i)` of the probabilistic truth.
    ///
    /// Equal to `prob::entropy(self.s())` at all times; kept up to date by
    /// [`TaskState::recompute_s`] so per-request hot paths (the benefit
    /// function of Definition 5) avoid the O(ℓ) log-sum per task.
    #[inline]
    pub fn entropy(&self) -> f64 {
        self.s_entropy
    }

    /// The inferred truth `v*_i = argmax_j s_{i,j}`.
    pub fn truth(&self) -> ChoiceIndex {
        prob::argmax(&self.s)
    }

    /// Per-worker answer likelihood (Eq. 4):
    /// `Pr(v^w_i | o_i = k, v*_i = j) = q_k^{1{v=j}} · ((1-q_k)/(ℓ-1))^{1{v≠j}}`.
    #[inline]
    fn likelihood(qk: f64, answered: ChoiceIndex, truth_j: usize, num_choices: usize) -> f64 {
        let q = clamp_quality(qk);
        if answered == truth_j {
            q
        } else {
            (1.0 - q) / (num_choices as f64 - 1.0)
        }
    }

    /// Recomputes `M̂`, `M` and `s` from scratch for a given answer set and
    /// quality lookup — Step 1 of the iterative approach (Eqs. 2–4).
    ///
    /// `quality_of` must return the answering worker's length-`m` quality
    /// vector.
    pub fn recompute<'q>(
        &mut self,
        r: &DomainVector,
        answers: &[(WorkerId, ChoiceIndex)],
        mut quality_of: impl FnMut(WorkerId) -> &'q [f64],
    ) {
        debug_assert_eq!(r.len(), self.m);
        let l = self.num_choices;
        self.m_hat.iter_mut().for_each(|v| *v = 1.0);
        for &(w, v) in answers {
            let q = quality_of(w);
            debug_assert_eq!(q.len(), self.m);
            // `k` both indexes `q` and derives the row slice; an iterator
            // chain here obscures the M̂ row structure.
            #[allow(clippy::needless_range_loop)]
            for k in 0..self.m {
                let row = &mut self.m_hat[k * l..(k + 1) * l];
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot *= Self::likelihood(q[k], v, j, l);
                }
            }
        }
        self.normalize_rows();
        self.recompute_s(r);
    }

    /// Applies one newly arrived answer in O(m·ℓ) — the incremental Step 1
    /// of Section 4.2: multiply the new worker's likelihoods into `M̂`,
    /// renormalize each row, refresh `s`.
    pub fn apply_answer(&mut self, r: &DomainVector, quality: &[f64], choice: ChoiceIndex) {
        debug_assert_eq!(quality.len(), self.m);
        debug_assert!(choice < self.num_choices);
        let l = self.num_choices;
        // Same row-slice structure as `recompute` above.
        #[allow(clippy::needless_range_loop)]
        for k in 0..self.m {
            let row = &mut self.m_hat[k * l..(k + 1) * l];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot *= Self::likelihood(quality[k], choice, j, l);
            }
        }
        self.normalize_rows();
        self.recompute_s(r);
    }

    /// Hypothetical update matrix `M^{(i)}|a` of Theorem 3: what `M` becomes
    /// if the worker with the given quality answers choice `a`. Used by OTA
    /// without mutating the real state.
    pub fn m_given_answer(&self, quality: &[f64], a: ChoiceIndex) -> Vec<f64> {
        let l = self.num_choices;
        let mut out = vec![0.0; self.m * l];
        for k in 0..self.m {
            let row = &mut out[k * l..(k + 1) * l];
            let mut sum = 0.0;
            for (j, slot) in row.iter_mut().enumerate() {
                let v = self.m_entry(k, j) * Self::likelihood(quality[k], a, j, l);
                *slot = v;
                sum += v;
            }
            if sum > 0.0 {
                for slot in row.iter_mut() {
                    *slot /= sum;
                }
            } else {
                row.iter_mut().for_each(|x| *x = 1.0 / l as f64);
            }
        }
        out
    }

    /// `ŝ_i = r × (M|a)` for a hypothetical matrix produced by
    /// [`TaskState::m_given_answer`].
    pub fn s_from_matrix(&self, r: &DomainVector, matrix: &[f64]) -> Vec<f64> {
        let l = self.num_choices;
        let mut s = vec![0.0; l];
        for k in 0..self.m {
            let rk = r[k];
            if rk == 0.0 {
                continue;
            }
            for (j, slot) in s.iter_mut().enumerate() {
                *slot += rk * matrix[k * l + j];
            }
        }
        // Rows of M are distributions and r is a distribution, so s already
        // sums to 1; normalize defensively against drift.
        prob::normalize_in_place(&mut s);
        s
    }

    fn normalize_rows(&mut self) {
        let l = self.num_choices;
        for k in 0..self.m {
            let hat = &self.m_hat[k * l..(k + 1) * l];
            let sum: f64 = hat.iter().sum();
            let row = &mut self.m_matrix[k * l..(k + 1) * l];
            if sum > 0.0 && sum.is_finite() {
                for (slot, &h) in row.iter_mut().zip(hat) {
                    *slot = h / sum;
                }
            } else {
                row.iter_mut().for_each(|x| *x = 1.0 / l as f64);
            }
        }
        // Guard against underflow in long-lived numerators: rescale M̂ rows
        // whose mass collapsed; the normalized M is unaffected.
        for k in 0..self.m {
            let hat = &mut self.m_hat[k * l..(k + 1) * l];
            let max = hat.iter().cloned().fold(0.0_f64, f64::max);
            if max > 0.0 && max < 1e-100 {
                hat.iter_mut().for_each(|x| *x /= max);
            }
        }
    }

    /// Recomputes `s_i = r^{t_i} × M^{(i)}` (Eq. 2).
    pub fn recompute_s(&mut self, r: &DomainVector) {
        let l = self.num_choices;
        self.s.iter_mut().for_each(|x| *x = 0.0);
        for k in 0..self.m {
            let rk = r[k];
            if rk == 0.0 {
                continue;
            }
            for (j, slot) in self.s.iter_mut().enumerate() {
                *slot += rk * self.m_matrix[k * l + j];
            }
        }
        prob::normalize_in_place(&mut self.s);
        self.s_entropy = prob::entropy(&self.s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_types::WorkerId;

    /// Table 1 / Section 4.1 running example: three workers answer task t1
    /// (r = [0, 0.78, 0.22]); the computed s must favor "yes" despite two
    /// "no" answers, because w1 is the sports expert.
    #[test]
    fn table1_running_example() {
        let r = DomainVector::new(vec![0.0, 0.78, 0.22]).unwrap();
        let qualities = [
            vec![0.3, 0.9, 0.6], // w1
            vec![0.9, 0.6, 0.3], // w2
            vec![0.6, 0.3, 0.9], // w3
        ];
        let answers = [
            (WorkerId(0), 0usize), // yes
            (WorkerId(1), 1usize), // no
            (WorkerId(2), 1usize), // no
        ];
        let mut st = TaskState::new(3, 2);
        st.recompute(&r, &answers, |w| qualities[w.index()].as_slice());

        // Paper: M_{2,•} = [0.93, 0.07], M_{1,•} = [0.03, 0.97],
        // M_{3,•} = [0.28, 0.72] (1-indexed domains).
        assert!(
            (st.m_entry(1, 0) - 0.93).abs() < 0.005,
            "{}",
            st.m_entry(1, 0)
        );
        assert!((st.m_entry(0, 0) - 0.03).abs() < 0.005);
        assert!((st.m_entry(2, 0) - 0.28).abs() < 0.005);
        // s1 = [0.79, 0.21].
        assert!((st.s()[0] - 0.79).abs() < 0.01, "s = {:?}", st.s());
        assert!((st.s()[1] - 0.21).abs() < 0.01);
        assert_eq!(st.truth(), 0); // "yes" wins.
    }

    #[test]
    fn fresh_state_is_uniform() {
        let st = TaskState::new(4, 3);
        assert_eq!(st.s(), &[1.0 / 3.0; 3]);
        for k in 0..4 {
            assert_eq!(st.m_row(k), &[1.0 / 3.0; 3]);
        }
    }

    #[test]
    fn incremental_apply_matches_recompute() {
        let r = DomainVector::new(vec![0.2, 0.5, 0.3]).unwrap();
        let qualities = [vec![0.9, 0.4, 0.7], vec![0.5, 0.8, 0.2]];
        let answers = [(WorkerId(0), 1usize), (WorkerId(1), 0usize)];

        let mut batch = TaskState::new(3, 2);
        batch.recompute(&r, &answers, |w| qualities[w.index()].as_slice());

        let mut inc = TaskState::new(3, 2);
        inc.apply_answer(&r, &qualities[0], 1);
        inc.apply_answer(&r, &qualities[1], 0);

        for k in 0..3 {
            for j in 0..2 {
                assert!((batch.m_entry(k, j) - inc.m_entry(k, j)).abs() < 1e-12);
            }
        }
        for j in 0..2 {
            assert!((batch.s()[j] - inc.s()[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn m_given_answer_matches_actual_update() {
        let r = DomainVector::new(vec![0.6, 0.4]).unwrap();
        let q = vec![0.85, 0.3];
        let mut st = TaskState::new(2, 3);
        st.apply_answer(&r, &[0.7, 0.7], 2);

        let hypothetical = st.m_given_answer(&q, 1);
        let s_hyp = st.s_from_matrix(&r, &hypothetical);

        let mut applied = st.clone();
        applied.apply_answer(&r, &q, 1);
        for k in 0..2 {
            for j in 0..3 {
                assert!(
                    (hypothetical[k * 3 + j] - applied.m_entry(k, j)).abs() < 1e-12,
                    "k={k} j={j}"
                );
            }
        }
        for (hyp, actual) in s_hyp.iter().zip(applied.s()) {
            assert!((hyp - actual).abs() < 1e-12);
        }
    }

    #[test]
    fn extreme_qualities_are_clamped() {
        let r = DomainVector::new(vec![1.0, 0.0]).unwrap();
        let mut st = TaskState::new(2, 2);
        st.apply_answer(&r, &[1.0, 0.0], 0);
        assert!(st.s()[0] > 0.99);
        assert!(st.s().iter().all(|p| p.is_finite() && *p >= 0.0));
    }

    #[test]
    fn underflow_guard_keeps_numerators_finite() {
        let r = DomainVector::new(vec![0.5, 0.5]).unwrap();
        let mut st = TaskState::new(2, 2);
        // 2000 consistent answers would underflow naive products.
        for _ in 0..2000 {
            st.apply_answer(&r, &[0.9, 0.9], 0);
        }
        assert!(st.s()[0] > 0.999);
        assert!(st.s().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn deserialization_recomputes_the_entropy_cache() {
        let r = DomainVector::new(vec![0.4, 0.6]).unwrap();
        let mut st = TaskState::new(2, 2);
        st.apply_answer(&r, &[0.85, 0.7], 1);
        // Round-trip through the serialized form.
        let round: TaskState = serde::Deserialize::from_value(&serde::Serialize::to_value(&st))
            .expect("roundtrip decodes");
        assert_eq!(round.s(), st.s());
        assert!((round.entropy() - st.entropy()).abs() < 1e-15);
        // A snapshot missing the cache field (pre-cache format) still loads,
        // and a tampered stored value is ignored in favor of the recomputed
        // one.
        let mut v = match st.to_value() {
            serde::Value::Map(entries) => entries,
            other => panic!("struct serializes as map, got {other:?}"),
        };
        v.retain(|(k, _)| k != "s_entropy");
        v.push(("s_entropy".to_string(), serde::Value::Float(99.0)));
        let decoded: TaskState = serde::Deserialize::from_value(&serde::Value::Map(v)).unwrap();
        assert!((decoded.entropy() - st.entropy()).abs() < 1e-15);
    }

    #[test]
    fn cached_entropy_tracks_s_through_every_update_path() {
        let r = DomainVector::new(vec![0.6, 0.4]).unwrap();
        let mut st = TaskState::new(2, 3);
        assert!((st.entropy() - prob::entropy(st.s())).abs() < 1e-15);
        st.apply_answer(&r, &[0.8, 0.6], 1);
        assert!((st.entropy() - prob::entropy(st.s())).abs() < 1e-15);
        let answers = [(WorkerId(0), 2usize), (WorkerId(1), 2usize)];
        st.recompute(&r, &answers, |_| &[0.7, 0.9][..]);
        assert!((st.entropy() - prob::entropy(st.s())).abs() < 1e-15);
        st.recompute_s(&r);
        assert!((st.entropy() - prob::entropy(st.s())).abs() < 1e-15);
    }

    #[test]
    fn clamp_quality_bounds() {
        assert!(clamp_quality(0.0) > 0.0);
        assert!(clamp_quality(1.0) < 1.0);
        assert_eq!(clamp_quality(0.5), 0.5);
    }
}
