//! Long-run worker-quality maintenance (Section 4.2, Theorem 1).
//!
//! DOCS keeps two statistics per worker and domain in its database: the
//! quality `q^w_k` and its *weight* `u^w_k` — the expected number of tasks
//! the worker answered that relate to domain `d_k`
//! (`u^w_k = Σ_{t_i ∈ T(w)} r^{t_i}_k`). Theorem 1 says merging statistics
//! from a new batch into stored ones via the weighted average
//! `(q̂·û + q·u)/(û + u)` is exact.

use docs_types::{ChoiceIndex, DomainVector, QualityVector, TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-worker persistent statistics: quality vector and per-domain weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Quality `q^w_k` per domain.
    pub quality: Vec<f64>,
    /// Weight `u^w_k` per domain: expected number of answered tasks related
    /// to `d_k`.
    pub weight: Vec<f64>,
}

impl WorkerStats {
    /// Fresh statistics: the given prior quality with zero weight (so any
    /// observed evidence immediately dominates).
    pub fn with_prior(m: usize, prior_quality: f64) -> Self {
        WorkerStats {
            quality: vec![prior_quality; m],
            weight: vec![0.0; m],
        }
    }

    /// Number of domains `m`.
    pub fn num_domains(&self) -> usize {
        self.quality.len()
    }

    /// Merges a new batch of statistics into the stored ones (Theorem 1):
    /// `q ← (q̂·û + q·u)/(û + u)`, `u ← û + u`. Domains with zero combined
    /// weight keep the stored quality.
    pub fn merge(&mut self, batch: &WorkerStats) {
        debug_assert_eq!(self.num_domains(), batch.num_domains());
        for k in 0..self.quality.len() {
            let total = self.weight[k] + batch.weight[k];
            if total > 0.0 {
                self.quality[k] =
                    (self.quality[k] * self.weight[k] + batch.quality[k] * batch.weight[k]) / total;
            }
            self.weight[k] = total;
        }
    }

    /// Incremental self-update for one newly answered task (Section 4.2,
    /// Step 2, rule (1)): `q_k ← (q_k·u_k + s_{i,a}·r_k)/(u_k + r_k)`,
    /// `u_k ← u_k + r_k`, where `s_{i,a}` is the (updated) probability that
    /// the worker's answer `a` is the truth.
    pub fn absorb_answer(&mut self, r: &DomainVector, s_ia: f64) {
        debug_assert_eq!(self.num_domains(), r.len());
        for k in 0..self.quality.len() {
            let rk = r[k];
            if rk == 0.0 {
                continue;
            }
            let new_weight = self.weight[k] + rk;
            self.quality[k] = (self.quality[k] * self.weight[k] + s_ia * rk) / new_weight;
            self.weight[k] = new_weight;
        }
    }

    /// Incremental correction for a *previously counted* answer whose truth
    /// probability changed from `s_old` to `s_new` (Section 4.2, Step 2,
    /// rule (2)): `q_k ← (q_k·u_k − s̃_{i,j}·r_k + s_{i,j}·r_k)/u_k`.
    /// The weight is unchanged — the task was already counted.
    pub fn revise_answer(&mut self, r: &DomainVector, s_old: f64, s_new: f64) {
        debug_assert_eq!(self.num_domains(), r.len());
        for k in 0..self.quality.len() {
            let rk = r[k];
            if rk == 0.0 || self.weight[k] == 0.0 {
                continue;
            }
            self.quality[k] =
                (self.quality[k] * self.weight[k] - s_old * rk + s_new * rk) / self.weight[k];
            // Floating error can push q marginally outside [0,1]; clamp.
            self.quality[k] = self.quality[k].clamp(0.0, 1.0);
        }
    }

    /// View as a validated [`QualityVector`].
    pub fn quality_vector(&self) -> QualityVector {
        QualityVector::new(self.quality.iter().map(|q| q.clamp(0.0, 1.0)).collect())
            .expect("maintained qualities stay within [0,1]")
    }
}

/// The worker-statistics table: what DOCS persists across requesters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkerRegistry {
    stats: HashMap<WorkerId, WorkerStats>,
    /// Prior quality assigned to unseen workers/domains.
    prior_quality: f64,
    m: usize,
}

impl WorkerRegistry {
    /// Creates a registry over `m` domains with the given prior quality for
    /// unseen workers (the paper initializes via golden tasks; the prior is
    /// the fallback before any golden answer arrives).
    pub fn new(m: usize, prior_quality: f64) -> Self {
        assert!((0.0..=1.0).contains(&prior_quality));
        WorkerRegistry {
            stats: HashMap::new(),
            prior_quality,
            m,
        }
    }

    /// Number of domains `m`.
    pub fn num_domains(&self) -> usize {
        self.m
    }

    /// Prior quality used for unseen workers.
    pub fn prior_quality(&self) -> f64 {
        self.prior_quality
    }

    /// Whether the registry has statistics for a worker.
    pub fn contains(&self, w: WorkerId) -> bool {
        self.stats.contains_key(&w)
    }

    /// Number of workers tracked.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when no workers are tracked.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Immutable stats access.
    pub fn get(&self, w: WorkerId) -> Option<&WorkerStats> {
        self.stats.get(&w)
    }

    /// Mutable stats access, inserting fresh prior stats for new workers.
    pub fn get_or_insert(&mut self, w: WorkerId) -> &mut WorkerStats {
        let m = self.m;
        let prior = self.prior_quality;
        self.stats
            .entry(w)
            .or_insert_with(|| WorkerStats::with_prior(m, prior))
    }

    /// The worker's quality vector (prior for unseen workers).
    pub fn quality(&self, w: WorkerId) -> Vec<f64> {
        match self.stats.get(&w) {
            Some(s) => s.quality.clone(),
            None => vec![self.prior_quality; self.m],
        }
    }

    /// Overwrites a worker's statistics (used when the periodic full
    /// iterative inference re-estimates qualities).
    pub fn put(&mut self, w: WorkerId, stats: WorkerStats) {
        assert_eq!(stats.num_domains(), self.m);
        self.stats.insert(w, stats);
    }

    /// Initializes a worker's statistics from her answers on golden tasks
    /// (Section 5.2): per domain, quality is the `r_k`-weighted fraction of
    /// correct golden answers, smoothed toward the prior with pseudo-weight
    /// `smoothing` so a single golden task cannot set `q_k` to an extreme.
    pub fn init_from_golden(
        &mut self,
        w: WorkerId,
        golden: &[(TaskId, ChoiceIndex)],
        task_info: impl Fn(TaskId) -> (DomainVector, ChoiceIndex),
        smoothing: f64,
    ) {
        let mut quality = vec![self.prior_quality; self.m];
        let mut weight = vec![0.0; self.m];
        let mut num = vec![self.prior_quality * smoothing; self.m];
        let mut den = vec![smoothing; self.m];
        for &(tid, choice) in golden {
            let (r, truth) = task_info(tid);
            let correct = if choice == truth { 1.0 } else { 0.0 };
            for k in 0..self.m {
                num[k] += r[k] * correct;
                den[k] += r[k];
                weight[k] += r[k];
            }
        }
        for k in 0..self.m {
            if den[k] > 0.0 {
                quality[k] = num[k] / den[k];
            }
        }
        self.stats.insert(w, WorkerStats { quality, weight });
    }

    /// Iterates over all tracked workers.
    pub fn iter(&self) -> impl Iterator<Item = (WorkerId, &WorkerStats)> {
        self.stats.iter().map(|(w, s)| (*w, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_merge_is_weighted_average() {
        let mut stored = WorkerStats {
            quality: vec![0.8, 0.5],
            weight: vec![4.0, 0.0],
        };
        let batch = WorkerStats {
            quality: vec![0.6, 0.9],
            weight: vec![2.0, 3.0],
        };
        stored.merge(&batch);
        assert!((stored.quality[0] - (0.8 * 4.0 + 0.6 * 2.0) / 6.0).abs() < 1e-12);
        assert_eq!(stored.weight[0], 6.0);
        // Domain 1 had no stored weight: batch wins entirely.
        assert!((stored.quality[1] - 0.9).abs() < 1e-12);
        assert_eq!(stored.weight[1], 3.0);
    }

    #[test]
    fn merge_with_empty_batch_is_identity() {
        let mut stored = WorkerStats {
            quality: vec![0.7],
            weight: vec![5.0],
        };
        let before = stored.clone();
        stored.merge(&WorkerStats::with_prior(1, 0.5));
        assert_eq!(stored, before);
    }

    /// Theorem 1 equivalence: merging two batches equals computing the
    /// statistics over the union of answers directly.
    #[test]
    fn theorem1_merge_equals_recomputation() {
        // Simulate weighted-average quality over two answer batches.
        let r_values = [0.9, 0.3, 0.6, 0.8, 0.1];
        let s_values = [1.0, 0.0, 1.0, 1.0, 0.0];
        let split = 2;

        let batch_stats = |range: std::ops::Range<usize>| {
            let mut num = 0.0;
            let mut den = 0.0;
            for i in range {
                num += r_values[i] * s_values[i];
                den += r_values[i];
            }
            WorkerStats {
                quality: vec![if den > 0.0 { num / den } else { 0.0 }],
                weight: vec![den],
            }
        };

        let mut merged = batch_stats(0..split);
        merged.merge(&batch_stats(split..r_values.len()));
        let full = batch_stats(0..r_values.len());
        assert!((merged.quality[0] - full.quality[0]).abs() < 1e-12);
        assert!((merged.weight[0] - full.weight[0]).abs() < 1e-12);
    }

    #[test]
    fn absorb_then_revise_matches_direct() {
        let r = DomainVector::new(vec![1.0]).unwrap();
        let mut stats = WorkerStats {
            quality: vec![0.5],
            weight: vec![2.0],
        };
        // Absorb an answer with s = 0.9 …
        stats.absorb_answer(&r, 0.9);
        assert!((stats.quality[0] - (0.5 * 2.0 + 0.9) / 3.0).abs() < 1e-12);
        // … then the truth moved: s 0.9 → 0.4.
        let q_before = stats.quality[0];
        stats.revise_answer(&r, 0.9, 0.4);
        assert!((stats.quality[0] - (q_before * 3.0 - 0.9 + 0.4) / 3.0).abs() < 1e-12);
        assert_eq!(stats.weight[0], 3.0);
    }

    #[test]
    fn registry_defaults_for_unknown_workers() {
        let reg = WorkerRegistry::new(3, 0.7);
        assert_eq!(reg.quality(WorkerId(9)), vec![0.7; 3]);
        assert!(!reg.contains(WorkerId(9)));
    }

    #[test]
    fn golden_initialization_reflects_correctness() {
        let mut reg = WorkerRegistry::new(2, 0.5);
        // Golden tasks: t0 fully domain 0 (answered correctly), t1 fully
        // domain 1 (answered wrong).
        let tasks = [
            (DomainVector::one_hot(2, 0), 0usize),
            (DomainVector::one_hot(2, 1), 1usize),
        ];
        let answers = [(TaskId(0), 0usize), (TaskId(1), 0usize)];
        reg.init_from_golden(WorkerId(0), &answers, |tid| tasks[tid.index()].clone(), 1.0);
        let s = reg.get(WorkerId(0)).unwrap();
        // Domain 0: (0.5·1 + 1·1)/(1+1) = 0.75; domain 1: (0.5·1 + 0)/(1+1) = 0.25.
        assert!((s.quality[0] - 0.75).abs() < 1e-12);
        assert!((s.quality[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn quality_vector_is_valid() {
        let stats = WorkerStats {
            quality: vec![0.0, 1.0, 0.33],
            weight: vec![1.0; 3],
        };
        let qv = stats.quality_vector();
        assert_eq!(qv.len(), 3);
    }
}
