//! Stable-point estimation and per-task answer-collection stopping — the
//! paper's stated future work for Section 6.3.
//!
//! Figure 4(c) shows accuracy rising with the number of collected answers
//! and then flattening ("for some dataset such as Item, it remains stable as
//! ≥ 8 answers are collected. We will study the estimation of stable point
//! in future."). This module supplies that study with two complementary
//! tools:
//!
//! * **Per-task stopping rules** ([`StoppingRule`], [`StoppingPolicy`]) —
//!   decide *online*, from the probabilistic truth `s_i` alone, that a task
//!   has collected enough answers. Plugged into the assigner's answer cap,
//!   this converts the paper's uniform "10 answers per task" budget into an
//!   adaptive one: confident tasks release budget that hard tasks absorb
//!   (the exact saving the paper faults iCrowd for not exploiting).
//! * **Campaign-level stable-point estimators** — detect the flattening of
//!   Figure 4(c)'s curve, either from a ground-truth accuracy curve
//!   ([`stable_point_of_curve`], evaluation-side) or online without ground
//!   truth from the rate of *truth flips* between checkpoints
//!   ([`TruthFlipTracker`]).

use crate::ti::TaskState;
use docs_types::{prob, ChoiceIndex};
use serde::{Deserialize, Serialize};

/// A per-task confidence criterion over the probabilistic truth `s_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StoppingRule {
    /// Stop when the entropy `H(s_i)` drops to or below this many nats —
    /// the same ambiguity measure OTA's benefit function uses
    /// (Definition 5), so "stop" means "no assignment could reduce much
    /// ambiguity anyway".
    EntropyBelow(f64),
    /// Stop when the probability of the leading choice reaches this level.
    ConfidenceAbove(f64),
    /// Stop when the gap between the leading and runner-up choice
    /// probabilities reaches this level.
    MarginAbove(f64),
}

impl StoppingRule {
    /// Evaluates the rule against a truth distribution.
    pub fn satisfied_by(&self, s: &[f64]) -> bool {
        debug_assert!(s.len() >= 2);
        match *self {
            StoppingRule::EntropyBelow(eps) => prob::entropy(s) <= eps,
            StoppingRule::ConfidenceAbove(p) => s[prob::argmax(s)] >= p,
            StoppingRule::MarginAbove(gap) => {
                let top = prob::argmax(s);
                let runner_up = s
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != top)
                    .map(|(_, &p)| p)
                    .fold(0.0_f64, f64::max);
                s[top] - runner_up >= gap
            }
        }
    }
}

/// A stopping rule with answer-count guards: never stop before
/// `min_answers` (a lone confident expert is not enough evidence), always
/// stop at `max_answers` (the paper's hard budget, 10 on every dataset).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoppingPolicy {
    /// The confidence criterion.
    pub rule: StoppingRule,
    /// Minimum answers before the rule may fire.
    pub min_answers: usize,
    /// Hard cap on answers per task.
    pub max_answers: usize,
}

impl StoppingPolicy {
    /// A reasonable default mirroring the paper's protocol: entropy below
    /// 0.15 nats (≈ s = [0.97, 0.03] for binary tasks), at least 3 answers,
    /// at most 10.
    ///
    /// ```
    /// use docs_core::ti::{StoppingPolicy, TaskState};
    /// use docs_types::DomainVector;
    ///
    /// let policy = StoppingPolicy::with_defaults();
    /// let r = DomainVector::one_hot(1, 0);
    /// let mut state = TaskState::new(1, 2);
    /// for _ in 0..4 {
    ///     state.apply_answer(&r, &[0.9], 0); // four agreeing experts
    /// }
    /// assert!(policy.should_stop(&state, 4));
    /// assert!(!policy.should_stop(&TaskState::new(1, 2), 4)); // uncertain
    /// ```
    pub fn with_defaults() -> Self {
        StoppingPolicy {
            rule: StoppingRule::EntropyBelow(0.15),
            min_answers: 3,
            max_answers: 10,
        }
    }

    /// Should answer collection for this task stop?
    pub fn should_stop(&self, state: &TaskState, answers_collected: usize) -> bool {
        assert!(
            self.min_answers <= self.max_answers,
            "min_answers must not exceed max_answers"
        );
        if answers_collected >= self.max_answers {
            return true;
        }
        if answers_collected < self.min_answers {
            return false;
        }
        self.rule.satisfied_by(state.s())
    }

    /// Counts how many answers of a uniform `max_answers`-per-task budget
    /// this policy releases for the given task states, assuming `counts[i]`
    /// answers were collected when task `i` first satisfied the policy.
    ///
    /// This is the budget-saving summary the adaptive-budget example and
    /// the `stopping` ablation bench report.
    pub fn budget_saved(&self, stopped_at: &[usize]) -> usize {
        stopped_at
            .iter()
            .map(|&c| self.max_answers.saturating_sub(c))
            .sum()
    }
}

/// Estimates the stable point of an accuracy-vs-answers curve (Figure 4(c)):
/// the smallest x such that accuracy never again moves by more than `tol`
/// (absolute) from its value at x.
///
/// Returns `None` when the curve never stabilizes under that tolerance
/// (i.e. even the last point moves), or when the curve is empty.
pub fn stable_point_of_curve(curve: &[(usize, f64)], tol: f64) -> Option<usize> {
    assert!(tol >= 0.0, "tolerance must be non-negative");
    if curve.is_empty() {
        return None;
    }
    // Walk backwards keeping the max deviation from the suffix.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut stable = None;
    for &(x, acc) in curve.iter().rev() {
        lo = lo.min(acc);
        hi = hi.max(acc);
        if hi - lo <= tol && (acc - lo).abs() <= tol && (acc - hi).abs() <= tol {
            stable = Some(x);
        } else {
            break;
        }
    }
    stable
}

/// Online stable-point detection *without ground truth*: track how many
/// inferred truths flip between consecutive checkpoints; declare stability
/// after `patience` consecutive checkpoints whose flip fraction is at or
/// below `tol`.
///
/// This is usable inside a live campaign (ground-truth accuracy is not),
/// and on the simulated datasets it closely tracks the accuracy plateau —
/// see the `adaptive_stopping` example.
#[derive(Debug, Clone)]
pub struct TruthFlipTracker {
    tol: f64,
    patience: usize,
    previous: Option<Vec<ChoiceIndex>>,
    quiet_streak: usize,
    checkpoints: usize,
    /// Flip fraction observed at each checkpoint after the first.
    pub flip_history: Vec<f64>,
}

impl TruthFlipTracker {
    /// Creates a tracker; `tol` is the maximum flip fraction considered
    /// quiet and `patience` the number of consecutive quiet checkpoints
    /// required.
    pub fn new(tol: f64, patience: usize) -> Self {
        assert!((0.0..=1.0).contains(&tol), "tol must be a fraction");
        assert!(patience >= 1, "patience must be at least 1");
        TruthFlipTracker {
            tol,
            patience,
            previous: None,
            quiet_streak: 0,
            checkpoints: 0,
            flip_history: Vec::new(),
        }
    }

    /// Records a checkpoint (the current inferred truths of all tasks) and
    /// returns `true` once stability has been reached.
    ///
    /// # Panics
    /// Panics if the number of tasks changes between checkpoints.
    pub fn checkpoint(&mut self, truths: Vec<ChoiceIndex>) -> bool {
        self.checkpoints += 1;
        if let Some(prev) = &self.previous {
            assert_eq!(prev.len(), truths.len(), "task count changed");
            let flips = prev.iter().zip(&truths).filter(|(a, b)| a != b).count();
            let frac = if truths.is_empty() {
                0.0
            } else {
                flips as f64 / truths.len() as f64
            };
            self.flip_history.push(frac);
            if frac <= self.tol {
                self.quiet_streak += 1;
            } else {
                self.quiet_streak = 0;
            }
        }
        self.previous = Some(truths);
        self.is_stable()
    }

    /// True when `patience` consecutive quiet checkpoints have been seen.
    pub fn is_stable(&self) -> bool {
        self.quiet_streak >= self.patience
    }

    /// Number of checkpoints recorded so far.
    pub fn checkpoints(&self) -> usize {
        self.checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_types::DomainVector;

    fn state_with_confidence(p: f64) -> TaskState {
        // Binary task fully in domain 0; feed answers until s ≈ [p, 1-p].
        let r = DomainVector::one_hot(1, 0);
        let mut st = TaskState::new(1, 2);
        // One answer from a worker of quality p produces s = [p, 1-p].
        st.apply_answer(&r, &[p], 0);
        st
    }

    #[test]
    fn entropy_rule_fires_on_confident_distributions() {
        let rule = StoppingRule::EntropyBelow(0.15);
        assert!(rule.satisfied_by(&[0.98, 0.02]));
        assert!(!rule.satisfied_by(&[0.7, 0.3]));
        assert!(!rule.satisfied_by(&[0.5, 0.5]));
    }

    #[test]
    fn confidence_rule_uses_leading_choice() {
        let rule = StoppingRule::ConfidenceAbove(0.9);
        assert!(rule.satisfied_by(&[0.05, 0.92, 0.03]));
        assert!(!rule.satisfied_by(&[0.4, 0.45, 0.15]));
    }

    #[test]
    fn margin_rule_uses_runner_up_gap() {
        let rule = StoppingRule::MarginAbove(0.5);
        assert!(rule.satisfied_by(&[0.75, 0.2, 0.05]));
        // Gap 0.75 - 0.2 = 0.55 ≥ 0.5 above; here gap 0.1 fails.
        assert!(!rule.satisfied_by(&[0.5, 0.4, 0.1]));
    }

    #[test]
    fn policy_respects_min_and_max_answers() {
        let policy = StoppingPolicy {
            rule: StoppingRule::ConfidenceAbove(0.9),
            min_answers: 3,
            max_answers: 10,
        };
        let confident = state_with_confidence(0.97);
        // Rule satisfied but min not reached.
        assert!(!policy.should_stop(&confident, 2));
        assert!(policy.should_stop(&confident, 3));
        // Max reached stops regardless of confidence.
        let uncertain = TaskState::new(1, 2);
        assert!(policy.should_stop(&uncertain, 10));
        assert!(!policy.should_stop(&uncertain, 9));
    }

    #[test]
    fn budget_saved_counts_released_answers() {
        let policy = StoppingPolicy::with_defaults();
        // Three tasks stopped at 3, 10, 7 answers under a 10-answer cap.
        assert_eq!(policy.budget_saved(&[3, 10, 7]), 10);
    }

    #[test]
    fn stable_point_finds_the_plateau() {
        // Figure 4(c)-shaped curve: rises then flat from x = 8.
        let curve = [
            (1, 0.60),
            (2, 0.68),
            (4, 0.75),
            (6, 0.81),
            (8, 0.825),
            (9, 0.832),
            (10, 0.831),
        ];
        assert_eq!(stable_point_of_curve(&curve, 0.01), Some(8));
        // Tighter tolerance pushes the stable point later.
        assert_eq!(stable_point_of_curve(&curve, 0.002), Some(9));
        // Impossible tolerance: only the last point qualifies.
        assert_eq!(stable_point_of_curve(&curve, 0.0), Some(10));
    }

    #[test]
    fn stable_point_of_empty_curve_is_none() {
        assert_eq!(stable_point_of_curve(&[], 0.1), None);
    }

    #[test]
    fn stable_point_of_monotone_rising_curve_is_last_point() {
        let curve = [(1, 0.5), (2, 0.6), (3, 0.7)];
        assert_eq!(stable_point_of_curve(&curve, 0.05), Some(3));
    }

    #[test]
    fn flip_tracker_detects_quiet_streak() {
        let mut tracker = TruthFlipTracker::new(0.0, 2);
        assert!(!tracker.checkpoint(vec![0, 1, 0]));
        assert!(!tracker.checkpoint(vec![0, 1, 1])); // one flip
        assert!(!tracker.checkpoint(vec![0, 1, 1])); // quiet #1
        assert!(tracker.checkpoint(vec![0, 1, 1])); // quiet #2 → stable
        assert_eq!(tracker.flip_history, vec![1.0 / 3.0, 0.0, 0.0]);
        assert_eq!(tracker.checkpoints(), 4);
    }

    #[test]
    fn flip_tracker_resets_streak_on_flips() {
        let mut tracker = TruthFlipTracker::new(0.0, 2);
        tracker.checkpoint(vec![0, 0]);
        tracker.checkpoint(vec![0, 0]); // quiet #1
        tracker.checkpoint(vec![1, 0]); // flip resets
        tracker.checkpoint(vec![1, 0]); // quiet #1
        assert!(!tracker.is_stable());
        assert!(tracker.checkpoint(vec![1, 0])); // quiet #2
    }

    #[test]
    #[should_panic(expected = "task count changed")]
    fn flip_tracker_rejects_task_count_change() {
        let mut tracker = TruthFlipTracker::new(0.1, 1);
        tracker.checkpoint(vec![0, 1]);
        tracker.checkpoint(vec![0]);
    }
}
