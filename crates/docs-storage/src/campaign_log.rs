//! The per-shard campaign event log: group-commit WAL segments plus
//! per-campaign snapshots — the durability substrate of the event-sourced
//! service runtime.
//!
//! One [`CampaignLog`] belongs to one service shard and records the events
//! of every persisted campaign that shard owns, interleaved, each tagged
//! with its campaign id and a per-campaign sequence number:
//!
//! ```text
//! shard-dir/
//!   events-000007.wal      current segment (older ones pruned after snapshots)
//!   snap-3.bin             latest snapshot of campaign 3: [seq][crc][payload]
//!   snap-9.bin
//! ```
//!
//! **Group commit.** Appends buffer in memory; a flush writes the whole
//! batch in one syscall and `fdatasync`s once. [`FlushPolicy`] decides when:
//! `EveryEvent` syncs per append (strict durability, slow), `Batch(n)`
//! amortizes the sync over `n` events, `IntervalMs` over a time window.
//! Policies are per campaign — one strict campaign forces a flush that
//! opportunistically hardens every buffered neighbor's events too.
//!
//! **Snapshots and truncation.** Snapshots use the same atomic
//! tmp-file-then-rename pattern as `KvStore`. After snapshotting every
//! campaign it owns, a shard calls [`CampaignLog::prune_segments`]: a fresh
//! segment starts and all older ones are deleted — replay cost stays
//! bounded by the snapshot cadence, not by campaign lifetime.
//!
//! **Recovery.** [`recover_tree`] scans a whole durability directory (every
//! shard subdirectory — the writing epoch may have used a different shard
//! count than the recovering one), keeps each campaign's highest-sequence
//! intact snapshot, and merges the event suffix beyond it from all
//! segments. A torn record at a segment tail is the expected crash artifact
//! and ends that segment's scan cleanly; a CRC-corrupt *complete* record is
//! data loss and fails recovery loudly instead of serving wrong state.

use crate::{crc32, io_err, PayloadBytes, Wal, WalTail};
use bytes::{Buf, BufMut, BytesMut};
use docs_types::{CampaignId, Error, Result};
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When a shard's buffered events are written and `fdatasync`ed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FlushPolicy {
    /// Sync after every event — strongest durability, one fsync per answer.
    EveryEvent,
    /// Group commit: sync once per `n` buffered events. Events are
    /// acknowledged before they are synced, so a crash can lose up to
    /// `n - 1` acknowledged events (they are never *reordered* or
    /// half-applied — recovery sees a clean prefix).
    Batch(usize),
    /// Group commit on a timer: sync when this many milliseconds have
    /// passed since the previous sync (checked at append time).
    IntervalMs(u64),
}

impl FlushPolicy {
    /// Short label for metrics and bench output.
    pub fn label(&self) -> String {
        match self {
            FlushPolicy::EveryEvent => "every_event".to_string(),
            FlushPolicy::Batch(n) => format!("batch_{n}"),
            FlushPolicy::IntervalMs(ms) => format!("interval_{ms}ms"),
        }
    }
}

/// Adaptive group commit: under load, [`FlushPolicy::EveryEvent`] appends
/// accumulate into one batch (bounded by event count, buffered bytes, and a
/// latency deadline) that is written and `fdatasync`ed once; when the load
/// drops the batch collapses back to a single event, so an isolated append
/// still hardens immediately.
///
/// Durability semantics are preserved by the *owner*, not the log: the
/// service shard withholds acknowledgements for events in an open batch and
/// releases them only after the batch flushes — acknowledged still implies
/// durable, but the `fdatasync` cost is amortized like `Batch`/`IntervalMs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveCommit {
    /// Flush once this many events are buffered.
    pub max_batch_events: usize,
    /// Flush once the buffered batch reaches this many bytes.
    pub max_batch_bytes: usize,
    /// Flush once the oldest buffered event has waited this long — the
    /// worst-case added acknowledgement latency under sustained load.
    pub max_delay: Duration,
}

impl Default for AdaptiveCommit {
    fn default() -> Self {
        AdaptiveCommit {
            max_batch_events: 64,
            max_batch_bytes: 256 * 1024,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Cumulative flush accounting of one [`CampaignLog`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Events appended (buffered) so far.
    pub appended: u64,
    /// Flush (write + `fdatasync`) calls that hit the disk.
    pub flushes: u64,
    /// Events made durable across those flushes.
    pub flushed_events: u64,
    /// Policy-triggered flushes that failed at append time; the buffered
    /// events stay pending and the next flush trigger (append, idle
    /// timer, finish, shutdown) resumes them.
    pub flush_failures: u64,
    /// Wall time of the most recent flush.
    pub last_flush: Duration,
    /// Worst single flush.
    pub max_flush: Duration,
}

/// Callback invoked after every successful [`CampaignLog::flush`] with the
/// number of events the group commit hardened and the wall time the
/// write + `fdatasync` took. Owners use it to feed batch-size and sync
/// latency histograms without polling [`FlushStats`].
pub type FlushObserver = Arc<dyn Fn(u64, Duration) + Send + Sync>;

/// Holds the optional observer; a separate type only so [`CampaignLog`]
/// can keep deriving `Debug` around a non-`Debug` closure.
#[derive(Default, Clone)]
struct ObserverSlot(Option<FlushObserver>);

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "FlushObserver(set)"
        } else {
            "FlushObserver(unset)"
        })
    }
}

/// Per-shard group-commit event log (see the module docs).
#[derive(Debug)]
pub struct CampaignLog {
    /// Observer notified after each successful flush.
    observer: ObserverSlot,
    dir: PathBuf,
    segment: Wal,
    segment_index: u64,
    pending: BytesMut,
    /// Bytes of `pending` already accepted by the OS during a flush that
    /// then failed — the next flush resumes here instead of re-writing
    /// (which would duplicate records in the segment).
    pending_written: usize,
    pending_events: usize,
    last_flush_at: Instant,
    /// When the oldest event still in `pending` was appended — the anchor
    /// of the adaptive latency deadline.
    first_pending_at: Option<Instant>,
    /// Adaptive group commit for `EveryEvent` campaigns, when enabled.
    adaptive: Option<AdaptiveCommit>,
    /// Buffered events appended under `EveryEvent` while adaptive commit
    /// deferred their sync. The owner must withhold these events'
    /// acknowledgements until the batch flushes (acked ⇒ durable).
    pending_strict: usize,
    policies: HashMap<CampaignId, FlushPolicy>,
    /// Last assigned sequence number per campaign (0 = none yet).
    seqs: HashMap<CampaignId, u64>,
    stats: FlushStats,
    /// Bytes across this log's on-disk segments, tracked so hot paths can
    /// publish the gauge without re-scanning the directory.
    disk_bytes: u64,
}

/// `fsync`s a directory so freshly created or renamed entries survive
/// power loss — file-content `fdatasync` alone does not pin the name.
fn sync_dir(dir: &Path) -> Result<()> {
    std::fs::File::open(dir)
        .and_then(|f| f.sync_all())
        .map_err(io_err)
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("events-{index:06}.wal"))
}

fn snapshot_path(dir: &Path, campaign: CampaignId) -> PathBuf {
    dir.join(format!("snap-{}.bin", campaign.0))
}

/// Parses `events-<idx>.wal` names back into indices.
fn parse_segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("events-")?
        .strip_suffix(".wal")?
        .parse()
        .ok()
}

/// Parses `snap-<campaign>.bin` names back into campaign ids.
fn parse_snapshot_id(name: &str) -> Option<CampaignId> {
    name.strip_prefix("snap-")?
        .strip_suffix(".bin")?
        .parse()
        .map(CampaignId)
        .ok()
}

/// One decoded event record of a log segment: the campaign tag, the
/// per-campaign sequence number, and the serialized event payload exactly
/// as it was appended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEvent {
    /// Campaign the record belongs to.
    pub campaign: CampaignId,
    /// Per-campaign sequence number assigned at append time.
    pub seq: u64,
    /// The event payload (the bytes handed to `append_event`).
    pub payload: Vec<u8>,
}

/// Lists the segment files present in one shard-log directory, ascending
/// by segment index — the iteration entry point of the export API used by
/// log-shipping replication and by [`recover_tree`] itself. A missing
/// directory lists as empty.
pub fn list_segments(dir: impl AsRef<Path>) -> Result<Vec<PathBuf>> {
    let dir = dir.as_ref();
    Ok(segment_indices(dir)?
        .into_iter()
        .map(|idx| segment_path(dir, idx))
        .collect())
}

/// Reads every intact event record of one segment file and reports how the
/// scan ended ([`WalTail`]), leaving the tail policy (tolerate torn,
/// refuse corrupt) to the caller. Records decode to [`SegmentEvent`]s;
/// a record too short to carry the campaign/sequence tag is an error.
pub fn read_segment(path: impl AsRef<Path>) -> Result<(Vec<SegmentEvent>, WalTail)> {
    let path = path.as_ref();
    let data = Wal::load(path)?;
    let (records, tail) = Wal::scan(&data);
    let mut events = Vec::with_capacity(records.len());
    for range in records {
        let record = &data[range];
        let (campaign, seq) = decode_event_tag(record, path)?;
        events.push(SegmentEvent {
            campaign,
            seq,
            payload: record[12..].to_vec(),
        });
    }
    Ok((events, tail))
}

/// Lists the segment indices present in a directory, ascending.
fn segment_indices(dir: &Path) -> Result<Vec<u64>> {
    let mut indices = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry.map_err(io_err)?;
                if let Some(idx) = entry.file_name().to_str().and_then(parse_segment_index) {
                    indices.push(idx);
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(io_err(e)),
    }
    indices.sort_unstable();
    Ok(indices)
}

impl CampaignLog {
    /// Opens the log rooted at `dir`, starting a *new* segment after the
    /// highest existing one. Recovered segments are never appended to: a
    /// torn record at an old tail must stay the last thing in its file, or
    /// everything appended after it would be unreachable to replay.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        let existing = segment_indices(&dir)?;
        let mut disk_bytes = 0;
        for &idx in &existing {
            disk_bytes += std::fs::metadata(segment_path(&dir, idx))
                .map_err(io_err)?
                .len();
        }
        let segment_index = existing.last().map_or(0, |last| last + 1);
        let segment = Wal::open(segment_path(&dir, segment_index))?;
        sync_dir(&dir)?;
        Ok(CampaignLog {
            observer: ObserverSlot::default(),
            dir,
            segment,
            segment_index,
            pending: BytesMut::new(),
            pending_written: 0,
            pending_events: 0,
            last_flush_at: Instant::now(),
            first_pending_at: None,
            adaptive: None,
            pending_strict: 0,
            policies: HashMap::new(),
            seqs: HashMap::new(),
            stats: FlushStats::default(),
            disk_bytes,
        })
    }

    /// Root directory of the log.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Installs (or clears) the per-flush observer. Called once at shard
    /// start-up; the closure runs on the shard thread at the end of every
    /// successful group commit, so it must be cheap and lock-free.
    pub fn set_flush_observer(&mut self, observer: Option<FlushObserver>) {
        self.observer = ObserverSlot(observer);
    }

    /// Registers a campaign with its flush policy and the last sequence
    /// number already durable for it (`0` for a fresh campaign).
    pub fn register(&mut self, campaign: CampaignId, policy: FlushPolicy, last_seq: u64) {
        self.policies.insert(campaign, policy);
        self.seqs.insert(campaign, last_seq);
    }

    /// The flush policy a campaign was registered with.
    pub fn policy(&self, campaign: CampaignId) -> Option<FlushPolicy> {
        self.policies.get(&campaign).copied()
    }

    /// Last assigned sequence number of a campaign (0 = none).
    pub fn last_seq(&self, campaign: CampaignId) -> u64 {
        self.seqs.get(&campaign).copied().unwrap_or(0)
    }

    /// Appends one event for a campaign, assigning and returning its
    /// sequence number, then flushes if the campaign's policy demands it.
    /// Unregistered campaigns default to [`FlushPolicy::EveryEvent`].
    ///
    /// The append itself **never half-fails**: the record is in the
    /// buffer, owns its sequence number, and *will* reach the segment (a
    /// failed flush resumes, never restarts). A policy-due flush that
    /// fails here is therefore a durability *delay*, not an append
    /// failure — it is counted in [`FlushStats::flush_failures`] and
    /// retried at the next flush trigger. (Rejecting the append on a
    /// failed sync was worse than wrong: the buffered record still
    /// hardened later, so the log grew a "ghost" event the live system
    /// never applied — recovery, replication, and the serving state all
    /// disagreed.) Callers needing a hard durability point call
    /// [`CampaignLog::flush`] and handle its error — the service does so
    /// on `finish`, creation, and shutdown.
    pub fn append_event(&mut self, campaign: CampaignId, payload: &[u8]) -> Result<u64> {
        let seq = self.last_seq(campaign) + 1;
        self.seqs.insert(campaign, seq);
        let mut record = BytesMut::with_capacity(12 + payload.len());
        record.put_u32_le(campaign.0);
        record.put_u64_le(seq);
        record.put_slice(payload);
        Wal::encode_record(&record, &mut self.pending);
        self.pending_events += 1;
        if self.pending_events == 1 {
            self.first_pending_at = Some(Instant::now());
        }
        self.stats.appended += 1;
        let due = match self.policy(campaign).unwrap_or(FlushPolicy::EveryEvent) {
            // Adaptive group commit defers the per-append sync: the batch
            // grows until a bound trips here or the owner closes it (see
            // [`CampaignLog::adaptive_flush_due_in`]); the owner withholds
            // acknowledgements until the flush, preserving acked ⇒ durable.
            FlushPolicy::EveryEvent => match self.adaptive {
                None => true,
                Some(cfg) => {
                    self.pending_strict += 1;
                    self.pending_events >= cfg.max_batch_events.max(1)
                        || self.pending.len() >= cfg.max_batch_bytes
                        || self
                            .first_pending_at
                            .is_some_and(|t| t.elapsed() >= cfg.max_delay)
                }
            },
            FlushPolicy::Batch(n) => self.pending_events >= n.max(1),
            FlushPolicy::IntervalMs(ms) => {
                self.last_flush_at.elapsed() >= Duration::from_millis(ms)
            }
        };
        if due && self.flush().is_err() {
            self.stats.flush_failures += 1;
        }
        Ok(seq)
    }

    /// Enables (or disables, with `None`) adaptive group commit for this
    /// log's `EveryEvent` campaigns.
    pub fn set_adaptive(&mut self, adaptive: Option<AdaptiveCommit>) {
        self.adaptive = adaptive;
        if adaptive.is_none() {
            self.pending_strict = 0;
        }
    }

    /// Buffered `EveryEvent` events whose sync was deferred by adaptive
    /// commit — the owner must withhold their acknowledgements (and, for
    /// FIFO ordering, everything queued behind them) until the next
    /// successful [`CampaignLog::flush`] drops this to zero.
    pub fn pending_strict_events(&self) -> usize {
        self.pending_strict
    }

    /// Gives up on the strict-pending accounting without a successful
    /// flush — for an owner that decided to degrade (e.g. release
    /// acknowledgements after a failed batch sync, mirroring the
    /// append-path policy-flush semantics where a sync failure is a
    /// durability delay, not a refusal).
    pub fn clear_strict_pending(&mut self) {
        self.pending_strict = 0;
    }

    /// The adaptive group-commit configuration, if enabled.
    pub fn adaptive(&self) -> Option<AdaptiveCommit> {
        self.adaptive
    }

    /// Bytes buffered but not yet written + synced.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// How long the adaptive latency deadline allows the current batch to
    /// stay open: `Some(ZERO)` means overdue (flush now), `None` means no
    /// deadline is running (adaptive off or nothing buffered).
    pub fn adaptive_flush_due_in(&self) -> Option<Duration> {
        let cfg = self.adaptive?;
        if self.pending_events == 0 {
            return None;
        }
        let first = self.first_pending_at?;
        Some(cfg.max_delay.saturating_sub(first.elapsed()))
    }

    /// Events buffered but not yet written + synced.
    pub fn pending_events(&self) -> usize {
        self.pending_events
    }

    /// The smallest [`FlushPolicy::IntervalMs`] window among registered
    /// campaigns, if any campaign uses one.
    pub fn min_interval(&self) -> Option<Duration> {
        self.policies
            .values()
            .filter_map(|p| match p {
                FlushPolicy::IntervalMs(ms) => Some(Duration::from_millis(*ms)),
                _ => None,
            })
            .min()
    }

    /// How long until buffered events must be hardened for an
    /// `IntervalMs` campaign: `Some(ZERO)` means overdue, `None` means no
    /// deadline (nothing buffered, or no interval policy registered).
    ///
    /// The append-path interval check only runs on the *next* append, so an
    /// idle shard would otherwise keep acknowledged events buffered
    /// indefinitely; owners poll this between requests and call
    /// [`CampaignLog::flush_if_due`] when it reaches zero.
    pub fn idle_flush_due_in(&self) -> Option<Duration> {
        if self.pending_events == 0 {
            return None;
        }
        let interval = self.min_interval()?;
        Some(interval.saturating_sub(self.last_flush_at.elapsed()))
    }

    /// Flushes iff an interval window has elapsed with events still
    /// buffered; returns whether a flush happened.
    pub fn flush_if_due(&mut self) -> Result<bool> {
        match self.idle_flush_due_in() {
            Some(due) if due.is_zero() => {
                self.flush()?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Writes and `fdatasync`s everything buffered — the group commit.
    ///
    /// Failure-safe against retries: the write phase tracks how many bytes
    /// the OS has accepted, so a flush that failed midway (partial write,
    /// failed sync) is *resumed* on the next attempt — whether that comes
    /// from the next append, the idle-flush timer, or shutdown — never
    /// restarted, which would append the already-accepted prefix a second
    /// time and corrupt the segment with duplicate records.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending_events == 0 {
            return Ok(());
        }
        let started = Instant::now();
        while self.pending_written < self.pending.len() {
            let accepted = self
                .segment
                .write_some(&self.pending[self.pending_written..])?;
            self.pending_written += accepted;
        }
        self.segment.sync()?;
        let elapsed = started.elapsed();
        self.stats.flushes += 1;
        self.stats.flushed_events += self.pending_events as u64;
        self.stats.last_flush = elapsed;
        self.stats.max_flush = self.stats.max_flush.max(elapsed);
        if let Some(observer) = self.observer.0.as_ref() {
            observer(self.pending_events as u64, elapsed);
        }
        self.disk_bytes += self.pending.len() as u64;
        self.pending.clear();
        self.pending_written = 0;
        self.pending_events = 0;
        self.pending_strict = 0;
        self.first_pending_at = None;
        self.last_flush_at = Instant::now();
        Ok(())
    }

    /// Drops every buffered (unflushed) event without writing it — the
    /// fault-injection hook that makes an in-process "kill" behave like a
    /// real crash: acknowledged-but-unsynced events vanish. (Bytes a failed
    /// flush already handed to the OS stay in the file unsynced, exactly
    /// like a real crash's torn tail.)
    pub fn abandon(&mut self) {
        self.pending.clear();
        self.pending_written = 0;
        self.pending_events = 0;
        self.pending_strict = 0;
        self.first_pending_at = None;
    }

    /// Test hook: behaves like a flush that wrote `bytes` of the buffer and
    /// then died before the sync — the state a real partial-write failure
    /// leaves behind, which the next [`CampaignLog::flush`] must resume.
    #[cfg(test)]
    fn simulate_partial_flush(&mut self, bytes: usize) {
        let target = bytes.min(self.pending.len());
        while self.pending_written < target {
            let accepted = self
                .segment
                .write_some(&self.pending[self.pending_written..target])
                .expect("test segment accepts writes");
            self.pending_written += accepted;
        }
    }

    /// Flush accounting so far.
    pub fn stats(&self) -> FlushStats {
        self.stats
    }

    /// Bytes currently on disk across this shard's segments (excluding
    /// buffered, unflushed bytes) — tracked, no directory scan.
    pub fn on_disk_bytes(&self) -> u64 {
        self.disk_bytes
    }

    /// Like [`CampaignLog::on_disk_bytes`] but measured from the
    /// filesystem (tests cross-check the tracked counter against this).
    pub fn segment_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for idx in segment_indices(&self.dir)? {
            total += std::fs::metadata(segment_path(&self.dir, idx))
                .map_err(io_err)?
                .len();
        }
        Ok(total)
    }

    /// Atomically writes a campaign's snapshot, stamped with its current
    /// last sequence number (everything at or below it is superseded).
    /// Buffered events are flushed first so the snapshot never claims a
    /// sequence number that could vanish in a crash.
    pub fn write_snapshot(&mut self, campaign: CampaignId, payload: &[u8]) -> Result<u64> {
        self.flush()?;
        let seq = self.last_seq(campaign);
        let mut bytes = BytesMut::with_capacity(12 + payload.len());
        bytes.put_u64_le(seq);
        bytes.put_u32_le(crc32(payload));
        bytes.put_slice(payload);
        let dst = snapshot_path(&self.dir, campaign);
        let tmp = dst.with_extension("bin.tmp");
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(&bytes).map_err(io_err)?;
        f.sync_data().map_err(io_err)?;
        std::fs::rename(&tmp, &dst).map_err(io_err)?;
        // Pin the rename itself: without the directory fsync a power loss
        // can drop the new name even though its contents were synced.
        sync_dir(&self.dir)?;
        Ok(seq)
    }

    /// The on-disk segment files of this log, ascending by index — the
    /// last entry is the segment currently being appended to; everything
    /// before it is sealed (never written again). Replication bootstrap
    /// iterates these with [`read_segment`].
    pub fn segments(&self) -> Result<Vec<PathBuf>> {
        list_segments(&self.dir)
    }

    /// Reads one campaign's **durable** events with sequence numbers
    /// strictly beyond `after_seq` from this log's on-disk segments,
    /// ascending. Buffered (unflushed) events are invisible by
    /// construction — they are not durable, so a log shipper must not
    /// hand them to a follower. A torn tail (crash artifact) ends the scan
    /// of its segment cleanly; a mid-segment CRC failure is an error.
    pub fn export_events_after(
        &self,
        campaign: CampaignId,
        after_seq: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        for path in self.segments()? {
            let (events, tail) = read_segment(&path)?;
            if let WalTail::Corrupt(offset) = tail {
                return Err(Error::Storage(format!(
                    "corrupt event record at byte {offset} of {}",
                    path.display()
                )));
            }
            for event in events {
                if event.campaign == campaign && event.seq > after_seq {
                    out.push((event.seq, event.payload));
                }
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.dedup_by(|a, b| a.0 == b.0);
        Ok(out)
    }

    /// Starts a fresh segment and deletes all older ones. Call only after
    /// [`CampaignLog::write_snapshot`] has covered every campaign this
    /// shard owns — pruned events are gone for good.
    pub fn prune_segments(&mut self) -> Result<()> {
        self.flush()?;
        let new_index = self.segment_index + 1;
        let new_segment = Wal::open(segment_path(&self.dir, new_index))?;
        let old_indices = segment_indices(&self.dir)?;
        self.segment = new_segment;
        self.segment_index = new_index;
        for idx in old_indices {
            if idx < new_index {
                std::fs::remove_file(segment_path(&self.dir, idx)).map_err(io_err)?;
            }
        }
        // The new segment's creation (and the deletions) must survive
        // power loss before replay cost is considered bounded.
        sync_dir(&self.dir)?;
        self.disk_bytes = 0;
        Ok(())
    }
}

impl Drop for CampaignLog {
    /// Normal shutdown flushes the tail batch; crashes are simulated by
    /// calling [`CampaignLog::abandon`] first.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// One campaign's recovered durable state. Payloads are [`PayloadBytes`]
/// views into per-file arenas: recovery allocates one buffer per segment or
/// snapshot *file*, not one per event.
#[derive(Debug, Clone, Default)]
pub struct CampaignRecovery {
    /// Highest-sequence intact snapshot payload, if any snapshot was taken.
    pub snapshot: Option<(u64, PayloadBytes)>,
    /// Event payloads with sequence numbers strictly beyond the snapshot,
    /// ascending and gap-free.
    pub events: Vec<(u64, PayloadBytes)>,
    /// Highest durable sequence number (snapshot or event).
    pub last_seq: u64,
}

/// Everything recovered from a durability directory tree.
#[derive(Debug, Clone, Default)]
pub struct TreeRecovery {
    /// Recovered campaigns, ascending by id (`BTreeMap` keeps recovery
    /// deterministic).
    pub campaigns: BTreeMap<CampaignId, CampaignRecovery>,
    /// Log segments scanned across shard directories.
    pub segments_scanned: u64,
    /// Segments that ended in a torn record (crash artifacts, tolerated).
    pub torn_tails: u64,
    /// Payload buffers allocated while reading (one per file arena) —
    /// before the shared-arena read path this was one per event plus one
    /// per snapshot; the durability bench reports both counts.
    pub payload_allocations: u64,
    /// Event records decoded across all scanned segments.
    pub events_recovered: u64,
}

fn read_snapshot_file(path: &Path) -> Result<(u64, PayloadBytes)> {
    let data = std::fs::read(path).map_err(io_err)?;
    if data.len() < 12 {
        return Err(Error::Storage(format!(
            "snapshot {} truncated ({} bytes)",
            path.display(),
            data.len()
        )));
    }
    let mut cursor = &data[..];
    let seq = cursor.get_u64_le();
    let crc = cursor.get_u32_le();
    if crc32(cursor) != crc {
        return Err(Error::Storage(format!(
            "snapshot {} failed its CRC check",
            path.display()
        )));
    }
    let len = data.len();
    Ok((seq, PayloadBytes::slice_of(&Arc::new(data), 12..len)))
}

/// Decodes the campaign/sequence tag of one event record, borrowed — the
/// payload is the remainder of the record, sliced by the caller.
fn decode_event_tag(record: &[u8], path: &Path) -> Result<(CampaignId, u64)> {
    if record.len() < 12 {
        return Err(Error::Storage(format!(
            "malformed event record in {}",
            path.display()
        )));
    }
    let mut cursor = record;
    let campaign = CampaignId(cursor.get_u32_le());
    let seq = cursor.get_u64_le();
    Ok((campaign, seq))
}

/// Recovers every campaign under `base`: the directory itself plus each
/// immediate subdirectory is scanned as one shard log. Shard counts may
/// differ between the writing and the recovering service — events are
/// merged per campaign by sequence number, duplicates (identical records
/// reachable through two epochs' directories) collapse, and a sequence gap
/// or a mid-segment CRC failure aborts recovery with a clean error.
pub fn recover_tree(base: impl AsRef<Path>) -> Result<TreeRecovery> {
    let base = base.as_ref();
    let mut dirs = vec![base.to_path_buf()];
    match std::fs::read_dir(base) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry.map_err(io_err)?;
                let path = entry.path();
                if path.is_dir() {
                    dirs.push(path);
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(TreeRecovery::default()),
        Err(e) => return Err(io_err(e)),
    }
    dirs.sort();

    let mut recovery = TreeRecovery::default();
    let mut raw_events: HashMap<CampaignId, Vec<(u64, PayloadBytes)>> = HashMap::new();
    for dir in &dirs {
        // Snapshots: keep the highest sequence per campaign.
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(io_err(e)),
        };
        for entry in entries {
            let entry = entry.map_err(io_err)?;
            let Some(name) = entry.file_name().to_str().map(str::to_owned) else {
                continue;
            };
            if let Some(campaign) = parse_snapshot_id(&name) {
                let (seq, payload) = read_snapshot_file(&entry.path())?;
                recovery.payload_allocations += 1;
                let slot = recovery.campaigns.entry(campaign).or_default();
                if slot.snapshot.as_ref().is_none_or(|(s, _)| *s < seq) {
                    slot.snapshot = Some((seq, payload));
                }
            }
        }
        // Segments: load each file into one shared arena and hand out
        // borrowed payload views — no per-event copy. Torn tails are
        // tolerated (crash artifacts).
        for path in list_segments(dir)? {
            let arena = Arc::new(Wal::load(&path)?);
            let (records, tail) = Wal::scan(&arena);
            recovery.segments_scanned += 1;
            recovery.payload_allocations += 1;
            match tail {
                WalTail::Clean => {}
                WalTail::Torn => recovery.torn_tails += 1,
                WalTail::Corrupt(offset) => {
                    return Err(Error::Storage(format!(
                        "corrupt event record at byte {offset} of {} — refusing to \
                         recover past silent data loss",
                        path.display()
                    )));
                }
            }
            for range in records {
                let (campaign, seq) = decode_event_tag(&arena[range.clone()], &path)?;
                recovery.events_recovered += 1;
                raw_events.entry(campaign).or_default().push((
                    seq,
                    PayloadBytes::slice_of(&arena, range.start + 12..range.end),
                ));
            }
        }
    }

    for (campaign, mut events) in raw_events {
        let slot = recovery.campaigns.entry(campaign).or_default();
        events.sort_by_key(|(seq, _)| *seq);
        let snapshot_seq = slot.snapshot.as_ref().map_or(0, |(seq, _)| *seq);
        let mut kept: Vec<(u64, PayloadBytes)> = Vec::new();
        for (seq, payload) in events {
            if seq <= snapshot_seq {
                continue;
            }
            match kept.last() {
                Some((prev, prev_payload)) if *prev == seq => {
                    if *prev_payload != payload {
                        return Err(Error::Storage(format!(
                            "campaign {campaign} has two different events with sequence {seq}"
                        )));
                    }
                }
                _ => kept.push((seq, payload)),
            }
        }
        if let Some((first, _)) = kept.first() {
            if *first != snapshot_seq + 1 {
                return Err(Error::Storage(format!(
                    "campaign {campaign} log gap: snapshot at {snapshot_seq}, first event {first}"
                )));
            }
        }
        for window in kept.windows(2) {
            if window[1].0 != window[0].0 + 1 {
                return Err(Error::Storage(format!(
                    "campaign {campaign} log gap between sequences {} and {}",
                    window[0].0, window[1].0
                )));
            }
        }
        slot.last_seq = kept.last().map_or(snapshot_seq, |(seq, _)| *seq);
        slot.events = kept;
    }
    // Campaigns known only from a snapshot still carry their sequence.
    for slot in recovery.campaigns.values_mut() {
        if slot.events.is_empty() {
            if let Some((seq, _)) = &slot.snapshot {
                slot.last_seq = slot.last_seq.max(*seq);
            }
        }
    }
    Ok(recovery)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("docs-clog-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const C0: CampaignId = CampaignId(0);
    const C1: CampaignId = CampaignId(1);

    /// Copies arena-backed recovery events into owned pairs so assertions
    /// can compare against plain `Vec<u8>` literals.
    fn owned(events: &[(u64, PayloadBytes)]) -> Vec<(u64, Vec<u8>)> {
        events.iter().map(|(seq, p)| (*seq, p.to_vec())).collect()
    }

    #[test]
    fn append_flush_recover_roundtrip() {
        let base = tmp_dir("roundtrip");
        {
            let mut log = CampaignLog::open(base.join("shard-0")).unwrap();
            log.register(C0, FlushPolicy::EveryEvent, 0);
            log.register(C1, FlushPolicy::EveryEvent, 0);
            assert_eq!(log.append_event(C0, b"a0").unwrap(), 1);
            assert_eq!(log.append_event(C1, b"b0").unwrap(), 1);
            assert_eq!(log.append_event(C0, b"a1").unwrap(), 2);
        }
        let rec = recover_tree(&base).unwrap();
        assert_eq!(rec.campaigns.len(), 2);
        let c0 = &rec.campaigns[&C0];
        assert_eq!(c0.last_seq, 2);
        assert_eq!(
            owned(&c0.events),
            vec![(1, b"a0".to_vec()), (2, b"a1".to_vec())],
            "per-campaign sequences interleave cleanly"
        );
        assert_eq!(owned(&rec.campaigns[&C1].events), vec![(1, b"b0".to_vec())]);
    }

    #[test]
    fn batch_policy_defers_the_sync_and_abandon_loses_the_tail() {
        let base = tmp_dir("batch");
        let mut log = CampaignLog::open(base.join("shard-0")).unwrap();
        log.register(C0, FlushPolicy::Batch(3), 0);
        log.append_event(C0, b"e1").unwrap();
        log.append_event(C0, b"e2").unwrap();
        assert_eq!(log.pending_events(), 2, "batch of 3 not yet due");
        assert_eq!(log.stats().flushes, 0);
        log.append_event(C0, b"e3").unwrap();
        assert_eq!(log.pending_events(), 0, "third event triggers the flush");
        assert_eq!(log.stats().flushes, 1);
        assert_eq!(log.stats().flushed_events, 3);
        // Two more, then crash: the unflushed tail must vanish.
        log.append_event(C0, b"e4").unwrap();
        log.append_event(C0, b"e5").unwrap();
        log.abandon();
        drop(log);
        let rec = recover_tree(&base).unwrap();
        let c0 = &rec.campaigns[&C0];
        assert_eq!(c0.last_seq, 3);
        assert_eq!(c0.events.len(), 3);
    }

    #[test]
    fn adaptive_commit_batches_every_event_appends() {
        let base = tmp_dir("adaptive");
        let mut log = CampaignLog::open(base.join("shard-0")).unwrap();
        log.register(C0, FlushPolicy::EveryEvent, 0);
        log.set_adaptive(Some(AdaptiveCommit {
            max_batch_events: 4,
            max_batch_bytes: 1 << 20,
            max_delay: Duration::from_secs(3600), // never trip on time here
        }));
        // Three appends buffer; EveryEvent no longer syncs per append.
        for payload in [b"e1", b"e2", b"e3"] {
            log.append_event(C0, payload).unwrap();
        }
        assert_eq!(log.stats().flushes, 0);
        assert_eq!(log.pending_events(), 3);
        assert!(
            log.adaptive_flush_due_in().is_some(),
            "a deadline is armed while events are pending"
        );
        // The fourth trips the event bound: one fdatasync for the batch.
        log.append_event(C0, b"e4").unwrap();
        assert_eq!(log.stats().flushes, 1);
        assert_eq!(log.stats().flushed_events, 4);
        assert_eq!(log.pending_events(), 0);
        assert!(log.adaptive_flush_due_in().is_none(), "nothing pending");
        // Byte bound trips independently of the event bound.
        log.set_adaptive(Some(AdaptiveCommit {
            max_batch_events: 1000,
            max_batch_bytes: 1,
            max_delay: Duration::from_secs(3600),
        }));
        log.append_event(C0, b"big enough").unwrap();
        assert_eq!(log.stats().flushes, 2);
        // Turning adaptive off restores strict per-append durability.
        log.set_adaptive(None);
        log.append_event(C0, b"strict").unwrap();
        assert_eq!(log.stats().flushes, 3);
        drop(log);
        // Everything flushed is recoverable, in order.
        let rec = recover_tree(&base).unwrap();
        assert_eq!(
            owned(&rec.campaigns[&C0].events),
            vec![
                (1, b"e1".to_vec()),
                (2, b"e2".to_vec()),
                (3, b"e3".to_vec()),
                (4, b"e4".to_vec()),
                (5, b"big enough".to_vec()),
                (6, b"strict".to_vec()),
            ]
        );
    }

    #[test]
    fn adaptive_commit_deadline_makes_buffered_events_due() {
        let base = tmp_dir("adaptive-deadline");
        let mut log = CampaignLog::open(base.join("shard-0")).unwrap();
        log.register(C0, FlushPolicy::EveryEvent, 0);
        log.set_adaptive(Some(AdaptiveCommit {
            max_batch_events: 1000,
            max_batch_bytes: 1 << 20,
            max_delay: Duration::from_millis(1),
        }));
        log.append_event(C0, b"first").unwrap();
        assert_eq!(log.stats().flushes, 0, "within the latency window");
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(
            log.adaptive_flush_due_in(),
            Some(Duration::ZERO),
            "deadline passed — batch is overdue"
        );
        // The next append observes the expired deadline and syncs the batch.
        log.append_event(C0, b"second").unwrap();
        assert_eq!(log.stats().flushes, 1);
        assert_eq!(log.stats().flushed_events, 2);
    }

    #[test]
    fn failed_flush_resumes_instead_of_duplicating_records() {
        let base = tmp_dir("flush-resume");
        let mut log = CampaignLog::open(base.join("shard-0")).unwrap();
        log.register(C0, FlushPolicy::Batch(100), 0);
        log.append_event(C0, b"one").unwrap();
        log.append_event(C0, b"two").unwrap();
        log.append_event(C0, b"three").unwrap();
        // A flush died after handing a partial prefix to the OS (mid-record:
        // 5 bytes is inside "one"'s header+payload)…
        log.simulate_partial_flush(5);
        // …and more events can arrive before the retry.
        log.append_event(C0, b"four").unwrap();
        // The retried flush must resume at the accepted prefix — not
        // rewrite it — or the segment would hold duplicate records.
        log.flush().unwrap();
        drop(log);
        let rec = recover_tree(&base).unwrap();
        let c0 = &rec.campaigns[&C0];
        assert_eq!(
            owned(&c0.events),
            vec![
                (1, b"one".to_vec()),
                (2, b"two".to_vec()),
                (3, b"three".to_vec()),
                (4, b"four".to_vec()),
            ],
            "every record exactly once, in order"
        );
    }

    #[test]
    fn idle_flush_deadline_tracks_interval_policies() {
        let base = tmp_dir("idle-deadline");
        let mut log = CampaignLog::open(base.join("shard-0")).unwrap();
        // No interval policy: never a deadline, even with events buffered.
        log.register(C0, FlushPolicy::Batch(100), 0);
        log.append_event(C0, b"e1").unwrap();
        assert_eq!(log.idle_flush_due_in(), None);
        assert!(!log.flush_if_due().unwrap());
        assert_eq!(log.pending_events(), 1);
        // An interval campaign joins: its window now bounds the buffer age
        // of *everything* pending (group commit hardens neighbors too).
        log.register(C1, FlushPolicy::IntervalMs(10_000), 0);
        assert_eq!(log.min_interval(), Some(Duration::from_secs(10)));
        let due = log.idle_flush_due_in().expect("deadline exists");
        assert!(due <= Duration::from_secs(10) && due > Duration::from_secs(9));
        assert!(!log.flush_if_due().unwrap(), "window has not elapsed");
        // A zero-length interval is immediately overdue.
        log.register(C1, FlushPolicy::IntervalMs(0), 0);
        assert_eq!(log.idle_flush_due_in(), Some(Duration::ZERO));
        assert!(log.flush_if_due().unwrap());
        assert_eq!(log.pending_events(), 0);
        assert_eq!(log.idle_flush_due_in(), None, "nothing left to harden");
        assert_eq!(log.stats().flushes, 1);
    }

    #[test]
    fn segment_export_sees_durable_events_only() {
        let base = tmp_dir("export");
        let mut log = CampaignLog::open(base.join("shard-0")).unwrap();
        log.register(C0, FlushPolicy::Batch(3), 0);
        log.register(C1, FlushPolicy::EveryEvent, 0);
        log.append_event(C0, b"a1").unwrap();
        // Buffered events are not durable, so the export must not see them.
        assert!(
            log.export_events_after(C0, 0).unwrap().is_empty(),
            "unflushed events leaked into the export"
        );
        // An EveryEvent neighbor forces the group commit: both harden.
        log.append_event(C1, b"b1").unwrap();
        assert_eq!(
            log.export_events_after(C0, 0).unwrap(),
            vec![(1, b"a1".to_vec())]
        );
        log.append_event(C0, b"a2").unwrap();
        log.flush().unwrap();
        // `after_seq` is exclusive, per-campaign.
        assert_eq!(
            log.export_events_after(C0, 1).unwrap(),
            vec![(2, b"a2".to_vec())]
        );
        assert_eq!(
            log.export_events_after(C1, 0).unwrap(),
            vec![(1, b"b1".to_vec())]
        );
        // Export spans segments: prune starts a fresh one.
        log.write_snapshot(C0, b"state").unwrap();
        log.prune_segments().unwrap();
        log.append_event(C0, b"a3").unwrap();
        log.flush().unwrap();
        assert_eq!(
            log.export_events_after(C0, 2).unwrap(),
            vec![(3, b"a3".to_vec())]
        );
        // The iteration API underneath: one live segment after the prune.
        let segments = log.segments().unwrap();
        assert_eq!(segments.len(), 1);
        let (events, tail) = read_segment(&segments[0]).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(
            events,
            vec![SegmentEvent {
                campaign: C0,
                seq: 3,
                payload: b"a3".to_vec(),
            }]
        );
    }

    #[test]
    fn snapshot_supersedes_events_and_pruning_bounds_replay() {
        let base = tmp_dir("snapshot");
        {
            let mut log = CampaignLog::open(base.join("shard-0")).unwrap();
            log.register(C0, FlushPolicy::EveryEvent, 0);
            for i in 0..5 {
                log.append_event(C0, format!("e{i}").as_bytes()).unwrap();
            }
            assert_eq!(log.write_snapshot(C0, b"state-at-5").unwrap(), 5);
            log.prune_segments().unwrap();
            log.append_event(C0, b"e5").unwrap();
            assert!(log.segment_bytes().unwrap() > 0);
            assert_eq!(
                log.on_disk_bytes(),
                log.segment_bytes().unwrap(),
                "tracked byte gauge matches the filesystem"
            );
        }
        let rec = recover_tree(&base).unwrap();
        let c0 = &rec.campaigns[&C0];
        let (snap_seq, snap_payload) = c0.snapshot.as_ref().expect("snapshot recovered");
        assert_eq!(
            (*snap_seq, snap_payload.to_vec()),
            (5, b"state-at-5".to_vec())
        );
        assert_eq!(owned(&c0.events), vec![(6, b"e5".to_vec())]);
        assert_eq!(c0.last_seq, 6);
    }

    #[test]
    fn torn_tail_is_tolerated_but_mid_log_corruption_is_fatal() {
        let base = tmp_dir("torn-vs-corrupt");
        let shard = base.join("shard-0");
        {
            let mut log = CampaignLog::open(&shard).unwrap();
            log.register(C0, FlushPolicy::EveryEvent, 0);
            log.append_event(C0, b"keep-1").unwrap();
            log.append_event(C0, b"keep-2").unwrap();
        }
        let segment = segment_path(&shard, 0);
        // Torn tail: a partial record appended by a dying writer.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&segment)
                .unwrap();
            f.write_all(&[60, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        let rec = recover_tree(&base).unwrap();
        assert_eq!(rec.torn_tails, 1);
        assert_eq!(rec.campaigns[&C0].events.len(), 2);
        // Corruption: flip a payload byte of the *first* (complete) record.
        let mut data = std::fs::read(&segment).unwrap();
        data[8 + 12] ^= 0xFF; // past the wal header + campaign/seq tag
        std::fs::write(&segment, &data).unwrap();
        let err = recover_tree(&base).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn reopening_never_appends_to_a_recovered_segment() {
        let base = tmp_dir("fresh-segment");
        let shard = base.join("shard-0");
        {
            let mut log = CampaignLog::open(&shard).unwrap();
            log.register(C0, FlushPolicy::EveryEvent, 0);
            log.append_event(C0, b"epoch-1").unwrap();
        }
        {
            let mut log = CampaignLog::open(&shard).unwrap();
            // Seed the sequence as a recovering service would.
            log.register(C0, FlushPolicy::EveryEvent, 1);
            log.append_event(C0, b"epoch-2").unwrap();
        }
        assert!(segment_path(&shard, 0).exists());
        assert!(segment_path(&shard, 1).exists());
        let rec = recover_tree(&base).unwrap();
        assert_eq!(
            owned(&rec.campaigns[&C0].events),
            vec![(1, b"epoch-1".to_vec()), (2, b"epoch-2".to_vec())]
        );
    }

    #[test]
    fn cross_shard_epochs_merge_by_sequence() {
        let base = tmp_dir("cross-shard");
        // Epoch 1: a 1-shard service wrote campaign 0 to shard-0.
        {
            let mut log = CampaignLog::open(base.join("shard-0")).unwrap();
            log.register(C0, FlushPolicy::EveryEvent, 0);
            log.append_event(C0, b"s1").unwrap();
            log.append_event(C0, b"s2").unwrap();
        }
        // Epoch 2: a 4-shard service owns campaign 0 on shard-2 and
        // continues from the recovered sequence.
        {
            let mut log = CampaignLog::open(base.join("shard-2")).unwrap();
            log.register(C0, FlushPolicy::EveryEvent, 2);
            log.append_event(C0, b"s3").unwrap();
        }
        let rec = recover_tree(&base).unwrap();
        assert_eq!(
            owned(&rec.campaigns[&C0].events),
            vec![
                (1, b"s1".to_vec()),
                (2, b"s2".to_vec()),
                (3, b"s3".to_vec())
            ]
        );
    }

    #[test]
    fn truncated_snapshot_tmp_is_ignored_but_truncated_snapshot_fails() {
        let base = tmp_dir("snap-truncated");
        let shard = base.join("shard-0");
        {
            let mut log = CampaignLog::open(&shard).unwrap();
            log.register(C0, FlushPolicy::EveryEvent, 0);
            log.append_event(C0, b"e").unwrap();
            log.write_snapshot(C0, b"good").unwrap();
        }
        // A crash mid-snapshot leaves a half-written tmp file: harmless.
        std::fs::write(shard.join("snap-0.bin.tmp"), b"half").unwrap();
        assert!(recover_tree(&base).unwrap().campaigns[&C0]
            .snapshot
            .is_some());
        // But a truncated *renamed* snapshot must fail loudly.
        std::fs::write(shard.join("snap-0.bin"), b"short").unwrap();
        let err = recover_tree(&base).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn missing_base_directory_recovers_empty() {
        let rec = recover_tree(tmp_dir("missing").join("nope")).unwrap();
        assert!(rec.campaigns.is_empty());
        assert_eq!(rec.segments_scanned, 0);
    }

    #[test]
    fn sequence_gap_is_a_clean_error() {
        let base = tmp_dir("gap");
        let shard = base.join("shard-0");
        {
            let mut log = CampaignLog::open(&shard).unwrap();
            log.register(C0, FlushPolicy::EveryEvent, 0);
            log.append_event(C0, b"one").unwrap();
            // Simulate a pruning bug / lost middle segment by skipping ahead.
            log.register(C0, FlushPolicy::EveryEvent, 5);
            log.append_event(C0, b"six").unwrap();
        }
        let err = recover_tree(&base).unwrap_err();
        assert!(err.to_string().contains("gap"), "{err}");
    }
}
