//! CRC-32 (IEEE 802.3) used to detect torn or corrupted WAL records.
//!
//! The implementation lives in `docs-types` (the binary codec frames its
//! records with the same checksum); this module keeps the historical
//! `docs_storage::crc32` path alive and adds the incremental [`Crc32`]
//! hasher used by streamed snapshot writers.

pub use docs_types::{crc32, Crc32};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streamed_writes_checksum_like_one_shot() {
        let mut hasher = Crc32::new();
        for chunk in [b"12".as_slice(), b"345", b"", b"6789"] {
            hasher.update(chunk);
        }
        assert_eq!(hasher.finalize(), crc32(b"123456789"));
    }
}
