//! CRC-32 (IEEE 802.3) used to detect torn or corrupted WAL records.

/// Lazily built 256-entry lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// Computes the CRC-32 checksum of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"hello world".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
