//! Append-only write-ahead log with CRC-checked, length-prefixed records.
//!
//! Record layout: `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`.
//! Replay stops cleanly at the first incomplete or corrupt record — the
//! state of affairs after a crash mid-append — so everything durable before
//! the torn tail is recovered.

use crate::{crc32, io_err};
use bytes::{Buf, BufMut, BytesMut};
use docs_types::Result;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// One recovered WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry(pub Vec<u8>);

/// How a [`Wal::replay_all`] scan ended.
///
/// The distinction matters to recovery policy: a torn tail is the expected
/// artifact of a crash mid-append (the durable prefix is complete and
/// replay may continue with later segments), while a CRC mismatch on a
/// *complete* record means the medium corrupted data that was once durable
/// — silently dropping it would serve wrong state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The file ended exactly at a record boundary.
    Clean,
    /// The final record is incomplete (fewer bytes than its header
    /// promises, or a partial header) — a crash mid-append.
    Torn,
    /// A complete record failed its CRC check at this byte offset.
    Corrupt(usize),
}

/// The write-ahead log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Opens (creating if needed) the log at `path` for appending.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(Wal { path, file })
    }

    /// Encodes one record (`[len][crc][payload]`) into `buf`. Group-commit
    /// callers batch several encoded records and hand them to
    /// [`Wal::write_raw`] in one write.
    pub fn encode_record(payload: &[u8], buf: &mut BytesMut) {
        buf.put_u32_le(payload.len() as u32);
        buf.put_u32_le(crc32(payload));
        buf.put_slice(payload);
    }

    /// Writes pre-encoded record bytes and flushes them to the OS (one
    /// write syscall regardless of how many records `bytes` holds).
    pub fn write_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.write_all(bytes).map_err(io_err)?;
        self.file.flush().map_err(io_err)
    }

    /// Hands `bytes` to the OS with a single `write` call and returns how
    /// many were accepted — the resumable building block of group-commit
    /// flushing. Callers track the accepted prefix so a flush that failed
    /// midway is *resumed*, never restarted: re-writing already-accepted
    /// bytes would duplicate records in the segment.
    pub fn write_some(&mut self, bytes: &[u8]) -> Result<usize> {
        loop {
            match self.file.write(bytes) {
                Ok(0) if !bytes.is_empty() => {
                    return Err(io_err(std::io::Error::from(std::io::ErrorKind::WriteZero)))
                }
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Forces written records to stable storage (`fdatasync`). Group commit
    /// amortizes this call across a batch of records.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data().map_err(io_err)
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut buf = BytesMut::with_capacity(8 + payload.len());
        Self::encode_record(payload, &mut buf);
        self.write_raw(&buf)
    }

    /// Replays all intact records from the start of the log. Stops silently
    /// at the first torn or corrupt record (crash-recovery semantics).
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalEntry>> {
        Ok(Self::replay_all(path)?.0)
    }

    /// Reads the whole log file into memory; a missing file reads as empty.
    /// Pair with [`Wal::scan`]: load once, then hand out borrowed payload
    /// views instead of copying each record.
    pub fn load(path: impl AsRef<Path>) -> Result<Vec<u8>> {
        let mut data = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut data).map_err(io_err)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(e)),
        }
        Ok(data)
    }

    /// Scans loaded log bytes and returns the payload byte range of every
    /// intact record, plus how the scan ended. The ranges index into `data`
    /// — the zero-copy recovery path slices them out of a shared arena
    /// instead of `to_vec()`-ing each payload.
    pub fn scan(data: &[u8]) -> (Vec<std::ops::Range<usize>>, WalTail) {
        let mut records = Vec::new();
        let mut offset = 0usize;
        let tail = loop {
            let cursor = &data[offset..];
            if cursor.is_empty() {
                break WalTail::Clean;
            }
            if cursor.len() < 8 {
                break WalTail::Torn; // partial header
            }
            let len = (&cursor[0..4]).get_u32_le() as usize;
            let crc = (&cursor[4..8]).get_u32_le();
            if cursor.len() < 8 + len {
                break WalTail::Torn; // record promises more bytes than exist
            }
            let payload = &cursor[8..8 + len];
            if crc32(payload) != crc {
                break WalTail::Corrupt(offset);
            }
            records.push(offset + 8..offset + 8 + len);
            offset += 8 + len;
        };
        (records, tail)
    }

    /// Replays all intact records and reports how the scan ended, letting
    /// callers distinguish a crash artifact ([`WalTail::Torn`]) from data
    /// corruption ([`WalTail::Corrupt`]). A missing file reads as empty and
    /// clean. Entries are owned copies; the recovery hot path uses
    /// [`Wal::load`] + [`Wal::scan`] directly to avoid them.
    pub fn replay_all(path: impl AsRef<Path>) -> Result<(Vec<WalEntry>, WalTail)> {
        let data = Self::load(path)?;
        let (records, tail) = Self::scan(&data);
        let entries = records
            .into_iter()
            .map(|r| WalEntry(data[r].to_vec()))
            .collect();
        Ok((entries, tail))
    }

    /// Truncates the log to empty (after a snapshot has captured its
    /// contents).
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0).map_err(io_err)?;
        self.file.sync_all().map_err(io_err)
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte length of the log on disk.
    pub fn len_bytes(&self) -> Result<u64> {
        self.file.metadata().map(|m| m.len()).map_err(io_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("docs-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.append(b"").unwrap();
        let entries = Wal::replay(&path).unwrap();
        assert_eq!(
            entries,
            vec![
                WalEntry(b"one".to_vec()),
                WalEntry(b"two".to_vec()),
                WalEntry(vec![]),
            ]
        );
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let path = tmp("missing");
        assert!(Wal::replay(path.with_file_name("nope.log"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"keep me").unwrap();
        wal.append(b"also keep").unwrap();
        drop(wal);
        // Simulate a crash mid-append: append a header promising more bytes
        // than exist.
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        raw.write_all(&[50, 0, 0, 0, 1, 2, 3, 4, b'x']).unwrap();
        drop(raw);
        let entries = Wal::replay(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1], WalEntry(b"also keep".to_vec()));
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.append(b"evil").unwrap();
        wal.append(b"after").unwrap();
        drop(wal);
        // Flip one payload byte of the middle record.
        let mut data = std::fs::read(&path).unwrap();
        let second_payload_start = 8 + 4 + 8;
        data[second_payload_start] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let entries = Wal::replay(&path).unwrap();
        // Only the first record survives; corruption halts recovery.
        assert_eq!(entries, vec![WalEntry(b"good".to_vec())]);
    }

    #[test]
    fn replay_all_classifies_the_tail() {
        let path = tmp("tails");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        drop(wal);
        let (entries, tail) = Wal::replay_all(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(tail, WalTail::Clean);
        // Torn: partial header.
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        raw.write_all(&[9, 0, 0]).unwrap();
        drop(raw);
        let (entries, tail) = Wal::replay_all(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(tail, WalTail::Torn);
        // Corrupt: flip a payload byte of the first (complete) record.
        let mut data = std::fs::read(&path).unwrap();
        data[8] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let (entries, tail) = Wal::replay_all(&path).unwrap();
        assert!(entries.is_empty());
        assert_eq!(tail, WalTail::Corrupt(0));
    }

    #[test]
    fn batched_raw_writes_replay_like_single_appends() {
        let path = tmp("batched");
        let mut wal = Wal::open(&path).unwrap();
        let mut buf = BytesMut::new();
        Wal::encode_record(b"one", &mut buf);
        Wal::encode_record(b"two", &mut buf);
        Wal::encode_record(b"three", &mut buf);
        wal.write_raw(&buf).unwrap();
        wal.sync().unwrap();
        let entries = Wal::replay(&path).unwrap();
        assert_eq!(
            entries,
            vec![
                WalEntry(b"one".to_vec()),
                WalEntry(b"two".to_vec()),
                WalEntry(b"three".to_vec()),
            ]
        );
    }

    #[test]
    fn truncate_empties_log() {
        let path = tmp("truncate");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"data").unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes().unwrap(), 0);
        assert!(Wal::replay(&path).unwrap().is_empty());
        // The log stays usable after truncation.
        wal.append(b"fresh").unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 1);
    }
}
