//! Shared-arena payload views for the recovery read path.
//!
//! Replaying a campaign tree used to copy every event payload out of its
//! segment (`payload.to_vec()` per record). Recovery now loads each segment
//! file into one reference-counted arena and hands out [`PayloadBytes`] —
//! cheap `(Arc, offset, len)` views — so the allocation count scales with
//! the number of *files*, not the number of *events*.

use std::fmt;
use std::ops::{Deref, Range};
use std::sync::Arc;

/// A borrowed-semantics byte payload backed by a shared arena buffer.
///
/// Dereferences to `&[u8]`; cloning bumps the arena refcount instead of
/// copying bytes. Equality and ordering compare the viewed bytes.
#[derive(Clone)]
pub struct PayloadBytes {
    arena: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl PayloadBytes {
    /// Wraps an owned buffer as its own single-view arena.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        let len = bytes.len();
        PayloadBytes {
            arena: Arc::new(bytes),
            start: 0,
            len,
        }
    }

    /// A view of `range` within a shared arena.
    ///
    /// # Panics
    /// If the range is out of bounds — callers slice ranges produced by the
    /// WAL scanner, which are bounds-checked already.
    pub fn slice_of(arena: &Arc<Vec<u8>>, range: Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= arena.len());
        PayloadBytes {
            arena: Arc::clone(arena),
            start: range.start,
            len: range.end - range.start,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.arena[self.start..self.start + self.len]
    }

    /// Copies the view into a fresh `Vec<u8>` (for callers that need
    /// ownership, e.g. wire frames).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// View length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for PayloadBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PayloadBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for PayloadBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PayloadBytes {}

impl PartialEq<[u8]> for PayloadBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for PayloadBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for PayloadBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for PayloadBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PayloadBytes({:?})", self.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_share_one_arena() {
        let arena = Arc::new(b"abcdef".to_vec());
        let head = PayloadBytes::slice_of(&arena, 0..3);
        let tail = PayloadBytes::slice_of(&arena, 3..6);
        assert_eq!(head, b"abc".to_vec());
        assert_eq!(tail.as_slice(), b"def");
        let clone = tail.clone();
        drop(tail);
        assert_eq!(clone.to_vec(), b"def");
        // Original arena + 2 live views (head, clone).
        assert_eq!(Arc::strong_count(&arena), 3);
    }

    #[test]
    fn equality_compares_bytes_not_arenas() {
        let a = PayloadBytes::from_vec(b"same".to_vec());
        let b = PayloadBytes::slice_of(&Arc::new(b"xxsamexx".to_vec()), 2..6);
        assert_eq!(a, b);
        assert_eq!(a, b"same".to_vec());
        assert!(!a.is_empty());
        assert_eq!(a.len(), 4);
    }
}
