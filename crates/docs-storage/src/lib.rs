//! Embedded parameter database — the "DB" box of Figure 1.
//!
//! Section 4.2 requires DOCS to persist, across requesters, each worker's
//! quality/weight statistics and each task's `M^{(i)}` and `s_i`, so that a
//! returning worker's history is not lost and truth inference can resume
//! after a restart. The paper deploys Django over a SQL database; this crate
//! builds the equivalent storage layer from scratch:
//!
//! * [`Wal`] — an append-only, CRC-checked, length-prefixed log that
//!   tolerates torn writes at the tail (crash recovery),
//! * [`KvStore`] — a keyed byte store: in-memory index + WAL of mutations +
//!   atomic CRC-trailed binary snapshots with log truncation (compaction),
//! * [`ParamStore`] — a typed façade with the key scheme DOCS uses
//!   (`worker/<id>`, `task/<id>`), generic over any `serde` value,
//! * [`CampaignLog`] — the per-service-shard event log of the event-sourced
//!   runtime: group-commit WAL segments ([`FlushPolicy`]), per-campaign
//!   sequence numbers and snapshots, segment pruning, and whole-tree crash
//!   recovery ([`recover_tree`]).
//!
//! Concurrency follows the paper's server model: many platform threads hit
//! the store, so the shared stores are `Send + Sync` (interior
//! `parking_lot` locking); a `CampaignLog` is owned by exactly one shard
//! thread and needs no lock.

mod arena;
mod campaign_log;
mod crc;
mod kv;
mod params;
mod wal;

pub use arena::PayloadBytes;
pub use campaign_log::{
    list_segments, read_segment, recover_tree, AdaptiveCommit, CampaignLog, CampaignRecovery,
    FlushObserver, FlushPolicy, FlushStats, SegmentEvent, TreeRecovery,
};
pub use crc::{crc32, Crc32};
pub use kv::KvStore;
pub use params::ParamStore;
pub use wal::{Wal, WalEntry, WalTail};

use docs_types::Error;

/// Maps I/O failures into the workspace error type.
pub(crate) fn io_err(e: std::io::Error) -> Error {
    Error::Storage(e.to_string())
}
