//! Embedded parameter database — the "DB" box of Figure 1.
//!
//! Section 4.2 requires DOCS to persist, across requesters, each worker's
//! quality/weight statistics and each task's `M^{(i)}` and `s_i`, so that a
//! returning worker's history is not lost and truth inference can resume
//! after a restart. The paper deploys Django over a SQL database; this crate
//! builds the equivalent storage layer from scratch:
//!
//! * [`Wal`] — an append-only, CRC-checked, length-prefixed log that
//!   tolerates torn writes at the tail (crash recovery),
//! * [`KvStore`] — a keyed byte store: in-memory index + WAL of mutations +
//!   atomic JSON snapshots with log truncation (compaction),
//! * [`ParamStore`] — a typed façade with the key scheme DOCS uses
//!   (`worker/<id>`, `task/<id>`), generic over any `serde` value.
//!
//! Concurrency follows the paper's server model: many platform threads hit
//! the store, so every public type is `Send + Sync` (interior
//! `parking_lot` locking).

mod crc;
mod kv;
mod params;
mod wal;

pub use crc::crc32;
pub use kv::KvStore;
pub use params::ParamStore;
pub use wal::{Wal, WalEntry};

use docs_types::Error;

/// Maps I/O failures into the workspace error type.
pub(crate) fn io_err(e: std::io::Error) -> Error {
    Error::Storage(e.to_string())
}
