//! The keyed byte store: snapshot + WAL of mutations + in-memory index.

use crate::{io_err, Wal};
use bytes::{Buf, BufMut, BytesMut};
use docs_types::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

fn encode_put(key: &str, value: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(9 + key.len() + value.len());
    buf.put_u8(OP_PUT);
    buf.put_u32_le(key.len() as u32);
    buf.put_slice(key.as_bytes());
    buf.put_u32_le(value.len() as u32);
    buf.put_slice(value);
    buf.to_vec()
}

fn encode_delete(key: &str) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(5 + key.len());
    buf.put_u8(OP_DELETE);
    buf.put_u32_le(key.len() as u32);
    buf.put_slice(key.as_bytes());
    buf.to_vec()
}

fn decode(mut record: &[u8]) -> Result<(u8, String, Vec<u8>)> {
    let fail = || Error::Storage("malformed WAL record".into());
    if record.len() < 5 {
        return Err(fail());
    }
    let op = record.get_u8();
    let klen = record.get_u32_le() as usize;
    if record.len() < klen {
        return Err(fail());
    }
    let key = String::from_utf8(record[..klen].to_vec()).map_err(|_| fail())?;
    record.advance(klen);
    let value = match op {
        OP_PUT => {
            if record.len() < 4 {
                return Err(fail());
            }
            let vlen = record.get_u32_le() as usize;
            if record.len() < vlen {
                return Err(fail());
            }
            record[..vlen].to_vec()
        }
        OP_DELETE => Vec::new(),
        _ => return Err(fail()),
    };
    Ok((op, key, value))
}

#[derive(Debug)]
struct Inner {
    map: HashMap<String, Vec<u8>>,
    wal: Wal,
    dir: PathBuf,
}

/// A durable key → bytes store.
///
/// Every mutation is logged to the WAL before the in-memory index is
/// touched; [`KvStore::snapshot`] persists the whole index as JSON and
/// truncates the log. Reopening a directory recovers snapshot + log suffix.
#[derive(Debug)]
pub struct KvStore {
    inner: Mutex<Inner>,
}

impl KvStore {
    /// Opens (or creates) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        let snapshot_path = dir.join("snapshot.json");
        let mut map: HashMap<String, Vec<u8>> = match std::fs::read(&snapshot_path) {
            Ok(data) => serde_json::from_slice(&data)
                .map_err(|e| Error::Storage(format!("bad snapshot: {e}")))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => HashMap::new(),
            Err(e) => return Err(io_err(e)),
        };
        let wal_path = dir.join("wal.log");
        for entry in Wal::replay(&wal_path)? {
            let (op, key, value) = decode(&entry.0)?;
            match op {
                OP_PUT => {
                    map.insert(key, value);
                }
                _ => {
                    map.remove(&key);
                }
            }
        }
        let wal = Wal::open(wal_path)?;
        Ok(KvStore {
            inner: Mutex::new(Inner { map, wal, dir }),
        })
    }

    /// Stores a value, durably (WAL first).
    pub fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.wal.append(&encode_put(key, value))?;
        inner.map.insert(key.to_string(), value.to_vec());
        Ok(())
    }

    /// Fetches a value.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.inner.lock().map.get(key).cloned()
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&self, key: &str) -> Result<bool> {
        let mut inner = self.inner.lock();
        inner.wal.append(&encode_delete(key))?;
        Ok(inner.map.remove(key).is_some())
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All keys with the given prefix, sorted.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let inner = self.inner.lock();
        let mut keys: Vec<String> = inner
            .map
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        keys.sort();
        keys
    }

    /// Writes an atomic snapshot (`tmp` + rename) and truncates the WAL.
    pub fn snapshot(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let json = serde_json::to_vec(&inner.map)
            .map_err(|e| Error::Storage(format!("snapshot encode: {e}")))?;
        let tmp = inner.dir.join("snapshot.json.tmp");
        let dst = inner.dir.join("snapshot.json");
        std::fs::write(&tmp, &json).map_err(io_err)?;
        std::fs::rename(&tmp, &dst).map_err(io_err)?;
        inner.wal.truncate()
    }

    /// Bytes currently in the WAL — shrinks to 0 after [`KvStore::snapshot`].
    pub fn wal_bytes(&self) -> Result<u64> {
        self.inner.lock().wal.len_bytes()
    }

    /// Root directory of the store.
    pub fn dir(&self) -> PathBuf {
        self.inner.lock().dir.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("docs-kv-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_delete() {
        let store = KvStore::open(tmp_dir("basic")).unwrap();
        assert!(store.get("a").is_none());
        store.put("a", b"1").unwrap();
        store.put("b", b"2").unwrap();
        assert_eq!(store.get("a").unwrap(), b"1");
        assert_eq!(store.len(), 2);
        assert!(store.delete("a").unwrap());
        assert!(!store.delete("a").unwrap());
        assert!(store.get("a").is_none());
    }

    #[test]
    fn reopen_recovers_from_wal() {
        let dir = tmp_dir("recover");
        {
            let store = KvStore::open(&dir).unwrap();
            store.put("worker/1", b"q=0.9").unwrap();
            store.put("worker/2", b"q=0.4").unwrap();
            store.delete("worker/2").unwrap();
        }
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(store.get("worker/1").unwrap(), b"q=0.9");
        assert!(store.get("worker/2").is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn snapshot_compacts_and_recovers() {
        let dir = tmp_dir("snapshot");
        {
            let store = KvStore::open(&dir).unwrap();
            for i in 0..50 {
                store
                    .put(&format!("k{i}"), format!("v{i}").as_bytes())
                    .unwrap();
            }
            assert!(store.wal_bytes().unwrap() > 0);
            store.snapshot().unwrap();
            assert_eq!(store.wal_bytes().unwrap(), 0);
            // Post-snapshot mutations land in the fresh WAL.
            store.put("k50", b"v50").unwrap();
        }
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(store.len(), 51);
        assert_eq!(store.get("k7").unwrap(), b"v7");
        assert_eq!(store.get("k50").unwrap(), b"v50");
    }

    #[test]
    fn overwrite_keeps_latest() {
        let dir = tmp_dir("overwrite");
        {
            let store = KvStore::open(&dir).unwrap();
            store.put("k", b"old").unwrap();
            store.put("k", b"new").unwrap();
        }
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(store.get("k").unwrap(), b"new");
    }

    #[test]
    fn keys_with_prefix_sorted() {
        let store = KvStore::open(tmp_dir("prefix")).unwrap();
        store.put("task/2", b"x").unwrap();
        store.put("task/1", b"x").unwrap();
        store.put("worker/1", b"x").unwrap();
        assert_eq!(
            store.keys_with_prefix("task/"),
            vec!["task/1".to_string(), "task/2".to_string()]
        );
    }

    #[test]
    fn torn_wal_tail_loses_only_the_tail() {
        let dir = tmp_dir("torn");
        {
            let store = KvStore::open(&dir).unwrap();
            store.put("durable", b"yes").unwrap();
        }
        // Crash mid-append.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("wal.log"))
                .unwrap();
            f.write_all(&[99, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(store.get("durable").unwrap(), b"yes");
        assert_eq!(store.len(), 1);
        // And the store still accepts writes.
        store.put("after", b"crash").unwrap();
    }

    #[test]
    fn concurrent_writers_are_serialized() {
        let store = std::sync::Arc::new(KvStore::open(tmp_dir("threads")).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    s.put(&format!("t{t}/k{i}"), b"v").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 100);
    }
}
