//! The keyed byte store: snapshot + WAL of mutations + in-memory index.

use crate::{io_err, Crc32, Wal};
use bytes::{Buf, BufMut, BytesMut};
use docs_types::codec::{CODEC_MAGIC, CODEC_VERSION};
use docs_types::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// Record kind byte of the binary KV snapshot (shares the codec's
/// magic/version convention with the event and value records).
const KIND_KV_SNAPSHOT: u8 = b'K';

fn encode_put(buf: &mut BytesMut, key: &str, value: &[u8]) {
    buf.clear();
    buf.put_u8(OP_PUT);
    buf.put_u32_le(key.len() as u32);
    buf.put_slice(key.as_bytes());
    buf.put_u32_le(value.len() as u32);
    buf.put_slice(value);
}

fn encode_delete(buf: &mut BytesMut, key: &str) {
    buf.clear();
    buf.put_u8(OP_DELETE);
    buf.put_u32_le(key.len() as u32);
    buf.put_slice(key.as_bytes());
}

/// Parses one mutation record into borrowed views — the replay loop copies
/// only what it inserts into the index, never intermediate buffers.
fn decode(mut record: &[u8]) -> Result<(u8, &str, &[u8])> {
    let fail = || Error::Storage("malformed WAL record".into());
    if record.len() < 5 {
        return Err(fail());
    }
    let op = record.get_u8();
    let klen = record.get_u32_le() as usize;
    if record.len() < klen {
        return Err(fail());
    }
    let key = std::str::from_utf8(&record[..klen]).map_err(|_| fail())?;
    record.advance(klen);
    let value = match op {
        OP_PUT => {
            if record.len() < 4 {
                return Err(fail());
            }
            let vlen = record.get_u32_le() as usize;
            if record.len() < vlen {
                return Err(fail());
            }
            &record[..vlen]
        }
        OP_DELETE => &[],
        _ => return Err(fail()),
    };
    Ok((op, key, value))
}

/// Streams the index to `path` as a binary snapshot:
/// `[magic][version][kind][count u32 LE]` then, per entry (sorted by key for
/// deterministic bytes), `[klen u32 LE][key][vlen u32 LE][value]`, and a
/// trailing `crc32` (u32 LE) over everything before it. A `BufWriter` plus an
/// incremental [`Crc32`] keep the write single-pass with no intermediate
/// whole-map buffer — the old path serialized the entire map to one JSON
/// `Vec<u8>` before touching the disk.
fn write_snapshot_bin(path: &Path, map: &HashMap<String, Vec<u8>>) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut out = BufWriter::new(file);
    let mut crc = Crc32::new();
    let mut emit = |out: &mut BufWriter<std::fs::File>, bytes: &[u8]| -> Result<()> {
        crc.update(bytes);
        out.write_all(bytes).map_err(io_err)
    };
    emit(&mut out, &[CODEC_MAGIC, CODEC_VERSION, KIND_KV_SNAPSHOT])?;
    emit(&mut out, &(map.len() as u32).to_le_bytes())?;
    let mut keys: Vec<&String> = map.keys().collect();
    keys.sort();
    for key in keys {
        let value = &map[key];
        emit(&mut out, &(key.len() as u32).to_le_bytes())?;
        emit(&mut out, key.as_bytes())?;
        emit(&mut out, &(value.len() as u32).to_le_bytes())?;
        emit(&mut out, value)?;
    }
    let digest = crc.finalize();
    out.write_all(&digest.to_le_bytes()).map_err(io_err)?;
    let file = out.into_inner().map_err(|e| io_err(e.into_error()))?;
    file.sync_data().map_err(io_err)
}

/// Parses a binary snapshot produced by [`write_snapshot_bin`].
fn read_snapshot_bin(data: &[u8]) -> Result<HashMap<String, Vec<u8>>> {
    let fail = |why: &str| Error::Storage(format!("bad snapshot: {why}"));
    if data.len() < 11 {
        return Err(fail("truncated header"));
    }
    if data[0] != CODEC_MAGIC || data[2] != KIND_KV_SNAPSHOT {
        return Err(fail("wrong magic or kind"));
    }
    if data[1] != CODEC_VERSION {
        return Err(fail("unknown format version"));
    }
    let body = &data[..data.len() - 4];
    let stored = (&data[data.len() - 4..]).get_u32_le();
    if crate::crc32(body) != stored {
        return Err(fail("crc mismatch"));
    }
    let mut cursor = &body[3..];
    let count = cursor.get_u32_le() as usize;
    let mut map = HashMap::with_capacity(count);
    for _ in 0..count {
        if cursor.len() < 4 {
            return Err(fail("truncated entry"));
        }
        let klen = cursor.get_u32_le() as usize;
        if cursor.len() < klen + 4 {
            return Err(fail("truncated key"));
        }
        let key = std::str::from_utf8(&cursor[..klen]).map_err(|_| fail("key is not UTF-8"))?;
        let key = key.to_string();
        cursor.advance(klen);
        let vlen = cursor.get_u32_le() as usize;
        if cursor.len() < vlen {
            return Err(fail("truncated value"));
        }
        map.insert(key, cursor[..vlen].to_vec());
        cursor.advance(vlen);
    }
    if !cursor.is_empty() {
        return Err(fail("trailing bytes"));
    }
    Ok(map)
}

#[derive(Debug)]
struct Inner {
    map: HashMap<String, Vec<u8>>,
    wal: Wal,
    dir: PathBuf,
    /// Reused encode buffer for mutation records — `put`/`delete` fill it in
    /// place instead of allocating a fresh `Vec<u8>` per record.
    record_buf: BytesMut,
}

/// A durable key → bytes store.
///
/// Every mutation is logged to the WAL before the in-memory index is
/// touched; [`KvStore::snapshot`] streams the whole index to a CRC-trailed
/// binary snapshot and truncates the log. Reopening a directory recovers
/// snapshot + log suffix; legacy JSON snapshots from older builds are still
/// read and upgraded at the next snapshot.
#[derive(Debug)]
pub struct KvStore {
    inner: Mutex<Inner>,
}

impl KvStore {
    /// Opens (or creates) a store rooted at `dir`.
    ///
    /// Prefers the binary `snapshot.bin`; a store last compacted by an older
    /// build falls back to its legacy `snapshot.json`, which the next
    /// [`KvStore::snapshot`] replaces (upgrade-on-snapshot).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        let mut map: HashMap<String, Vec<u8>> = match std::fs::read(dir.join("snapshot.bin")) {
            Ok(data) => read_snapshot_bin(&data)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                match std::fs::read(dir.join("snapshot.json")) {
                    Ok(data) => serde_json::from_slice(&data)
                        .map_err(|e| Error::Storage(format!("bad snapshot: {e}")))?,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => HashMap::new(),
                    Err(e) => return Err(io_err(e)),
                }
            }
            Err(e) => return Err(io_err(e)),
        };
        let wal_path = dir.join("wal.log");
        // Load the log once and replay borrowed views; the only copies made
        // are the key/value the index actually keeps.
        let data = Wal::load(&wal_path)?;
        let (records, _tail) = Wal::scan(&data);
        for range in records {
            let (op, key, value) = decode(&data[range])?;
            match op {
                OP_PUT => {
                    map.insert(key.to_string(), value.to_vec());
                }
                _ => {
                    map.remove(key);
                }
            }
        }
        let wal = Wal::open(wal_path)?;
        Ok(KvStore {
            inner: Mutex::new(Inner {
                map,
                wal,
                dir,
                record_buf: BytesMut::new(),
            }),
        })
    }

    /// Stores a value, durably (WAL first).
    pub fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        let Inner {
            wal, record_buf, ..
        } = &mut *inner;
        encode_put(record_buf, key, value);
        wal.append(record_buf)?;
        inner.map.insert(key.to_string(), value.to_vec());
        Ok(())
    }

    /// Fetches a value.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.inner.lock().map.get(key).cloned()
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&self, key: &str) -> Result<bool> {
        let mut inner = self.inner.lock();
        let Inner {
            wal, record_buf, ..
        } = &mut *inner;
        encode_delete(record_buf, key);
        wal.append(record_buf)?;
        Ok(inner.map.remove(key).is_some())
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All keys with the given prefix, sorted.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let inner = self.inner.lock();
        let mut keys: Vec<String> = inner
            .map
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        keys.sort();
        keys
    }

    /// Writes an atomic binary snapshot (`tmp` + rename) and truncates the
    /// WAL. Any legacy `snapshot.json` left by an older build is removed
    /// once the binary snapshot is durable, completing the format upgrade.
    pub fn snapshot(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let tmp = inner.dir.join("snapshot.bin.tmp");
        let dst = inner.dir.join("snapshot.bin");
        write_snapshot_bin(&tmp, &inner.map)?;
        std::fs::rename(&tmp, &dst).map_err(io_err)?;
        match std::fs::remove_file(inner.dir.join("snapshot.json")) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(e)),
        }
        inner.wal.truncate()
    }

    /// Bytes currently in the WAL — shrinks to 0 after [`KvStore::snapshot`].
    pub fn wal_bytes(&self) -> Result<u64> {
        self.inner.lock().wal.len_bytes()
    }

    /// Root directory of the store.
    pub fn dir(&self) -> PathBuf {
        self.inner.lock().dir.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("docs-kv-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_delete() {
        let store = KvStore::open(tmp_dir("basic")).unwrap();
        assert!(store.get("a").is_none());
        store.put("a", b"1").unwrap();
        store.put("b", b"2").unwrap();
        assert_eq!(store.get("a").unwrap(), b"1");
        assert_eq!(store.len(), 2);
        assert!(store.delete("a").unwrap());
        assert!(!store.delete("a").unwrap());
        assert!(store.get("a").is_none());
    }

    #[test]
    fn reopen_recovers_from_wal() {
        let dir = tmp_dir("recover");
        {
            let store = KvStore::open(&dir).unwrap();
            store.put("worker/1", b"q=0.9").unwrap();
            store.put("worker/2", b"q=0.4").unwrap();
            store.delete("worker/2").unwrap();
        }
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(store.get("worker/1").unwrap(), b"q=0.9");
        assert!(store.get("worker/2").is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn snapshot_compacts_and_recovers() {
        let dir = tmp_dir("snapshot");
        {
            let store = KvStore::open(&dir).unwrap();
            for i in 0..50 {
                store
                    .put(&format!("k{i}"), format!("v{i}").as_bytes())
                    .unwrap();
            }
            assert!(store.wal_bytes().unwrap() > 0);
            store.snapshot().unwrap();
            assert_eq!(store.wal_bytes().unwrap(), 0);
            // Post-snapshot mutations land in the fresh WAL.
            store.put("k50", b"v50").unwrap();
        }
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(store.len(), 51);
        assert_eq!(store.get("k7").unwrap(), b"v7");
        assert_eq!(store.get("k50").unwrap(), b"v50");
    }

    #[test]
    fn overwrite_keeps_latest() {
        let dir = tmp_dir("overwrite");
        {
            let store = KvStore::open(&dir).unwrap();
            store.put("k", b"old").unwrap();
            store.put("k", b"new").unwrap();
        }
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(store.get("k").unwrap(), b"new");
    }

    #[test]
    fn keys_with_prefix_sorted() {
        let store = KvStore::open(tmp_dir("prefix")).unwrap();
        store.put("task/2", b"x").unwrap();
        store.put("task/1", b"x").unwrap();
        store.put("worker/1", b"x").unwrap();
        assert_eq!(
            store.keys_with_prefix("task/"),
            vec!["task/1".to_string(), "task/2".to_string()]
        );
    }

    #[test]
    fn torn_wal_tail_loses_only_the_tail() {
        let dir = tmp_dir("torn");
        {
            let store = KvStore::open(&dir).unwrap();
            store.put("durable", b"yes").unwrap();
        }
        // Crash mid-append.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("wal.log"))
                .unwrap();
            f.write_all(&[99, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(store.get("durable").unwrap(), b"yes");
        assert_eq!(store.len(), 1);
        // And the store still accepts writes.
        store.put("after", b"crash").unwrap();
    }

    #[test]
    fn legacy_json_snapshot_is_read_and_upgraded() {
        let dir = tmp_dir("legacy-json");
        std::fs::create_dir_all(&dir).unwrap();
        // A snapshot written by an older build: the whole map as JSON.
        let mut legacy: HashMap<String, Vec<u8>> = HashMap::new();
        legacy.insert("old/1".into(), b"alpha".to_vec());
        legacy.insert("old/2".into(), b"beta".to_vec());
        std::fs::write(
            dir.join("snapshot.json"),
            serde_json::to_vec(&legacy).unwrap(),
        )
        .unwrap();
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(store.get("old/1").unwrap(), b"alpha");
        assert_eq!(store.get("old/2").unwrap(), b"beta");
        store.put("new/1", b"gamma").unwrap();
        // Compaction upgrades the on-disk format and retires the JSON file.
        store.snapshot().unwrap();
        assert!(dir.join("snapshot.bin").exists());
        assert!(!dir.join("snapshot.json").exists());
        drop(store);
        let store = KvStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.get("new/1").unwrap(), b"gamma");
    }

    #[test]
    fn binary_snapshot_roundtrip_is_deterministic() {
        let dir = tmp_dir("bin-snap");
        {
            let store = KvStore::open(&dir).unwrap();
            store.put("b", b"2").unwrap();
            store.put("a", b"1").unwrap();
            store.snapshot().unwrap();
        }
        let first = std::fs::read(dir.join("snapshot.bin")).unwrap();
        {
            let store = KvStore::open(&dir).unwrap();
            assert_eq!(store.get("a").unwrap(), b"1");
            // Same contents → byte-identical snapshot (keys are sorted).
            store.snapshot().unwrap();
        }
        let second = std::fs::read(dir.join("snapshot.bin")).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn corrupt_binary_snapshot_is_refused() {
        let dir = tmp_dir("bin-corrupt");
        {
            let store = KvStore::open(&dir).unwrap();
            store.put("k", b"precious").unwrap();
            store.snapshot().unwrap();
        }
        let path = dir.join("snapshot.bin");
        let clean = std::fs::read(&path).unwrap();
        // Any single flipped bit must fail the CRC (or the header checks),
        // never silently load wrong state.
        for pos in [0, 1, 2, clean.len() / 2, clean.len() - 1] {
            let mut evil = clean.clone();
            evil[pos] ^= 0x10;
            std::fs::write(&path, &evil).unwrap();
            assert!(KvStore::open(&dir).is_err(), "flip at byte {pos} accepted");
        }
    }

    #[test]
    fn concurrent_writers_are_serialized() {
        let store = std::sync::Arc::new(KvStore::open(tmp_dir("threads")).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    s.put(&format!("t{t}/k{i}"), b"v").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 100);
    }
}
