//! Typed parameter store: the key scheme DOCS uses over the KV store.

use crate::KvStore;
use docs_types::{codec, Error, Result, TaskId, WorkerId};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::PathBuf;

/// Stores and retrieves the inference parameters Section 4.2 enumerates:
/// per-worker statistics under `worker/<id>` and per-task state under
/// `task/<id>`, each written as a compact CRC-framed binary record. Values
/// persisted as JSON by older builds still decode (the codec sniffs the
/// magic byte and falls back) and are rewritten in binary on the next put.
///
/// The value types are generic: `docs-system` persists
/// `docs_core::ti::WorkerStats` and `docs_core::ti::TaskState` through this
/// interface without this crate depending on the algorithm crates.
#[derive(Debug)]
pub struct ParamStore {
    kv: KvStore,
}

impl ParamStore {
    /// Opens (or creates) a parameter store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        Ok(ParamStore {
            kv: KvStore::open(dir)?,
        })
    }

    /// Underlying KV store (snapshot control, diagnostics).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    fn put_value<T: Serialize>(&self, key: &str, value: &T) -> Result<()> {
        self.kv.put(key, &codec::to_bytes(value))
    }

    fn get_value<T: DeserializeOwned>(&self, key: &str) -> Result<Option<T>> {
        match self.kv.get(key) {
            None => Ok(None),
            Some(bytes) => codec::from_bytes(&bytes)
                .map(Some)
                .map_err(|e| Error::Storage(format!("decode {key}: {e}"))),
        }
    }

    /// Persists a worker's statistics.
    pub fn put_worker<T: Serialize>(&self, w: WorkerId, stats: &T) -> Result<()> {
        self.put_value(&format!("worker/{}", w.0), stats)
    }

    /// Loads a worker's statistics.
    pub fn get_worker<T: DeserializeOwned>(&self, w: WorkerId) -> Result<Option<T>> {
        self.get_value(&format!("worker/{}", w.0))
    }

    /// Persists a task's inference state.
    pub fn put_task<T: Serialize>(&self, t: TaskId, state: &T) -> Result<()> {
        self.put_value(&format!("task/{}", t.0), state)
    }

    /// Loads a task's inference state.
    pub fn get_task<T: DeserializeOwned>(&self, t: TaskId) -> Result<Option<T>> {
        self.get_value(&format!("task/{}", t.0))
    }

    /// Ids of all persisted workers, ascending.
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        let mut ids: Vec<WorkerId> = self
            .kv
            .keys_with_prefix("worker/")
            .iter()
            .filter_map(|k| k.strip_prefix("worker/")?.parse::<u32>().ok())
            .map(WorkerId)
            .collect();
        ids.sort();
        ids
    }

    /// Ids of all persisted tasks, ascending.
    pub fn task_ids(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self
            .kv
            .keys_with_prefix("task/")
            .iter()
            .filter_map(|k| k.strip_prefix("task/")?.parse::<u32>().ok())
            .map(TaskId)
            .collect();
        ids.sort();
        ids
    }

    /// Compacts the store (snapshot + WAL truncation).
    pub fn compact(&self) -> Result<()> {
        self.kv.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct FakeStats {
        quality: Vec<f64>,
        weight: Vec<f64>,
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("docs-params-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn worker_roundtrip() {
        let store = ParamStore::open(tmp_dir("worker")).unwrap();
        let stats = FakeStats {
            quality: vec![0.9, 0.4],
            weight: vec![3.0, 1.0],
        };
        store.put_worker(WorkerId(7), &stats).unwrap();
        let loaded: FakeStats = store.get_worker(WorkerId(7)).unwrap().unwrap();
        assert_eq!(loaded, stats);
        assert!(store
            .get_worker::<FakeStats>(WorkerId(8))
            .unwrap()
            .is_none());
    }

    #[test]
    fn ids_enumerate_sorted() {
        let store = ParamStore::open(tmp_dir("ids")).unwrap();
        for id in [3u32, 1, 10] {
            store.put_worker(WorkerId(id), &vec![0.5]).unwrap();
            store.put_task(TaskId(id), &vec![0.5]).unwrap();
        }
        assert_eq!(
            store.worker_ids(),
            vec![WorkerId(1), WorkerId(3), WorkerId(10)]
        );
        assert_eq!(store.task_ids(), vec![TaskId(1), TaskId(3), TaskId(10)]);
    }

    #[test]
    fn persists_across_reopen_and_compaction() {
        let dir = tmp_dir("reopen");
        {
            let store = ParamStore::open(&dir).unwrap();
            store.put_task(TaskId(0), &vec![0.25, 0.75]).unwrap();
            store.compact().unwrap();
            store.put_task(TaskId(1), &vec![0.5, 0.5]).unwrap();
        }
        let store = ParamStore::open(&dir).unwrap();
        let s0: Vec<f64> = store.get_task(TaskId(0)).unwrap().unwrap();
        let s1: Vec<f64> = store.get_task(TaskId(1)).unwrap().unwrap();
        assert_eq!(s0, vec![0.25, 0.75]);
        assert_eq!(s1, vec![0.5, 0.5]);
    }

    #[test]
    fn legacy_json_values_still_decode() {
        let store = ParamStore::open(tmp_dir("legacy-json")).unwrap();
        let stats = FakeStats {
            quality: vec![0.1, 0.2],
            weight: vec![1.0, 2.0],
        };
        // A value persisted by an older (JSON-era) build.
        store
            .kv()
            .put("worker/1", &serde_json::to_vec(&stats).unwrap())
            .unwrap();
        let loaded: FakeStats = store.get_worker(WorkerId(1)).unwrap().unwrap();
        assert_eq!(loaded, stats);
    }

    #[test]
    fn decode_error_is_reported() {
        let store = ParamStore::open(tmp_dir("decode")).unwrap();
        store.kv().put("worker/1", b"not json").unwrap();
        let err = store.get_worker::<FakeStats>(WorkerId(1)).unwrap_err();
        assert!(matches!(err, Error::Storage(_)));
    }
}
