//! Failure injection for the parameter database.
//!
//! The paper's DOCS stores worker statistics and task state "into database"
//! (Figure 1, Section 4.2) and relies on them across requesters; losing or
//! silently corrupting that state breaks Theorem 1's long-run quality
//! maintenance. These tests corrupt the on-disk artifacts the way real
//! crashes and bit rot do — torn appends, flipped bytes, lying length
//! prefixes, interrupted snapshot renames — and check the store either
//! recovers every durable prefix or fails loudly, never silently serving
//! garbage. Coverage spans all three durability layers: the raw `Wal`, the
//! typed `ParamStore` façade over the KV store, and the `CampaignLog`
//! (torn tail records, truncated snapshot tmp files, CRC-corrupted
//! mid-log entries → clean error, not a panic).

use docs_storage::{recover_tree, CampaignLog, FlushPolicy, KvStore, ParamStore, Wal, WalEntry};
use docs_types::{CampaignId, TaskId, WorkerId};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("docs-storage-inject-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Flips one byte at `offset` in the file.
fn flip_byte(path: &PathBuf, offset: usize) {
    let mut data = fs::read(path).unwrap();
    assert!(offset < data.len(), "offset {offset} beyond {}", data.len());
    data[offset] ^= 0xFF;
    fs::write(path, data).unwrap();
}

#[test]
fn flipped_payload_byte_stops_replay_at_the_corruption() {
    let dir = tmp_dir("flip-payload");
    fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("wal.log");
    {
        let mut wal = Wal::open(&wal_path).unwrap();
        wal.append(b"record-0").unwrap();
        wal.append(b"record-1").unwrap();
        wal.append(b"record-2").unwrap();
    }
    // Record layout is [len:4][crc:4][payload]; record 0 spans bytes 0..16.
    // Flip a payload byte of record 1 (starts at 16; payload at 24).
    flip_byte(&wal_path, 25);
    let entries = Wal::replay(&wal_path).unwrap();
    assert_eq!(entries, vec![WalEntry(b"record-0".to_vec())]);
}

#[test]
fn flipped_crc_byte_stops_replay_at_the_corruption() {
    let dir = tmp_dir("flip-crc");
    fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("wal.log");
    {
        let mut wal = Wal::open(&wal_path).unwrap();
        wal.append(b"alpha").unwrap();
        wal.append(b"beta").unwrap();
    }
    // Record 0: bytes 0..13 ([4][4][5]); flip a CRC byte of record 0.
    flip_byte(&wal_path, 5);
    let entries = Wal::replay(&wal_path).unwrap();
    assert!(entries.is_empty(), "nothing before the corruption survives");
}

#[test]
fn lying_length_prefix_is_treated_as_torn_tail() {
    let dir = tmp_dir("lying-len");
    fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("wal.log");
    {
        let mut wal = Wal::open(&wal_path).unwrap();
        wal.append(b"good").unwrap();
    }
    // Append a record header claiming a 4 GiB payload that never arrives.
    {
        use std::io::Write;
        let mut f = fs::OpenOptions::new().append(true).open(&wal_path).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"tiny").unwrap();
    }
    let entries = Wal::replay(&wal_path).unwrap();
    assert_eq!(entries, vec![WalEntry(b"good".to_vec())]);
}

#[test]
fn kv_store_survives_lying_length_in_its_wal() {
    let dir = tmp_dir("kv-lying-len");
    {
        let store = KvStore::open(&dir).unwrap();
        store.put("k", b"v").unwrap();
    }
    {
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"tiny").unwrap();
    }
    // The giant claimed length reads as a torn tail; the durable put
    // survives and the store stays writable.
    let store = KvStore::open(&dir).unwrap();
    assert_eq!(store.get("k").unwrap(), b"v");
    store.put("k2", b"v2").unwrap();
}

#[test]
fn corrupt_snapshot_fails_loudly_instead_of_serving_garbage() {
    let dir = tmp_dir("bad-snapshot");
    {
        let store = KvStore::open(&dir).unwrap();
        store.put("worker/1", b"stats").unwrap();
        store.snapshot().unwrap();
    }
    flip_byte(&dir.join("snapshot.bin"), 2);
    let err = KvStore::open(&dir).expect_err("corrupt snapshot must not open");
    let msg = err.to_string();
    assert!(msg.contains("snapshot"), "unexpected error: {msg}");
}

#[test]
fn interrupted_snapshot_rename_recovers_previous_state() {
    let dir = tmp_dir("interrupted-snapshot");
    {
        let store = KvStore::open(&dir).unwrap();
        store.put("a", b"1").unwrap();
        store.put("b", b"2").unwrap();
        // Crash before rename: the half-written tmp snapshot exists, the
        // real snapshot does not, the WAL is untouched.
        fs::write(dir.join("snapshot.bin.tmp"), b"half-written").unwrap();
    }
    let store = KvStore::open(&dir).unwrap();
    assert_eq!(store.get("a").unwrap(), b"1");
    assert_eq!(store.get("b").unwrap(), b"2");
    assert_eq!(store.len(), 2);
}

#[test]
fn crash_between_snapshot_and_new_writes_loses_nothing() {
    let dir = tmp_dir("snapshot-then-writes");
    {
        let store = KvStore::open(&dir).unwrap();
        for i in 0..20 {
            store.put(&format!("pre/{i}"), b"x").unwrap();
        }
        store.snapshot().unwrap();
        for i in 0..5 {
            store.put(&format!("post/{i}"), b"y").unwrap();
        }
        // Torn final append.
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&[42, 0, 0, 0]).unwrap();
    }
    let store = KvStore::open(&dir).unwrap();
    assert_eq!(store.len(), 25);
    assert_eq!(store.keys_with_prefix("post/").len(), 5);
}

#[test]
fn empty_wal_file_is_a_valid_store() {
    let dir = tmp_dir("empty-wal");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("wal.log"), b"").unwrap();
    let store = KvStore::open(&dir).unwrap();
    assert!(store.is_empty());
}

#[test]
fn sub_header_garbage_wal_recovers_empty() {
    let dir = tmp_dir("garbage-wal");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("wal.log"), [1, 2, 3]).unwrap(); // < 8 header bytes
    let store = KvStore::open(&dir).unwrap();
    assert!(store.is_empty());
    store.put("still", b"works").unwrap();
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FakeStats {
    quality: Vec<f64>,
    weight: Vec<f64>,
}

#[test]
fn param_store_survives_a_torn_wal_tail() {
    let dir = tmp_dir("params-torn");
    let stats = FakeStats {
        quality: vec![0.9, 0.4],
        weight: vec![3.0, 1.0],
    };
    {
        let store = ParamStore::open(&dir).unwrap();
        store.put_worker(WorkerId(1), &stats).unwrap();
        store.put_task(TaskId(0), &vec![0.25, 0.75]).unwrap();
    }
    {
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&[77, 0, 0, 0, 1, 2]).unwrap();
    }
    let store = ParamStore::open(&dir).unwrap();
    let loaded: FakeStats = store.get_worker(WorkerId(1)).unwrap().unwrap();
    assert_eq!(loaded, stats);
    let s: Vec<f64> = store.get_task(TaskId(0)).unwrap().unwrap();
    assert_eq!(s, vec![0.25, 0.75]);
    // The typed façade stays writable after the torn tail.
    store.put_worker(WorkerId(2), &stats).unwrap();
    assert_eq!(store.worker_ids(), vec![WorkerId(1), WorkerId(2)]);
}

#[test]
fn param_store_corrupt_value_fails_loudly_on_decode() {
    let dir = tmp_dir("params-corrupt-value");
    let store = ParamStore::open(&dir).unwrap();
    store
        .put_worker(
            WorkerId(3),
            &FakeStats {
                quality: vec![0.5],
                weight: vec![1.0],
            },
        )
        .unwrap();
    // Bit rot inside the stored JSON value.
    store.kv().put("worker/3", b"{\"quality\": [0.5,").unwrap();
    let err = store.get_worker::<FakeStats>(WorkerId(3)).unwrap_err();
    assert!(matches!(err, docs_types::Error::Storage(_)), "{err}");
}

#[test]
fn param_store_compaction_survives_interrupted_rename() {
    let dir = tmp_dir("params-interrupted");
    {
        let store = ParamStore::open(&dir).unwrap();
        for w in 0..8u32 {
            store
                .put_worker(
                    WorkerId(w),
                    &FakeStats {
                        quality: vec![w as f64 / 10.0],
                        weight: vec![1.0],
                    },
                )
                .unwrap();
        }
        store.compact().unwrap();
        // Crash mid-compaction on a later cycle: half-written tmp snapshot.
        fs::write(dir.join("snapshot.json.tmp"), b"{ not json").unwrap();
    }
    let store = ParamStore::open(&dir).unwrap();
    assert_eq!(store.worker_ids().len(), 8);
}

#[test]
fn campaign_log_torn_tail_record_recovers_the_durable_prefix() {
    let base = tmp_dir("clog-torn");
    let shard = base.join("shard-0");
    let campaign = CampaignId(4);
    {
        let mut log = CampaignLog::open(&shard).unwrap();
        log.register(campaign, FlushPolicy::EveryEvent, 0);
        log.append_event(campaign, b"first").unwrap();
        log.append_event(campaign, b"second").unwrap();
    }
    {
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(shard.join("events-000000.wal"))
            .unwrap();
        f.write_all(&[120, 0, 0, 0, 9, 9, 9, 9, b'z']).unwrap();
    }
    let rec = recover_tree(&base).unwrap();
    assert_eq!(rec.torn_tails, 1);
    let c = &rec.campaigns[&campaign];
    assert_eq!(c.events.len(), 2);
    assert_eq!(c.last_seq, 2);
}

#[test]
fn campaign_log_truncated_snapshot_tmp_is_ignored() {
    let base = tmp_dir("clog-snap-tmp");
    let shard = base.join("shard-0");
    let campaign = CampaignId(1);
    {
        let mut log = CampaignLog::open(&shard).unwrap();
        log.register(campaign, FlushPolicy::Batch(4), 0);
        log.append_event(campaign, b"e1").unwrap();
        log.write_snapshot(campaign, b"full state").unwrap();
        log.append_event(campaign, b"e2").unwrap();
    }
    // Crash during the *next* snapshot: only the tmp file was written.
    fs::write(shard.join("snap-1.bin.tmp"), b"trunc").unwrap();
    let rec = recover_tree(&base).unwrap();
    let c = &rec.campaigns[&campaign];
    let (snap_seq, snap_payload) = c.snapshot.as_ref().expect("snapshot survived");
    assert_eq!(
        (*snap_seq, snap_payload.as_slice()),
        (1, b"full state".as_slice())
    );
    assert_eq!(c.events.len(), 1);
    assert_eq!(
        (c.events[0].0, c.events[0].1.as_slice()),
        (2, b"e2".as_slice())
    );
}

#[test]
fn campaign_log_crc_corrupted_mid_log_entry_is_a_clean_error() {
    let base = tmp_dir("clog-midlog");
    let shard = base.join("shard-0");
    let campaign = CampaignId(2);
    {
        let mut log = CampaignLog::open(&shard).unwrap();
        log.register(campaign, FlushPolicy::EveryEvent, 0);
        log.append_event(campaign, b"aaaa").unwrap();
        log.append_event(campaign, b"bbbb").unwrap();
        log.append_event(campaign, b"cccc").unwrap();
    }
    // Flip a payload byte of the middle record: a *complete* record whose
    // CRC no longer matches — silent data loss, not a crash artifact.
    let segment = shard.join("events-000000.wal");
    let record = 8 + 12 + 4; // wal header + campaign/seq tag + payload
    let mut data = fs::read(&segment).unwrap();
    data[record + 8 + 12 + 1] ^= 0xFF;
    fs::write(&segment, &data).unwrap();
    let err = recover_tree(&base).expect_err("corruption must not recover silently");
    let msg = err.to_string();
    assert!(msg.contains("corrupt"), "unexpected error: {msg}");
    assert!(!msg.contains("panic"));
}

#[test]
fn campaign_log_corrupted_snapshot_fails_loudly() {
    let base = tmp_dir("clog-snap-corrupt");
    let shard = base.join("shard-0");
    let campaign = CampaignId(6);
    {
        let mut log = CampaignLog::open(&shard).unwrap();
        log.register(campaign, FlushPolicy::EveryEvent, 0);
        log.append_event(campaign, b"e").unwrap();
        log.write_snapshot(campaign, b"precious state").unwrap();
    }
    flip_byte(&shard.join("snap-6.bin"), 14);
    let err = recover_tree(&base).expect_err("corrupt snapshot must not load");
    assert!(err.to_string().contains("CRC"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cutting a campaign log segment at *any* byte boundary recovers
    /// exactly a prefix of the appended events — sequence numbers stay
    /// contiguous from 1 and no event is invented or reordered.
    #[test]
    fn campaign_log_truncation_always_recovers_an_event_prefix(
        num_events in 1usize..20,
        cut_fraction in 0.0f64..1.0,
    ) {
        let base = tmp_dir(&format!("prop-clog-{num_events}-{cut_fraction:.4}"));
        let shard = base.join("shard-0");
        let campaign = CampaignId(0);
        let payloads: Vec<Vec<u8>> = (0..num_events)
            .map(|i| format!("event-{i}").into_bytes())
            .collect();
        {
            let mut log = CampaignLog::open(&shard).unwrap();
            log.register(campaign, FlushPolicy::EveryEvent, 0);
            for p in &payloads {
                log.append_event(campaign, p).unwrap();
            }
        }
        let segment = shard.join("events-000000.wal");
        let full = fs::read(&segment).unwrap();
        let cut = (full.len() as f64 * cut_fraction) as usize;
        fs::write(&segment, &full[..cut]).unwrap();

        let rec = recover_tree(&base).unwrap();
        let events = rec
            .campaigns
            .get(&campaign)
            .map(|c| c.events.clone())
            .unwrap_or_default();
        prop_assert!(events.len() <= payloads.len());
        for (i, (seq, payload)) in events.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
        fs::remove_dir_all(&base).ok();
    }

    /// Truncating the WAL at *any* byte boundary recovers exactly a prefix
    /// of the appended operations — never a reordering, never an invented
    /// record.
    #[test]
    fn truncation_always_recovers_a_prefix(
        payload_sizes in prop::collection::vec(0usize..64, 1..12),
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = tmp_dir(&format!("prop-trunc-{payload_sizes:?}-{cut_fraction:.4}"));
        fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("wal.log");
        let payloads: Vec<Vec<u8>> = payload_sizes
            .iter()
            .enumerate()
            .map(|(i, &sz)| vec![i as u8; sz])
            .collect();
        {
            let mut wal = Wal::open(&wal_path).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
        }
        let full = fs::read(&wal_path).unwrap();
        let cut = (full.len() as f64 * cut_fraction) as usize;
        fs::write(&wal_path, &full[..cut]).unwrap();

        let recovered = Wal::replay(&wal_path).unwrap();
        prop_assert!(recovered.len() <= payloads.len());
        for (entry, expected) in recovered.iter().zip(&payloads) {
            prop_assert_eq!(&entry.0, expected);
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// A byte flip anywhere in the WAL never yields records that were not
    /// appended: recovery is still a prefix (possibly empty), or — when the
    /// flip lands inside a length prefix — replay may stop early but still
    /// only returns genuine records.
    #[test]
    fn byte_flip_never_invents_records(
        num_records in 1usize..8,
        flip_at_fraction in 0.0f64..1.0,
    ) {
        let dir = tmp_dir(&format!("prop-flip-{num_records}-{flip_at_fraction:.4}"));
        fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("wal.log");
        let payloads: Vec<Vec<u8>> = (0..num_records)
            .map(|i| format!("payload-{i}").into_bytes())
            .collect();
        {
            let mut wal = Wal::open(&wal_path).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
        }
        let full_len = fs::metadata(&wal_path).unwrap().len() as usize;
        let offset = ((full_len - 1) as f64 * flip_at_fraction) as usize;
        flip_byte(&wal_path, offset);

        let recovered = Wal::replay(&wal_path).unwrap();
        // Every recovered record must be one of the appended payloads, in
        // order. (A flip inside a length field can make replay read a
        // "record" spanning other records; the CRC check rejects it, so the
        // scan stops — it must never pass.)
        prop_assert!(recovered.len() <= payloads.len());
        for (entry, expected) in recovered.iter().zip(&payloads) {
            prop_assert_eq!(&entry.0, expected);
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// KvStore round-trip under random operation sequences: reopening the
    /// directory reproduces the in-memory state exactly, with and without an
    /// intervening snapshot.
    #[test]
    fn kv_reopen_reproduces_state(
        ops in prop::collection::vec((0u8..3, 0u8..6, prop::collection::vec(any::<u8>(), 0..16)), 1..40),
        snapshot_at in prop::option::of(0usize..40),
    ) {
        let dir = tmp_dir(&format!("prop-kv-{}-{:?}", ops.len(), snapshot_at));
        let mut model = std::collections::HashMap::new();
        {
            let store = KvStore::open(&dir).unwrap();
            for (i, (op, key_id, value)) in ops.iter().enumerate() {
                let key = format!("key/{key_id}");
                match op {
                    0 | 1 => {
                        store.put(&key, value).unwrap();
                        model.insert(key, value.clone());
                    }
                    _ => {
                        store.delete(&key).unwrap();
                        model.remove(&key);
                    }
                }
                if snapshot_at == Some(i) {
                    store.snapshot().unwrap();
                }
            }
        }
        let store = KvStore::open(&dir).unwrap();
        prop_assert_eq!(store.len(), model.len());
        for (key, value) in &model {
            let got = store.get(key);
            prop_assert_eq!(got.as_ref(), Some(value));
        }
        fs::remove_dir_all(&dir).ok();
    }
}
