//! The [`Dataset`] container and the four dataset regenerations.

use crate::kb::curated_kb_with_distractors;
use crate::pools::{self, entity_score, PoolEntry};
use docs_core::dve;
use docs_kb::{EntityLinker, KnowledgeBase, LinkerConfig};
use docs_types::{DomainSet, Task, TaskBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A regenerated evaluation dataset: tasks plus the knowledge base and the
/// subset of Yahoo domains the dataset actually exercises.
pub struct Dataset {
    /// Display name ("Item", "4D", "QA", "SFV").
    pub name: &'static str,
    /// The full 26-domain deployment domain set.
    pub domain_set: DomainSet,
    /// Published tasks with text, ground truth, and true domain; domain
    /// vectors are filled by [`Dataset::run_dve`].
    pub tasks: Vec<Task>,
    /// The knowledge base the dataset's texts were generated from.
    pub kb: KnowledgeBase,
    /// Yahoo domain indices the dataset focuses on (4 per dataset, matching
    /// the paper's per-domain accuracy plots).
    pub focus_domains: Vec<usize>,
    /// The paper's display names of the focus domains (e.g. "NBA").
    pub focus_names: Vec<&'static str>,
}

impl Dataset {
    /// Number of tasks `n`.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// All task texts, for the topic-model baselines.
    pub fn texts(&self) -> Vec<String> {
        self.tasks.iter().map(|t| t.text.clone()).collect()
    }

    /// Runs the real DVE pipeline (entity linking + Algorithm 1) over every
    /// task and stores the resulting domain vectors.
    pub fn run_dve(&mut self, linker_config: LinkerConfig) {
        let linker = EntityLinker::new(&self.kb, linker_config);
        let m = self.domain_set.len();
        for task in &mut self.tasks {
            let entities = linker.link(&task.text);
            task.domain_vector = Some(dve::domain_vector(&entities, m));
        }
    }

    /// Runs DVE with the paper's defaults (top-20 candidates, context
    /// disambiguation on).
    pub fn run_dve_default(&mut self) {
        self.run_dve(LinkerConfig {
            top_c: 20,
            context_weight: 0.5,
        });
    }

    /// Per-domain quality vectors for a simulated crowd matched to this
    /// dataset — see [`focus_population_qualities`]. The scenario harness
    /// and the figure benches both build their worker populations from
    /// this shape; it is what makes per-domain inference worth its extra
    /// parameters on these tasks (a crowd whose experts are scattered over
    /// all 26 domains leaves nothing for domain weighting to exploit).
    pub fn worker_qualities(&self, size: usize, seed: u64) -> Vec<Vec<f64>> {
        focus_population_qualities(self.domain_set.len(), &self.focus_domains, size, seed)
    }

    /// Fraction of tasks whose DVE-dominant domain equals the true domain —
    /// the Figure 3 domain-detection accuracy. Optionally restricted to one
    /// true domain (for the per-domain bars).
    pub fn domain_detection_accuracy(&self, only_domain: Option<usize>) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for t in &self.tasks {
            let truth = t.true_domain.expect("datasets label true domains");
            if only_domain.is_some_and(|d| d != truth) {
                continue;
            }
            total += 1;
            if t.domain_vector
                .as_ref()
                .expect("run DVE first")
                .dominant_domain()
                == truth
            {
                correct += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// Quality vectors of a worker population whose expertise concentrates on
/// the given focus domains, reproducing the domain structure of the
/// paper's AMT crowd (Figure 6(a)): most workers strong on the first focus
/// domain and weaker on later ones, with experts spread unevenly.
///
/// * A rotating share of workers are *experts* in exactly one focus domain
///   (quality 0.85–0.97 there).
/// * Every domain has a population-wide base level that differs per focus
///   domain (first focus domain easiest, last hardest).
/// * 10% are spammers (0.42–0.55 everywhere).
pub fn focus_population_qualities(
    m: usize,
    focus_domains: &[usize],
    size: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    assert!(!focus_domains.is_empty());
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..size)
        .map(|i| {
            let mut q: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..0.65)).collect();
            // Per-focus-domain base skew: later focus domains are harder.
            for (j, &fd) in focus_domains.iter().enumerate() {
                let base_lo = 0.62 - 0.05 * j as f64;
                q[fd] = rng.gen_range(base_lo..base_lo + 0.12);
            }
            if i % 10 == 9 {
                // Spammer.
                for slot in q.iter_mut() {
                    *slot = rng.gen_range(0.42..0.55);
                }
            } else if i % 2 == 0 {
                // Expert in one rotating focus domain.
                let fd = focus_domains[(i / 2) % focus_domains.len()];
                q[fd] = rng.gen_range(0.85..0.97);
            }
            q
        })
        .collect()
}

/// Draws a random pair of distinct indices.
fn pair(rng: &mut SmallRng, len: usize) -> (usize, usize) {
    let a = rng.gen_range(0..len);
    let mut b = rng.gen_range(0..len - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

/// Comparison task: choices are the two entity names; ground truth is the
/// entity with the higher latent score for the attribute.
fn comparison_task(
    id: usize,
    text: String,
    a: &PoolEntry,
    b: &PoolEntry,
    attribute: &str,
    domain: usize,
) -> Task {
    let truth = usize::from(entity_score(a.name, attribute) <= entity_score(b.name, attribute));
    TaskBuilder::new(id, text)
        .with_choices([a.name, b.name])
        .with_ground_truth(truth)
        .with_true_domain(domain)
        .build()
        .expect("valid comparison task")
}

/// Yes/no task whose ground truth is derived from the entity's latent score
/// parity (deterministic but uncorrelated across attributes).
fn yes_no_task(id: usize, text: String, subject: &str, attribute: &str, domain: usize) -> Task {
    let truth = (entity_score(subject, attribute) & 1) as usize;
    TaskBuilder::new(id, text)
        .yes_no()
        .with_ground_truth(truth)
        .with_true_domain(domain)
        .build()
        .expect("valid yes/no task")
}

/// **Item** \[18\]: 360 tasks, 90 per domain (NBA, Food, Auto, Country), one
/// fixed comparison template per domain — the high intra-domain text
/// similarity regime where topic models do fine (Figure 3(a)).
pub fn item() -> Dataset {
    let mut rng = SmallRng::seed_from_u64(0x17E0);
    let mut tasks = Vec::with_capacity(360);
    let specs: [(&[PoolEntry], &str, &str, usize); 4] = [
        (
            pools::NBA_PLAYERS,
            "Who has a higher career scoring average: {A} or {B}?",
            "scoring",
            pools::domains::SPORTS,
        ),
        (
            pools::FOODS,
            "Which food contains more calories: {A} or {B}?",
            "calories",
            pools::domains::FOOD,
        ),
        (
            pools::CARS_POOL,
            "Which car is more expensive to buy: {A} or {B}?",
            "price",
            pools::domains::CARS,
        ),
        (
            pools::COUNTRIES,
            "Which country has a larger population: {A} or {B}?",
            "population",
            pools::domains::TRAVEL,
        ),
    ];
    for (pool, template, attr, domain) in specs {
        let mut seen = std::collections::HashSet::new();
        while seen.len() < 90 {
            let (i, j) = pair(&mut rng, pool.len());
            if !seen.insert((i.min(j), i.max(j))) {
                continue;
            }
            let (a, b) = (&pool[i], &pool[j]);
            let text = template.replace("{A}", a.name).replace("{B}", b.name);
            tasks.push(comparison_task(tasks.len(), text, a, b, attr, domain));
        }
    }
    Dataset {
        name: "Item",
        domain_set: DomainSet::yahoo_answers(),
        tasks,
        kb: curated_kb_with_distractors(19),
        focus_domains: vec![
            pools::domains::SPORTS,
            pools::domains::FOOD,
            pools::domains::CARS,
            pools::domains::TRAVEL,
        ],
        focus_names: vec!["NBA", "Food", "Auto", "Country"],
    }
}

/// **4D**: 400 tasks, 100 per domain (NBA, Car, Film, Mountain), with
/// *varied* templates per domain and templates *shared across domains*
/// ("Compare the height of X and Y" asked about players and mountains) —
/// the regime where string similarity misleads topic models (Figure 3(b)).
pub fn four_domain() -> Dataset {
    let mut rng = SmallRng::seed_from_u64(0x4D4D);
    let mut tasks: Vec<Task> = Vec::with_capacity(400);

    // Shared cross-domain templates (comparison form).
    let shared_cmp = [
        "Compare the height of {A} and {B}: which one is higher?",
        "Which is older: {A} or {B}?",
        "Is {A} more famous than {B}?",
    ];

    // Domain NBA (Sports).
    {
        let d = pools::domains::SPORTS;
        for i in 0..100 {
            let id = tasks.len();
            let t = match i % 5 {
                0 => {
                    let (a, b) = pair(&mut rng, pools::NBA_PLAYERS.len());
                    let (a, b) = (&pools::NBA_PLAYERS[a], &pools::NBA_PLAYERS[b]);
                    let tpl = shared_cmp[i / 5 % shared_cmp.len()];
                    comparison_task(
                        id,
                        tpl.replace("{A}", a.name).replace("{B}", b.name),
                        a,
                        b,
                        "stature",
                        d,
                    )
                }
                1 => {
                    let p = &pools::NBA_PLAYERS[rng.gen_range(0..pools::NBA_PLAYERS.len())];
                    yes_no_task(
                        id,
                        format!("Is {} a point guard?", p.name),
                        p.name,
                        "position",
                        d,
                    )
                }
                2 => {
                    let (a, b) = pair(&mut rng, pools::NBA_PLAYERS.len());
                    let (a, b) = (&pools::NBA_PLAYERS[a], &pools::NBA_PLAYERS[b]);
                    comparison_task(
                        id,
                        format!("Has {} won more NBA championships than {}?", a.name, b.name),
                        a,
                        b,
                        "rings",
                        d,
                    )
                }
                3 => {
                    let (a, b) = pair(&mut rng, pools::NBA_TEAMS.len());
                    let (a, b) = (&pools::NBA_TEAMS[a], &pools::NBA_TEAMS[b]);
                    comparison_task(
                        id,
                        format!("Which team wins more titles: {} or {}?", a.name, b.name),
                        a,
                        b,
                        "titles",
                        d,
                    )
                }
                _ => {
                    let t = &pools::NBA_TEAMS[rng.gen_range(0..pools::NBA_TEAMS.len())];
                    yes_no_task(
                        id,
                        format!("Has {} ever won back to back championships?", t.name),
                        t.name,
                        "b2b",
                        d,
                    )
                }
            };
            tasks.push(t);
        }
    }

    // Domain Car.
    {
        let d = pools::domains::CARS;
        for i in 0..100 {
            let id = tasks.len();
            let t = match i % 4 {
                0 => {
                    let (a, b) = pair(&mut rng, pools::CARS_POOL.len());
                    let (a, b) = (&pools::CARS_POOL[a], &pools::CARS_POOL[b]);
                    let tpl = shared_cmp[i / 4 % shared_cmp.len()];
                    comparison_task(
                        id,
                        tpl.replace("{A}", a.name).replace("{B}", b.name),
                        a,
                        b,
                        "stature",
                        d,
                    )
                }
                1 => {
                    let (a, b) = pair(&mut rng, pools::CARS_POOL.len());
                    let (a, b) = (&pools::CARS_POOL[a], &pools::CARS_POOL[b]);
                    comparison_task(
                        id,
                        format!("Which car accelerates faster: {} or {}?", a.name, b.name),
                        a,
                        b,
                        "speed",
                        d,
                    )
                }
                2 => {
                    let c = &pools::CARS_POOL[rng.gen_range(0..pools::CARS_POOL.len())];
                    yes_no_task(
                        id,
                        format!("Does the {} come with all wheel drive?", c.name),
                        c.name,
                        "awd",
                        d,
                    )
                }
                _ => {
                    let (a, b) = pair(&mut rng, pools::CARS_POOL.len());
                    let (a, b) = (&pools::CARS_POOL[a], &pools::CARS_POOL[b]);
                    comparison_task(
                        id,
                        format!("Is {} more reliable than {}?", a.name, b.name),
                        a,
                        b,
                        "reliability",
                        d,
                    )
                }
            };
            tasks.push(t);
        }
    }

    // Domain Film (Entertainment).
    {
        let d = pools::domains::ENTERTAINMENT;
        for i in 0..100 {
            let id = tasks.len();
            let t = match i % 4 {
                0 => {
                    let (a, b) = pair(&mut rng, pools::FILMS.len());
                    let (a, b) = (&pools::FILMS[a], &pools::FILMS[b]);
                    let tpl = shared_cmp[i / 4 % shared_cmp.len()];
                    comparison_task(
                        id,
                        tpl.replace("{A}", a.name).replace("{B}", b.name),
                        a,
                        b,
                        "stature",
                        d,
                    )
                }
                1 => {
                    let (a, b) = pair(&mut rng, pools::FILMS.len());
                    let (a, b) = (&pools::FILMS[a], &pools::FILMS[b]);
                    comparison_task(
                        id,
                        format!("Did {} win more Oscars than {}?", a.name, b.name),
                        a,
                        b,
                        "oscars",
                        d,
                    )
                }
                2 => {
                    let f = &pools::FILMS[rng.gen_range(0..pools::FILMS.len())];
                    yes_no_task(
                        id,
                        format!("Was {} released in the last century?", f.name),
                        f.name,
                        "era",
                        d,
                    )
                }
                _ => {
                    let (a, b) = pair(&mut rng, pools::FILMS.len());
                    let (a, b) = (&pools::FILMS[a], &pools::FILMS[b]);
                    comparison_task(
                        id,
                        format!("Which film runs longer: {} or {}?", a.name, b.name),
                        a,
                        b,
                        "runtime",
                        d,
                    )
                }
            };
            tasks.push(t);
        }
    }

    // Domain Mountain (Science).
    {
        let d = pools::domains::SCIENCE;
        for i in 0..100 {
            let id = tasks.len();
            let t = match i % 4 {
                0 => {
                    let (a, b) = pair(&mut rng, pools::MOUNTAINS.len());
                    let (a, b) = (&pools::MOUNTAINS[a], &pools::MOUNTAINS[b]);
                    let tpl = shared_cmp[i / 4 % shared_cmp.len()];
                    comparison_task(
                        id,
                        tpl.replace("{A}", a.name).replace("{B}", b.name),
                        a,
                        b,
                        "stature",
                        d,
                    )
                }
                1 => {
                    let m = &pools::MOUNTAINS[rng.gen_range(0..pools::MOUNTAINS.len())];
                    yes_no_task(
                        id,
                        format!("Is {} located in Asia?", m.name),
                        m.name,
                        "asia",
                        d,
                    )
                }
                2 => {
                    let (a, b) = pair(&mut rng, pools::MOUNTAINS.len());
                    let (a, b) = (&pools::MOUNTAINS[a], &pools::MOUNTAINS[b]);
                    comparison_task(
                        id,
                        format!(
                            "Which mountain has a higher summit: {} or {}?",
                            a.name, b.name
                        ),
                        a,
                        b,
                        "elevation",
                        d,
                    )
                }
                _ => {
                    let m = &pools::MOUNTAINS[rng.gen_range(0..pools::MOUNTAINS.len())];
                    yes_no_task(
                        id,
                        format!("Can {} be climbed without supplemental oxygen?", m.name),
                        m.name,
                        "oxygen",
                        d,
                    )
                }
            };
            tasks.push(t);
        }
    }

    Dataset {
        name: "4D",
        domain_set: DomainSet::yahoo_answers(),
        tasks,
        kb: curated_kb_with_distractors(19),
        focus_domains: vec![
            pools::domains::SPORTS,
            pools::domains::CARS,
            pools::domains::ENTERTAINMENT,
            pools::domains::SCIENCE,
        ],
        focus_names: vec!["NBA", "Car", "Film", "Mountain"],
    }
}

/// **QA** \[35\]: 1000 search-engine-style questions focused on Entertain,
/// Science, Sports, and Business — heterogeneous natural-question phrasing
/// within each domain (Figure 3(c)).
pub fn yahoo_qa() -> Dataset {
    let mut rng = SmallRng::seed_from_u64(0x0A0A);
    let mut tasks: Vec<Task> = Vec::with_capacity(1000);

    let ent_people: Vec<&PoolEntry> = pools::PEOPLE
        .iter()
        .filter(|p| p.domains.contains(&pools::domains::ENTERTAINMENT))
        .collect();
    let biz_people: Vec<&PoolEntry> = pools::PEOPLE
        .iter()
        .filter(|p| p.domains[0] == pools::domains::BUSINESS)
        .collect();
    let sport_people: Vec<&PoolEntry> = pools::PEOPLE
        .iter()
        .filter(|p| p.domains[0] == pools::domains::SPORTS)
        .collect();

    for i in 0..1000 {
        let id = tasks.len();
        let t = match i % 4 {
            // Entertainment.
            0 => match (i / 4) % 3 {
                0 => {
                    let (a, b) = pair(&mut rng, pools::FILMS.len());
                    let (a, b) = (&pools::FILMS[a], &pools::FILMS[b]);
                    comparison_task(
                        id,
                        format!(
                            "which movie should i watch first, {} or {}?",
                            a.name, b.name
                        ),
                        a,
                        b,
                        "watch",
                        pools::domains::ENTERTAINMENT,
                    )
                }
                1 => {
                    let p = ent_people[rng.gen_range(0..ent_people.len())];
                    yes_no_task(
                        id,
                        format!("has {} ever hosted an award show?", p.name),
                        p.name,
                        "host",
                        pools::domains::ENTERTAINMENT,
                    )
                }
                _ => {
                    let f = &pools::FILMS[rng.gen_range(0..pools::FILMS.len())];
                    yes_no_task(
                        id,
                        format!("is the soundtrack of {} available on vinyl?", f.name),
                        f.name,
                        "vinyl",
                        pools::domains::ENTERTAINMENT,
                    )
                }
            },
            // Science.
            1 => match (i / 4) % 3 {
                0 => {
                    let (a, b) = pair(&mut rng, pools::MOUNTAINS.len());
                    let (a, b) = (&pools::MOUNTAINS[a], &pools::MOUNTAINS[b]);
                    comparison_task(
                        id,
                        format!("what formed first geologically, {} or {}?", a.name, b.name),
                        a,
                        b,
                        "geology",
                        pools::domains::SCIENCE,
                    )
                }
                1 => {
                    let m = &pools::MOUNTAINS[rng.gen_range(0..pools::MOUNTAINS.len())];
                    yes_no_task(
                        id,
                        format!("does {} have glaciers year round?", m.name),
                        m.name,
                        "glacier",
                        pools::domains::SCIENCE,
                    )
                }
                _ => {
                    let m = &pools::MOUNTAINS[rng.gen_range(0..pools::MOUNTAINS.len())];
                    yes_no_task(
                        id,
                        format!("did {} form on a tectonic plate boundary?", m.name),
                        m.name,
                        "tectonic",
                        pools::domains::SCIENCE,
                    )
                }
            },
            // Sports.
            2 => match (i / 4) % 3 {
                0 => {
                    let (a, b) = pair(&mut rng, pools::NBA_PLAYERS.len());
                    let (a, b) = (&pools::NBA_PLAYERS[a], &pools::NBA_PLAYERS[b]);
                    comparison_task(
                        id,
                        format!("who would win one on one, {} or {}?", a.name, b.name),
                        a,
                        b,
                        "oneonone",
                        pools::domains::SPORTS,
                    )
                }
                1 => {
                    let p = sport_people[rng.gen_range(0..sport_people.len())];
                    yes_no_task(
                        id,
                        format!("did {} ever hold a world record?", p.name),
                        p.name,
                        "record",
                        pools::domains::SPORTS,
                    )
                }
                _ => {
                    let t = &pools::NBA_TEAMS[rng.gen_range(0..pools::NBA_TEAMS.len())];
                    yes_no_task(
                        id,
                        format!("are {} tickets hard to get this season?", t.name),
                        t.name,
                        "tickets",
                        pools::domains::SPORTS,
                    )
                }
            },
            // Business.
            _ => match (i / 4) % 3 {
                0 => {
                    let (a, b) = pair(&mut rng, biz_people.len().max(2));
                    let (a, b) = (
                        biz_people[a % biz_people.len()],
                        biz_people[b % biz_people.len()],
                    );
                    if a.name == b.name {
                        let p = biz_people[rng.gen_range(0..biz_people.len())];
                        yes_no_task(
                            id,
                            format!("did {} start more than one company?", p.name),
                            p.name,
                            "companies",
                            pools::domains::BUSINESS,
                        )
                    } else {
                        comparison_task(
                            id,
                            format!("who donated more to charity, {} or {}?", a.name, b.name),
                            a,
                            b,
                            "charity",
                            pools::domains::BUSINESS,
                        )
                    }
                }
                1 => {
                    let p = biz_people[rng.gen_range(0..biz_people.len())];
                    yes_no_task(
                        id,
                        format!("is {} still on the board of directors?", p.name),
                        p.name,
                        "board",
                        pools::domains::BUSINESS,
                    )
                }
                _ => {
                    let p = &pools::PEOPLE[rng.gen_range(0..pools::PEOPLE.len())];
                    yes_no_task(
                        id,
                        format!("does {} own stock in a car company?", p.name),
                        p.name,
                        "stock",
                        pools::domains::BUSINESS,
                    )
                }
            },
        };
        tasks.push(t);
    }

    Dataset {
        name: "QA",
        domain_set: DomainSet::yahoo_answers(),
        tasks,
        kb: curated_kb_with_distractors(19),
        focus_domains: vec![
            pools::domains::ENTERTAINMENT,
            pools::domains::SCIENCE,
            pools::domains::SPORTS,
            pools::domains::BUSINESS,
        ],
        focus_names: vec!["Entertain", "Science", "Sports", "Business"],
    }
}

/// **SFV** \[30\]: 328 person-attribute tasks with 4 candidate values per task
/// (choices gathered from QA systems in the paper). The true domain of a
/// task is the person's most renowned field (Figure 3(d)).
pub fn sfv() -> Dataset {
    let mut rng = SmallRng::seed_from_u64(0x5F5F);
    let attributes = [
        "age",
        "height in centimeters",
        "birth year",
        "net worth in millions",
        "number of awards",
        "number of siblings",
        "years of education",
        "houses owned",
        "countries visited",
        "languages spoken",
        "books written",
        "public speeches given",
        "honorary degrees",
        "wikipedia page views in thousands",
        "charity foundations",
        "patents filed",
        "interviews given",
    ];
    let mut tasks: Vec<Task> = Vec::with_capacity(328);
    'outer: for attr in attributes {
        for person in pools::PEOPLE {
            if tasks.len() == 328 {
                break 'outer;
            }
            let id = tasks.len();
            let base = entity_score(person.name, attr) % 80 + 10;
            let truth = rng.gen_range(0..4usize);
            let choices: Vec<String> = (0..4)
                .map(|j| {
                    let delta = (j as i64 - truth as i64) * ((id % 7 + 2) as i64);
                    format!("{}", base as i64 + delta)
                })
                .collect();
            tasks.push(
                TaskBuilder::new(id, format!("What is the {} of {}?", attr, person.name))
                    .with_choices(choices)
                    .with_ground_truth(truth)
                    .with_true_domain(person.domains[0])
                    .build()
                    .expect("valid SFV task"),
            );
        }
    }

    Dataset {
        name: "SFV",
        domain_set: DomainSet::yahoo_answers(),
        tasks,
        kb: curated_kb_with_distractors(19),
        focus_domains: vec![
            pools::domains::ENTERTAINMENT,
            pools::domains::BUSINESS,
            pools::domains::SPORTS,
            pools::domains::POLITICS,
        ],
        focus_names: vec!["Entertain", "Business", "Sports", "Politics"],
    }
}

/// All four datasets, in the paper's order.
pub fn all_datasets() -> Vec<Dataset> {
    vec![item(), four_domain(), yahoo_qa(), sfv()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn focus_qualities_have_experts_in_every_focus_domain() {
        let d = item();
        let qualities = d.worker_qualities(40, 7);
        assert_eq!(qualities.len(), 40);
        for &fd in &d.focus_domains {
            assert!(
                qualities.iter().any(|q| q[fd] >= 0.85),
                "no expert in focus domain {fd}"
            );
        }
        // Deterministic per seed.
        assert_eq!(qualities, d.worker_qualities(40, 7));
        assert_ne!(qualities, d.worker_qualities(40, 8));
    }

    #[test]
    fn dataset_sizes_match_paper() {
        assert_eq!(item().len(), 360);
        assert_eq!(four_domain().len(), 400);
        assert_eq!(yahoo_qa().len(), 1000);
        assert_eq!(sfv().len(), 328);
    }

    #[test]
    fn item_has_90_tasks_per_domain() {
        let d = item();
        for &fd in &d.focus_domains {
            let count = d.tasks.iter().filter(|t| t.true_domain == Some(fd)).count();
            assert_eq!(count, 90);
        }
    }

    #[test]
    fn four_domain_has_100_tasks_per_domain() {
        let d = four_domain();
        for &fd in &d.focus_domains {
            let count = d.tasks.iter().filter(|t| t.true_domain == Some(fd)).count();
            assert_eq!(count, 100);
        }
    }

    #[test]
    fn all_tasks_have_truth_and_domain() {
        for d in all_datasets() {
            for t in &d.tasks {
                assert!(
                    t.ground_truth.is_some(),
                    "{}: task {} lacks truth",
                    d.name,
                    t.id
                );
                assert!(t.true_domain.is_some());
                assert!(t.num_choices() >= 2);
                assert!(t.ground_truth.unwrap() < t.num_choices());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = four_domain();
        let b = four_domain();
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.ground_truth, y.ground_truth);
        }
    }

    #[test]
    fn dve_detects_item_domains_well() {
        let mut d = item();
        d.run_dve_default();
        let acc = d.domain_detection_accuracy(None);
        assert!(acc > 0.9, "Item DVE accuracy {acc}");
    }

    #[test]
    fn dve_detects_4d_domains_well() {
        let mut d = four_domain();
        d.run_dve_default();
        let acc = d.domain_detection_accuracy(None);
        // Paper reports >95% overall on 4D.
        assert!(acc > 0.85, "4D DVE accuracy {acc}");
    }

    #[test]
    fn sfv_tasks_have_four_choices() {
        let d = sfv();
        for t in &d.tasks {
            assert_eq!(t.num_choices(), 4);
        }
    }

    #[test]
    fn domain_vectors_are_distributions_after_dve() {
        let mut d = sfv();
        d.run_dve_default();
        for t in &d.tasks {
            let r = t.domain_vector.as_ref().unwrap();
            assert!(docs_types::prob::is_distribution(r.as_slice()));
        }
    }
}
