//! Curated entity pools backing the dataset generators.
//!
//! Each pool lists real-world entities of one thematic category together
//! with the Yahoo Answers domain(s) they belong to. A handful of entities
//! are deliberately ambiguous across categories (a "Jaguar" is a car and an
//! animal; "Lincoln" is a car make and a president), reproducing the
//! entity-linking ambiguity that motivates Algorithm 1.

/// Indices into [`docs_types::domain::YAHOO_ANSWERS_DOMAINS`].
pub mod domains {
    /// Business & Finance.
    pub const BUSINESS: usize = 2;
    /// Cars & Transportation.
    pub const CARS: usize = 3;
    /// Entertainment & Music.
    pub const ENTERTAINMENT: usize = 8;
    /// Food & Drink.
    pub const FOOD: usize = 11;
    /// Pets.
    pub const PETS: usize = 17;
    /// Politics & Government.
    pub const POLITICS: usize = 18;
    /// Science & Mathematics.
    pub const SCIENCE: usize = 20;
    /// Sports.
    pub const SPORTS: usize = 23;
    /// Travel.
    pub const TRAVEL: usize = 24;
}

/// One curated entity: canonical name and its Yahoo-domain memberships.
pub struct PoolEntry {
    /// Surface form used both as KB alias and in generated task text.
    pub name: &'static str,
    /// Yahoo Answers domain indices this concept belongs to.
    pub domains: &'static [usize],
}

macro_rules! pool {
    ($($name:literal => [$($d:expr),+]),+ $(,)?) => {
        &[$(PoolEntry { name: $name, domains: &[$($d),+] }),+]
    };
}

use domains::*;

/// NBA players. "Michael Jordan" also relates to films via Space Jam —
/// the paper's own example of a multi-domain concept.
pub const NBA_PLAYERS: &[PoolEntry] = pool![
    "Michael Jordan" => [SPORTS, ENTERTAINMENT],
    "Kobe Bryant" => [SPORTS],
    "Stephen Curry" => [SPORTS],
    "LeBron James" => [SPORTS, ENTERTAINMENT],
    "Kevin Durant" => [SPORTS],
    "Tim Duncan" => [SPORTS],
    "Shaquille O'Neal" => [SPORTS, ENTERTAINMENT],
    "Dirk Nowitzki" => [SPORTS],
    "Allen Iverson" => [SPORTS],
    "Dwyane Wade" => [SPORTS],
    "Kareem Abdul-Jabbar" => [SPORTS],
    "Magic Johnson" => [SPORTS, BUSINESS],
    "Larry Bird" => [SPORTS],
    "Scottie Pippen" => [SPORTS],
    "Kevin Garnett" => [SPORTS],
    "Russell Westbrook" => [SPORTS],
    "James Harden" => [SPORTS],
    "Chris Paul" => [SPORTS],
    "Tony Parker" => [SPORTS],
    "Paul Pierce" => [SPORTS],
];

/// NBA teams, for team-level 4D questions.
pub const NBA_TEAMS: &[PoolEntry] = pool![
    "Golden State Warriors" => [SPORTS],
    "Chicago Bulls" => [SPORTS],
    "Los Angeles Lakers" => [SPORTS],
    "Boston Celtics" => [SPORTS],
    "San Antonio Spurs" => [SPORTS],
    "Miami Heat" => [SPORTS],
    "Houston Rockets" => [SPORTS],
    "Cleveland Cavaliers" => [SPORTS],
];

/// Foods compared by calories in the Item dataset.
pub const FOODS: &[PoolEntry] = pool![
    "Chocolate" => [FOOD],
    "Honey" => [FOOD],
    "Butter" => [FOOD],
    "Avocado" => [FOOD],
    "Banana" => [FOOD],
    "Peanut Butter" => [FOOD],
    "Cheddar Cheese" => [FOOD],
    "White Rice" => [FOOD],
    "Broccoli" => [FOOD],
    "Salmon" => [FOOD],
    "Almonds" => [FOOD],
    "Olive Oil" => [FOOD],
    "Yogurt" => [FOOD],
    "Oatmeal" => [FOOD],
    "Bacon" => [FOOD],
    "Tofu" => [FOOD],
    "Lentils" => [FOOD],
    "Watermelon" => [FOOD],
    "Croissant" => [FOOD],
    "Maple Syrup" => [FOOD],
];

/// Cars. "Jaguar" doubles as an animal, "Lincoln" as a president, "Mustang"
/// as a horse breed — the ambiguous aliases of this KB.
pub const CARS_POOL: &[PoolEntry] = pool![
    "Toyota Camry" => [CARS],
    "Honda Civic" => [CARS],
    "Ford Mustang" => [CARS],
    "Chevrolet Corvette" => [CARS],
    "Tesla Model S" => [CARS, SCIENCE],
    "BMW M3" => [CARS],
    "Audi A4" => [CARS],
    "Porsche 911" => [CARS],
    "Jaguar" => [CARS],
    "Lincoln" => [CARS],
    "Volkswagen Golf" => [CARS],
    "Subaru Outback" => [CARS],
    "Jeep Wrangler" => [CARS],
    "Mazda Miata" => [CARS],
    "Dodge Charger" => [CARS],
    "Nissan Leaf" => [CARS, SCIENCE],
    "Mini Cooper" => [CARS],
    "Ferrari F40" => [CARS],
    "Lamborghini Aventador" => [CARS],
    "Volvo XC90" => [CARS],
];

/// Countries compared by population/area in Item.
pub const COUNTRIES: &[PoolEntry] = pool![
    "Brazil" => [TRAVEL],
    "Canada" => [TRAVEL],
    "Japan" => [TRAVEL],
    "Germany" => [TRAVEL],
    "Australia" => [TRAVEL],
    "India" => [TRAVEL],
    "France" => [TRAVEL],
    "Italy" => [TRAVEL],
    "Mexico" => [TRAVEL],
    "Egypt" => [TRAVEL],
    "Norway" => [TRAVEL],
    "Thailand" => [TRAVEL],
    "Argentina" => [TRAVEL],
    "Kenya" => [TRAVEL],
    "Portugal" => [TRAVEL],
    "Vietnam" => [TRAVEL],
    "Iceland" => [TRAVEL],
    "Morocco" => [TRAVEL],
    "Peru" => [TRAVEL],
    "Greece" => [TRAVEL],
];

/// Films for the 4D dataset.
pub const FILMS: &[PoolEntry] = pool![
    "The Godfather" => [ENTERTAINMENT],
    "Titanic" => [ENTERTAINMENT],
    "Inception" => [ENTERTAINMENT],
    "Casablanca" => [ENTERTAINMENT],
    "Pulp Fiction" => [ENTERTAINMENT],
    "The Dark Knight" => [ENTERTAINMENT],
    "Forrest Gump" => [ENTERTAINMENT],
    "Space Jam" => [ENTERTAINMENT, SPORTS],
    "Jurassic Park" => [ENTERTAINMENT, SCIENCE],
    "The Matrix" => [ENTERTAINMENT],
    "Gladiator" => [ENTERTAINMENT],
    "Avatar" => [ENTERTAINMENT],
    "Goodfellas" => [ENTERTAINMENT],
    "Interstellar" => [ENTERTAINMENT, SCIENCE],
    "Rocky" => [ENTERTAINMENT, SPORTS],
    "Amadeus" => [ENTERTAINMENT],
    "Vertigo" => [ENTERTAINMENT],
    "Alien" => [ENTERTAINMENT],
    "Fargo" => [ENTERTAINMENT],
    "Chinatown" => [ENTERTAINMENT],
];

/// Mountains for the 4D dataset.
pub const MOUNTAINS: &[PoolEntry] = pool![
    "Mount Everest" => [SCIENCE, TRAVEL],
    "K2" => [SCIENCE, TRAVEL],
    "Kilimanjaro" => [SCIENCE, TRAVEL],
    "Denali" => [SCIENCE, TRAVEL],
    "Mont Blanc" => [SCIENCE, TRAVEL],
    "Matterhorn" => [SCIENCE, TRAVEL],
    "Annapurna" => [SCIENCE, TRAVEL],
    "Mount Fuji" => [SCIENCE, TRAVEL],
    "Aconcagua" => [SCIENCE, TRAVEL],
    "Elbrus" => [SCIENCE, TRAVEL],
    "Mount Rainier" => [SCIENCE, TRAVEL],
    "Ben Nevis" => [SCIENCE, TRAVEL],
    "Table Mountain" => [SCIENCE, TRAVEL],
    "Mount Olympus" => [SCIENCE, TRAVEL],
    "Pikes Peak" => [SCIENCE, TRAVEL],
    "Mount Whitney" => [SCIENCE, TRAVEL],
    "Grossglockner" => [SCIENCE, TRAVEL],
    "Mount Cook" => [SCIENCE, TRAVEL],
    "Toubkal" => [SCIENCE, TRAVEL],
    "Mount Etna" => [SCIENCE, TRAVEL],
];

/// People for the SFV dataset, tagged with their most renowned domain
/// (the paper labels each person task by the person's famous field).
pub const PEOPLE: &[PoolEntry] = pool![
    "Bill Gates" => [BUSINESS],
    "Warren Buffett" => [BUSINESS],
    "Elon Musk" => [BUSINESS, SCIENCE],
    "Oprah Winfrey" => [ENTERTAINMENT, BUSINESS],
    "Taylor Swift" => [ENTERTAINMENT],
    "Leonardo DiCaprio" => [ENTERTAINMENT],
    "Meryl Streep" => [ENTERTAINMENT],
    "Tom Hanks" => [ENTERTAINMENT],
    "Serena Williams" => [SPORTS],
    "Roger Federer" => [SPORTS],
    "Lionel Messi" => [SPORTS],
    "Usain Bolt" => [SPORTS],
    "Barack Obama" => [POLITICS],
    "Angela Merkel" => [POLITICS],
    "Winston Churchill" => [POLITICS],
    "Abraham Lincoln" => [POLITICS],
    "Nelson Mandela" => [POLITICS],
    "Steven Spielberg" => [ENTERTAINMENT],
    "Jeff Bezos" => [BUSINESS],
    "Cristiano Ronaldo" => [SPORTS],
];

/// Animals; provides the ambiguous counterparts of some car aliases.
pub const ANIMALS: &[PoolEntry] = pool![
    "Jaguar" => [PETS, SCIENCE],
    "Mustang" => [PETS, SCIENCE],
    "Golden Retriever" => [PETS],
    "Siamese Cat" => [PETS],
    "African Elephant" => [PETS, SCIENCE],
];

/// Deterministic latent "score" of an entity, used to manufacture ground
/// truths for comparison questions (who is taller / has more calories / …).
/// Derived from an FNV-1a hash of the name and the attribute so different
/// attributes rank entities differently.
pub fn entity_score(name: &str, attribute: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name
        .bytes()
        .chain(b"#".iter().copied())
        .chain(attribute.bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_sized() {
        assert_eq!(NBA_PLAYERS.len(), 20);
        assert_eq!(FOODS.len(), 20);
        assert_eq!(CARS_POOL.len(), 20);
        assert_eq!(COUNTRIES.len(), 20);
        assert_eq!(FILMS.len(), 20);
        assert_eq!(MOUNTAINS.len(), 20);
        assert_eq!(PEOPLE.len(), 20);
    }

    #[test]
    fn domain_indices_match_yahoo_names() {
        use docs_types::domain::YAHOO_ANSWERS_DOMAINS as Y;
        assert_eq!(Y[domains::SPORTS], "Sports");
        assert_eq!(Y[domains::FOOD], "Food & Drink");
        assert_eq!(Y[domains::CARS], "Cars & Transportation");
        assert_eq!(Y[domains::TRAVEL], "Travel");
        assert_eq!(Y[domains::ENTERTAINMENT], "Entertainment & Music");
        assert_eq!(Y[domains::SCIENCE], "Science & Mathematics");
        assert_eq!(Y[domains::BUSINESS], "Business & Finance");
        assert_eq!(Y[domains::POLITICS], "Politics & Government");
    }

    #[test]
    fn scores_are_deterministic_and_attribute_sensitive() {
        let a = entity_score("Kobe Bryant", "height");
        assert_eq!(a, entity_score("Kobe Bryant", "height"));
        assert_ne!(a, entity_score("Kobe Bryant", "age"));
        assert_ne!(a, entity_score("Michael Jordan", "height"));
    }

    #[test]
    fn ambiguity_exists_between_pools() {
        // "Jaguar" appears in both cars and animals — the ambiguity driver.
        assert!(CARS_POOL.iter().any(|e| e.name == "Jaguar"));
        assert!(ANIMALS.iter().any(|e| e.name == "Jaguar"));
    }
}
