//! Synthetic simulation workloads for the scalability experiments
//! (Figures 4(e), 7(b), 8(c)).

use docs_crowd::{Platform, PlatformConfig, PopulationConfig, WorkerPopulation};
use docs_types::{AnswerLog, DomainVector, Task, TaskBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates `n` synthetic tasks over `m` anonymous domains with Dirichlet-
/// style random domain vectors concentrated on one true domain (matching the
/// paper's simulation setup: tasks created directly with domain vectors, no
/// text pipeline).
pub fn scalability_tasks(n: usize, m: usize, seed: u64) -> Vec<Task> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let true_domain = rng.gen_range(0..m);
            // Concentrated random vector: heavy mass on the true domain.
            let mut w: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..0.08)).collect();
            w[true_domain] += 1.0;
            TaskBuilder::new(i, format!("synthetic task {i}"))
                .yes_no()
                .with_ground_truth(rng.gen_range(0..2usize))
                .with_true_domain(true_domain)
                .with_domain_vector(DomainVector::from_weights(&w).expect("non-negative"))
                .build()
                .expect("valid synthetic task")
        })
        .collect()
}

/// Generates a worker population and an answer log where each task is
/// answered by `answers_per_task` randomly selected workers — the Figure 4(e)
/// setup (`n` up to 10K, `|W|` ∈ {10, 100, 500}, 10 answers per task).
pub fn scalability_workload(
    n: usize,
    m: usize,
    num_workers: usize,
    answers_per_task: usize,
    seed: u64,
) -> (Vec<Task>, WorkerPopulation, AnswerLog) {
    let tasks = scalability_tasks(n, m, seed);
    let population = WorkerPopulation::generate(&PopulationConfig {
        m,
        size: num_workers,
        seed: seed ^ 0x9E3779B97F4A7C15,
        ..Default::default()
    });
    let platform = Platform::new(
        &tasks,
        vec![],
        &population,
        PlatformConfig {
            seed: seed ^ 0xDEADBEEF,
            ..Default::default()
        },
    );
    let log = platform.collect_uniform(answers_per_task.min(num_workers));
    (tasks, population, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_have_valid_domain_vectors() {
        let tasks = scalability_tasks(50, 20, 1);
        assert_eq!(tasks.len(), 50);
        for t in &tasks {
            let r = t.domain_vector.as_ref().unwrap();
            assert!(docs_types::prob::is_distribution(r.as_slice()));
            // The true domain should dominate.
            assert_eq!(r.dominant_domain(), t.true_domain.unwrap());
        }
    }

    #[test]
    fn workload_covers_all_tasks() {
        let (tasks, pop, log) = scalability_workload(30, 5, 20, 10, 7);
        assert_eq!(tasks.len(), 30);
        assert_eq!(pop.len(), 20);
        assert_eq!(log.len(), 300);
    }

    #[test]
    fn workload_caps_answers_at_population() {
        let (_, _, log) = scalability_workload(10, 5, 4, 10, 7);
        // Only 4 workers exist, so at most 4 answers per task.
        for (_, v) in log.iter_tasks() {
            assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (t1, _, l1) = scalability_workload(20, 5, 10, 5, 42);
        let (t2, _, l2) = scalability_workload(20, 5, 10, 5, 42);
        assert_eq!(t1.len(), t2.len());
        let a1: Vec<_> = l1.iter_answers().collect();
        let a2: Vec<_> = l2.iter_answers().collect();
        assert_eq!(a1, a2);
    }
}
