//! Synthetic regenerations of the paper's four evaluation datasets and the
//! simulation workloads.
//!
//! The originals are AMT collections we cannot re-run, so each generator
//! reproduces the published *shape* that drives the experiments:
//!
//! * [`item`] — 360 tasks, 4 domains × 90, one fixed comparison template per
//!   domain (high intra-domain text similarity → topic models succeed),
//! * [`four_domain`] — 400 tasks, 4 domains × 100, varied templates with
//!   deliberate cross-domain template sharing (topic models fail, KB wins),
//! * [`yahoo_qa`] — 1000 heterogeneous search-style questions over
//!   Entertain/Science/Sports/Business,
//! * [`sfv`] — 328 person-attribute tasks with 4 candidate answers each,
//! * [`scalability_workload`] — the pure-simulation workloads of
//!   Figures 4(e), 7(b), 8(c).
//!
//! Texts are generated from the curated knowledge base's entity aliases, so
//! the entity linker and the topic models both see realistic inputs.

mod dataset;
mod kb;
pub mod pools;
mod scalability;

pub use dataset::{
    all_datasets, focus_population_qualities, four_domain, item, sfv, yahoo_qa, Dataset,
};
pub use kb::{curated_kb, curated_kb_with_distractors};
pub use scalability::{scalability_tasks, scalability_workload};
