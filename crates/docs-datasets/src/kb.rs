//! The curated knowledge base shared by all four datasets — the Freebase
//! slice the paper's deployment consults.

use crate::pools::{self, domains, PoolEntry};
use docs_kb::{IndicatorVector, KnowledgeBase};
use docs_types::DomainSet;

fn add_pool(
    builder: &mut docs_kb::KbBuilder,
    pool: &[PoolEntry],
    popularity: f64,
    extra_aliases: &[(&str, &str)],
) {
    let m = 26;
    for entry in pool {
        let indicators = IndicatorVector::from_domains(m, entry.domains);
        let mut aliases: Vec<&str> = vec![entry.name];
        for &(canonical, alias) in extra_aliases {
            if canonical == entry.name {
                aliases.push(alias);
            }
        }
        builder.add_concept(entry.name, indicators, popularity, aliases);
    }
}

/// Builds the curated 26-domain knowledge base covering every entity pool.
///
/// Ambiguity is deliberate and mirrors the paper's examples:
/// * `"Jaguar"` resolves to a car (popular) and a big cat (less popular),
/// * `"Mustang"` resolves to the Ford Mustang and a horse,
/// * `"Lincoln"` resolves to the car make and to Abraham Lincoln,
/// * `"Michael Jordan"`, `"Space Jam"`, `"Rocky"` are multi-domain concepts.
pub fn curated_kb() -> KnowledgeBase {
    let mut b = KnowledgeBase::builder(DomainSet::yahoo_answers());
    add_pool(&mut b, pools::NBA_PLAYERS, 5.0, &[]);
    add_pool(&mut b, pools::NBA_TEAMS, 4.0, &[]);
    add_pool(&mut b, pools::FOODS, 3.0, &[]);
    add_pool(
        &mut b,
        pools::CARS_POOL,
        3.0,
        &[("Ford Mustang", "Mustang")],
    );
    add_pool(&mut b, pools::COUNTRIES, 3.0, &[]);
    add_pool(&mut b, pools::FILMS, 3.0, &[]);
    add_pool(&mut b, pools::MOUNTAINS, 3.0, &[]);
    add_pool(
        &mut b,
        pools::PEOPLE,
        4.0,
        &[("Abraham Lincoln", "Lincoln")],
    );
    add_pool(&mut b, pools::ANIMALS, 1.0, &[]);
    b.build()
}

/// Common template nouns that a real entity linker (Wikifier) also links:
/// each maps to a concept in its natural domain. They both densify `E_t`
/// (more detected entities per task, as in the paper's deployment) and add
/// weak domain evidence.
const COMMON_CONCEPTS: &[(&str, usize)] = &[
    ("championships", domains::SPORTS),
    ("playoffs", domains::SPORTS),
    ("player", domains::SPORTS),
    ("team", domains::SPORTS),
    ("calories", domains::FOOD),
    ("food", domains::FOOD),
    ("recipe", domains::FOOD),
    ("car", domains::CARS),
    ("engine", domains::CARS),
    ("population", domains::TRAVEL),
    ("country", domains::TRAVEL),
    ("movie", domains::ENTERTAINMENT),
    ("film", domains::ENTERTAINMENT),
    ("soundtrack", domains::ENTERTAINMENT),
    ("award", domains::ENTERTAINMENT),
    ("summit", domains::SCIENCE),
    ("glaciers", domains::SCIENCE),
    ("battery", domains::SCIENCE),
    ("company", domains::BUSINESS),
    ("stock", domains::BUSINESS),
    ("charity", domains::BUSINESS),
];

/// Attribute nouns that a real linker also detects as mentions but that map
/// to no deployment domain (dictionary/wiki pages). They densify `E_t` — the
/// paper's QA/SFV tasks carry many such mentions — without adding domain
/// signal.
const NOISE_WORDS: &[&str] = &[
    "age",
    "height",
    "worth",
    "price",
    "awards",
    "record",
    "season",
    "titles",
    "birth year",
    "siblings",
    "education",
    "languages",
    "books",
    "speeches",
    "degrees",
    "foundations",
    "patents",
    "interviews",
    "houses",
];

/// The curated KB plus Wikifier-grade candidate noise: every alias
/// additionally resolves to `distractors` low-popularity concepts that
/// belong to *no* deployment domain (like the paper's "Michael I. Jordan"
/// page). With `distractors = 19` each mention carries ~20 candidates —
/// the top-20 setting of Table 3 — making brute-force enumeration of
/// linkings exponential while leaving the domain signal (and hence DVE
/// accuracy) intact.
pub fn curated_kb_with_distractors(distractors: usize) -> KnowledgeBase {
    let mut b = KnowledgeBase::builder(DomainSet::yahoo_answers());
    let m = 26;
    let mut all_aliases: Vec<(String, f64)> = Vec::new();

    let add = |b: &mut docs_kb::KbBuilder,
               pool: &[PoolEntry],
               popularity: f64,
               extra: &[(&str, &str)],
               all_aliases: &mut Vec<(String, f64)>| {
        for entry in pool {
            let indicators = IndicatorVector::from_domains(m, entry.domains);
            let mut aliases: Vec<&str> = vec![entry.name];
            for &(canonical, alias) in extra {
                if canonical == entry.name {
                    aliases.push(alias);
                }
            }
            for a in &aliases {
                all_aliases.push((a.to_string(), popularity));
            }
            b.add_concept(entry.name, indicators, popularity, aliases);
        }
    };

    add(&mut b, pools::NBA_PLAYERS, 5.0, &[], &mut all_aliases);
    add(&mut b, pools::NBA_TEAMS, 4.0, &[], &mut all_aliases);
    add(&mut b, pools::FOODS, 3.0, &[], &mut all_aliases);
    add(
        &mut b,
        pools::CARS_POOL,
        3.0,
        &[("Ford Mustang", "Mustang")],
        &mut all_aliases,
    );
    add(&mut b, pools::COUNTRIES, 3.0, &[], &mut all_aliases);
    add(&mut b, pools::FILMS, 3.0, &[], &mut all_aliases);
    add(&mut b, pools::MOUNTAINS, 3.0, &[], &mut all_aliases);
    add(
        &mut b,
        pools::PEOPLE,
        4.0,
        &[("Abraham Lincoln", "Lincoln")],
        &mut all_aliases,
    );
    add(&mut b, pools::ANIMALS, 1.0, &[], &mut all_aliases);

    for &(word, domain) in COMMON_CONCEPTS {
        b.add_concept(
            format!("{word} (concept)"),
            IndicatorVector::from_domains(m, &[domain]),
            2.0,
            [word],
        );
        all_aliases.push((word.to_string(), 2.0));
    }

    for &word in NOISE_WORDS {
        b.add_concept(
            format!("{word} (dictionary)"),
            IndicatorVector::empty(m),
            2.0,
            [word],
        );
        all_aliases.push((word.to_string(), 2.0));
    }

    // Wikifier-style noise: per alias, `distractors` domain-free candidate
    // pages with a small share of the link probability each.
    for (alias, popularity) in all_aliases {
        for d in 0..distractors {
            b.add_concept(
                format!("{alias} (disambiguation {d})"),
                IndicatorVector::empty(m),
                popularity * 0.02,
                [alias.as_str()],
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_kb::EntityLinker;

    #[test]
    fn kb_covers_all_pools() {
        let kb = curated_kb();
        assert_eq!(kb.num_domains(), 26);
        // 20·7 pools + 8 teams + 5 animals = 153 concepts.
        assert_eq!(kb.num_concepts(), 153);
    }

    #[test]
    fn jaguar_and_lincoln_are_ambiguous() {
        let kb = curated_kb();
        assert_eq!(kb.candidates("jaguar").unwrap().len(), 2);
        assert_eq!(kb.candidates("lincoln").unwrap().len(), 2);
        assert_eq!(kb.candidates("mustang").unwrap().len(), 2);
    }

    #[test]
    fn distractor_kb_has_wikifier_grade_ambiguity() {
        let kb = curated_kb_with_distractors(19);
        // Every alias now has ~20 candidates.
        assert_eq!(kb.candidates("kobe bryant").unwrap().len(), 20);
        assert_eq!(kb.candidates("calories").unwrap().len(), 20);
        // The correct concept still dominates the link probability.
        let linker = EntityLinker::with_defaults(&kb);
        let es = linker.link("Kobe Bryant");
        assert_eq!(es[0].num_candidates(), 20);
        assert!(es[0].probs[0] > 0.5, "correct concept keeps the mass");
    }

    #[test]
    fn linker_resolves_curated_text() {
        let kb = curated_kb();
        let linker = EntityLinker::with_defaults(&kb);
        let es = linker.link("Compare the height of Stephen Curry and Mount Everest");
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].mention, "stephen curry");
        assert_eq!(es[1].mention, "mount everest");
    }
}
