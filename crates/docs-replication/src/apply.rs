//! The follower side: a replica service plus the applier thread that
//! drains its frame stream, and the controlled promotion that turns the
//! follower into a serving primary during failover.
//!
//! The applier is the *only* writer a follower has. It decodes each
//! CRC-checked record, classifies every event against the shared
//! per-campaign watermark table ([`ReplicaWatermarks`]) — stale frames
//! (bootstrap/stream overlap) are skipped, gaps abort loudly — and applies
//! the survivors through [`ServiceHandle::replicate_apply`], which runs the
//! same deterministic `validate_event`/`apply` transition the primary ran.
//! Advancing the watermark *is* the ack: the primary-side hub reads the
//! same table to compute lag.
//!
//! **Promotion** ([`Replica::promote`]) is drain-then-flip: the applier
//! first applies every frame already received (a crashed primary's entire
//! shipped suffix sits in the stream), then the role cell flips to
//! [`Primary`](docs_types::ReplicaRole::Primary) and the pool starts
//! accepting mutations. The returned [`Promotion`] records the watermark
//! each campaign was promoted at — the "no acknowledged event lost" line
//! the failover test pins: with `FlushPolicy::EveryEvent`, every event the
//! old primary ever acknowledged is durable, therefore shipped, therefore
//! at or below the promotion watermark.

use crate::frame::decode_frame;
use crate::ship::{FollowerLink, ShippedRecord};
use crossbeam::channel::RecvTimeoutError;
use docs_service::{DocsService, ServiceConfig, ServiceError, ServiceHandle};
use docs_system::{ReplicaWatermarks, WatermarkAdmission};
use docs_types::{codec, CampaignEvent, CampaignId, Error, ReplicationFrame, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running read replica: the follower service pool plus its applier.
pub struct Replica {
    service: DocsService,
    handle: ServiceHandle,
    applier: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    watermarks: Arc<Mutex<ReplicaWatermarks>>,
    error: Arc<Mutex<Option<String>>>,
}

/// The outcome of a promotion: the (now primary) service and the
/// watermark each campaign was promoted at.
pub struct Promotion {
    /// The promoted pool — accepts mutations from here on.
    pub service: DocsService,
    /// A routing handle to it (role already flipped).
    pub handle: ServiceHandle,
    /// Per-campaign promotion watermarks, ascending by campaign id: the
    /// highest primary-assigned sequence applied before the flip.
    pub watermarks: Vec<(CampaignId, u64)>,
}

impl Replica {
    /// Spawns a follower pool under `config` (role forced to follower),
    /// applies `bootstrap` frames (a [`bootstrap_frames`](crate::bootstrap_frames)
    /// scan of the primary's durability directory — possibly starting from
    /// a mid-campaign snapshot), then keeps applying the live stream of
    /// `link`. Subscribe **before** scanning for bootstrap: the watermark
    /// table drops whatever the scan and the stream overlap on, and a gap
    /// is impossible because anything flushed before the subscription is
    /// on disk for the scan.
    pub fn spawn(
        config: ServiceConfig,
        link: FollowerLink,
        bootstrap: Vec<ReplicationFrame>,
    ) -> std::result::Result<Replica, ServiceError> {
        let (service, handle) = DocsService::spawn_replica(config)?;
        let stop = Arc::new(AtomicBool::new(false));
        let error = Arc::new(Mutex::new(None));
        let watermarks = Arc::clone(&link.acked);
        let applier = {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let error = Arc::clone(&error);
            std::thread::Builder::new()
                .name("docs-replica-applier".into())
                .spawn(move || applier_loop(&handle, &link, bootstrap, &stop, &error))
                .expect("spawn replica applier thread")
        };
        Ok(Replica {
            service,
            handle,
            applier: Some(applier),
            stop,
            watermarks,
            error,
        })
    }

    /// A read handle to the follower (reads served locally; mutations
    /// refused with `RejectReason::ReadOnlyReplica`).
    pub fn handle(&self) -> &ServiceHandle {
        &self.handle
    }

    /// The follower's applied-and-acked watermark for one campaign.
    pub fn watermark(&self, campaign: CampaignId) -> u64 {
        self.watermarks.lock().get(campaign)
    }

    /// Every campaign's watermark, ascending by id.
    pub fn watermarks(&self) -> Vec<(CampaignId, u64)> {
        self.watermarks.lock().all()
    }

    /// The applier's fatal error, if it hit one (decode failure, sequence
    /// gap, refused apply). A healthy replica returns `None`.
    pub fn error(&self) -> Option<String> {
        self.error.lock().clone()
    }

    /// Controlled failover: drains every frame already received (a dead
    /// primary's full shipped suffix), stops the applier, flips the pool
    /// to primary, and reports the promotion watermarks. Fails — leaving
    /// nothing promoted — if the applier had recorded an error: promoting
    /// a replica that diverged from the stream would serve wrong state.
    ///
    /// Call this after the failed primary's pool has stopped (and, when
    /// you hold the hub, after [`ReplicationHub::join`](crate::ReplicationHub) —
    /// the order the failover tests and example use): the drain then ends
    /// at exact end-of-stream. Promoting while the old primary still
    /// serves writes is split-brain by definition; the drain's grace
    /// window bounds — but no watermark can prove — what such a promotion
    /// covers.
    pub fn promote(mut self) -> Result<Promotion> {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(applier) = self.applier.take() {
            applier.join().expect("replica applier thread panicked");
        }
        if let Some(e) = self.error.lock().clone() {
            return Err(Error::Storage(format!(
                "refusing to promote a diverged replica: {e}"
            )));
        }
        let watermarks = self.watermarks.lock().all();
        self.handle.promote_to_primary();
        Ok(Promotion {
            service: self.service,
            handle: self.handle,
            watermarks,
        })
    }

    /// Stops the applier without promoting and returns the still-follower
    /// pool (e.g. to shut a replica down cleanly).
    pub fn detach(mut self) -> (DocsService, ServiceHandle) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(applier) = self.applier.take() {
            applier.join().expect("replica applier thread panicked");
        }
        (self.service, self.handle)
    }
}

fn record_error(error: &Mutex<Option<String>>, message: String) {
    let mut slot = error.lock();
    if slot.is_none() {
        *slot = Some(message);
    }
}

/// End-of-stream handling: a dead primary is a clean stop, but a **lag
/// cutoff** (the hub disconnected this follower for trailing past its
/// stream bound) must poison the replica — the primary kept acknowledging
/// events beyond what this follower ever received, so promoting it would
/// silently lose them. The hub raises the flag *before* dropping the
/// sender, so it is visible by the time the disconnect surfaces.
fn on_stream_end(link: &FollowerLink, error: &Mutex<Option<String>>) {
    if link.cut_for_lag.load(Ordering::SeqCst) {
        record_error(
            error,
            "cut off by the hub for trailing past the follower stream bound; \
             events acknowledged beyond this replica's watermark were never \
             received — re-subscribe and re-bootstrap"
                .to_string(),
        );
    }
}

fn applier_loop(
    handle: &ServiceHandle,
    link: &FollowerLink,
    bootstrap: Vec<ReplicationFrame>,
    stop: &AtomicBool,
    error: &Mutex<Option<String>>,
) {
    for frame in bootstrap {
        if let Err(e) = apply_frame(handle, &link.acked, frame) {
            record_error(error, format!("bootstrap: {e}"));
            return;
        }
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            // Drain-then-stop: everything already shipped must be applied
            // before a promotion may speak for the stream. The drain uses
            // a grace window rather than `try_recv`: after a primary
            // crash the hub's pump may still be moving the final feed
            // frames into this follower's channel, and a momentarily
            // empty channel must not end the drain below the shipped
            // suffix. The window only has to outlive a channel-to-channel
            // forward (microseconds); end-of-stream (hub gone) ends the
            // drain exactly.
            loop {
                match link.frames.recv_timeout(Duration::from_millis(100)) {
                    Ok(record) => {
                        if let Err(e) = decode_and_apply(handle, &link.acked, &record) {
                            record_error(error, e.to_string());
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => return,
                    Err(RecvTimeoutError::Disconnected) => {
                        on_stream_end(link, error);
                        return;
                    }
                }
            }
        }
        match link.frames.recv_timeout(Duration::from_millis(20)) {
            Ok(record) => {
                if let Err(e) = decode_and_apply(handle, &link.acked, &record) {
                    record_error(error, e.to_string());
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            // End of stream: the primary (or its hub) is gone — or this
            // follower was cut off for lag, which must block promotion.
            // Everything shipped to *this* follower was delivered before
            // the disconnect surfaced; stay a follower and await
            // promotion or detach.
            Err(RecvTimeoutError::Disconnected) => {
                on_stream_end(link, error);
                return;
            }
        }
    }
}

fn decode_and_apply(
    handle: &ServiceHandle,
    acked: &Mutex<ReplicaWatermarks>,
    record: &ShippedRecord,
) -> Result<()> {
    apply_frame(handle, acked, decode_frame(record.bytes())?)?;
    // Ship→applied lag, as the follower experienced it: the pump stamped
    // the record at fan-out, the frame is applied (and acked) now.
    handle
        .metrics()
        .replication_lag_recorded(record.shipped_at.elapsed());
    Ok(())
}

/// Applies one frame, advancing the shared watermark table as the ack.
/// Shared with the migration engine: a campaign hand-off applies the same
/// snapshot + suffix stream to the destination primary's intake.
pub(crate) fn apply_frame(
    handle: &ServiceHandle,
    acked: &Mutex<ReplicaWatermarks>,
    frame: ReplicationFrame,
) -> Result<()> {
    let lift = |e: ServiceError| Error::Storage(format!("replica apply failed: {e}"));
    match frame {
        ReplicationFrame::Snapshot(s) => {
            // Install when the campaign is new to this follower (a
            // creation baseline covers sequence 0, so presence — not the
            // watermark value — decides) or when the snapshot moves it
            // forward; a snapshot at or below an existing watermark is
            // already covered by applied state (the cadence snapshot that
            // follows the events it summarizes).
            let install = {
                let table = acked.lock();
                !table.contains(s.campaign) || s.seq > table.get(s.campaign)
            };
            if install {
                handle
                    .replicate_install_snapshot(s.campaign, s.seq, s.payload)
                    .map_err(lift)?;
                acked.lock().advance_to(s.campaign, s.seq);
            }
            Ok(())
        }
        ReplicationFrame::Events(events) => {
            for e in events {
                // Classify under a scoped lock: matching on
                // `acked.lock().classify(..)` directly would keep the
                // guard alive across the whole match — including the
                // re-lock in the `Next` arm, a self-deadlock.
                let admission = {
                    let table = acked.lock();
                    table.classify(e.campaign, e.seq)
                };
                match admission {
                    WatermarkAdmission::Stale => continue,
                    WatermarkAdmission::Gap { expected } => {
                        return Err(Error::Storage(format!(
                            "replication stream gap for campaign {}: got sequence {}, \
                             expected {expected}",
                            e.campaign, e.seq
                        )));
                    }
                    WatermarkAdmission::Next => {
                        let event: CampaignEvent =
                            codec::decode_event(&e.payload).map_err(|err| {
                                Error::Storage(format!(
                                    "campaign {} event {}: {err}",
                                    e.campaign, e.seq
                                ))
                            })?;
                        handle
                            .replicate_apply(e.campaign, e.seq, event)
                            .map_err(lift)?;
                        acked.lock().advance_to(e.campaign, e.seq);
                    }
                }
            }
            Ok(())
        }
    }
}
