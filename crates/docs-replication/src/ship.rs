//! The primary-side log shipper: a hub that encodes the service's
//! replication feed into CRC-checked wire records and fans them out to
//! subscribed followers, tracking per-follower lag against the shipped
//! watermarks.
//!
//! ```text
//! primary shards ──ReplicationFrame──▶ hub pump ──encoded bytes──▶ follower A
//!        (post-flush only)               │  │                  └──▶ follower B
//!                                        │  └── shipped watermarks (per campaign)
//!                                        └───── per-follower acked watermarks ⇒ lag
//! ```
//!
//! The hub is transport: it never interprets campaign state. Followers ack
//! by advancing their shared watermark table as they apply; the hub's
//! [`ReplicationHub::lag`] is simply `shipped − acked` per campaign,
//! summed — the replication-lag gauge the bench and the example report.

use crate::frame::encode_frame_into;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use docs_obs::JournalKind;
use docs_service::{FollowerLagSample, HubHealth, ReplicationSink, ServiceMetrics};
use docs_storage::recover_tree;
use docs_system::ReplicaWatermarks;
use docs_types::{CampaignId, EventFrame, ReplicationFrame, Result, SnapshotFrame};
use parking_lot::Mutex;
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Creates the primary→hub feed: hand the [`ReplicationSink`] to
/// [`ServiceConfig::with_replication`](docs_service::ServiceConfig) and
/// the receiver to [`ReplicationHub::spawn`].
///
/// The feed itself is unbounded — safely: the pump drains it at encode
/// speed and never blocks (follower fan-out is `try_send` onto *bounded*
/// per-follower streams, and laggards are disconnected, not waited for),
/// so the feed's depth is bounded by how far the pump trails the shards,
/// not by the slowest follower.
pub fn replication_channel() -> (ReplicationSink, Receiver<ReplicationFrame>) {
    let (tx, rx) = unbounded();
    (ReplicationSink::new(tx), rx)
}

/// Per-follower stream bound: frames a follower may trail the pump by
/// before it is cut off. Deep enough to ride out apply hiccups, shallow
/// enough that a wedged follower cannot grow the primary's memory without
/// limit — the same bounded-admission stance the service's ingress queues
/// take.
pub const FOLLOWER_STREAM_CAPACITY: usize = 4096;

/// One encoded frame on a follower's stream: the shared wire bytes plus
/// the instant the pump fanned it out. The applier measures ship→applied
/// lag from `shipped_at`; everything that only wants the bytes derefs to
/// `[u8]` and never notices the timestamp.
#[derive(Clone)]
pub struct ShippedRecord {
    bytes: Arc<[u8]>,
    pub(crate) shipped_at: Instant,
}

impl ShippedRecord {
    /// The encoded frame bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl Deref for ShippedRecord {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

/// One follower's subscription: the encoded-frame stream to apply and the
/// shared watermark table it advances as acks. Records arrive as
/// [`ShippedRecord`]s wrapping shared `Arc` bytes: the hub encodes once
/// and fan-out is a refcount bump per follower, not a copy of the
/// (potentially snapshot-sized) frame bytes.
pub struct FollowerLink {
    pub(crate) frames: Receiver<ShippedRecord>,
    pub(crate) acked: Arc<Mutex<ReplicaWatermarks>>,
    /// Set by the pump when this follower was cut off for lag. The
    /// applier checks it at end-of-stream: a lag cutoff must be
    /// distinguishable from a dead primary, or a cut-off replica could be
    /// promoted below the shipped suffix without anyone noticing.
    pub(crate) cut_for_lag: Arc<AtomicBool>,
}

struct FollowerSlot {
    name: String,
    tx: Sender<ShippedRecord>,
    acked: Arc<Mutex<ReplicaWatermarks>>,
    cut_for_lag: Arc<AtomicBool>,
}

struct HubInner {
    followers: Mutex<Vec<FollowerSlot>>,
    shipped: Mutex<ReplicaWatermarks>,
    frames_shipped: AtomicU64,
    events_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
    snapshot_bytes_shipped: AtomicU64,
    followers_dropped: AtomicU64,
    encode_buffer_reuses: AtomicU64,
    /// The primary's metrics, when attached: the pump publishes
    /// [`HubHealth`] snapshots into it and journals follower cutoffs.
    metrics: Mutex<Option<ServiceMetrics>>,
}

impl HubInner {
    /// The hub's counters and per-follower lag as one [`HubHealth`]
    /// sample, for the metrics exposition.
    fn health(&self) -> HubHealth {
        let shipped = self.shipped.lock().clone();
        let follower_lags = self
            .followers
            .lock()
            .iter()
            .map(|slot| {
                let acked = slot.acked.lock().clone();
                let lag_events = shipped
                    .all()
                    .into_iter()
                    .map(|(campaign, seq)| seq.saturating_sub(acked.get(campaign)))
                    .sum();
                FollowerLagSample {
                    name: slot.name.clone(),
                    lag_events,
                    acked_max: acked
                        .all()
                        .into_iter()
                        .map(|(_, seq)| seq)
                        .max()
                        .unwrap_or(0),
                }
            })
            .collect::<Vec<_>>();
        HubHealth {
            frames_shipped: self.frames_shipped.load(Ordering::Relaxed),
            events_shipped: self.events_shipped.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            snapshot_bytes_shipped: self.snapshot_bytes_shipped.load(Ordering::Relaxed),
            followers: follower_lags.len(),
            followers_dropped: self.followers_dropped.load(Ordering::Relaxed),
            follower_lags,
        }
    }
}

/// Aggregate shipping counters of one hub.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Frames fanned out (event and snapshot frames alike).
    pub frames_shipped: u64,
    /// Events carried inside event frames.
    pub events_shipped: u64,
    /// Encoded wire bytes of **event** frames actually fanned out (per
    /// follower copy not counted). Snapshot frames are tallied separately
    /// in [`HubStats::snapshot_bytes_shipped`]: a snapshot is a one-off
    /// bootstrap/fast-forward cost, and folding it into the stream counter
    /// would make "bytes per event" depend on how often campaigns snapshot
    /// rather than on what the steady-state stream costs.
    pub bytes_shipped: u64,
    /// Encoded wire bytes of snapshot frames actually fanned out.
    pub snapshot_bytes_shipped: u64,
    /// Currently subscribed followers.
    pub followers: usize,
    /// Followers cut off for trailing the pump by more than their stream
    /// bound (they must re-subscribe and re-bootstrap to rejoin).
    pub followers_dropped: u64,
    /// Pump iterations that encoded into the retained scratch buffer
    /// without growing it — the per-frame encode allocations the arena
    /// reuse avoided (one exact-size copy per fanned-out record remains;
    /// fan-out itself is refcounting). In steady state this tracks
    /// `frames_shipped` minus the handful of frames that grew the buffer.
    pub encode_buffer_reuses: u64,
}

/// One follower's lag against the hub's shipped watermarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerLag {
    /// The name the follower subscribed under.
    pub name: String,
    /// Shipped-but-unacked events, summed across campaigns.
    pub lag_events: u64,
    /// The follower's acked watermark per campaign, ascending by id.
    pub acked: Vec<(CampaignId, u64)>,
}

/// The fan-out hub between one primary and its followers.
pub struct ReplicationHub {
    inner: Arc<HubInner>,
    pump: Option<JoinHandle<()>>,
}

impl ReplicationHub {
    /// Spawns the pump thread over the primary's frame feed. The pump ends
    /// (dropping every follower's stream, which the appliers observe as a
    /// clean end-of-stream) when all sink handles are gone — i.e. when the
    /// primary's shard pool has stopped or crashed.
    pub fn spawn(feed: Receiver<ReplicationFrame>) -> Self {
        let inner = Arc::new(HubInner {
            followers: Mutex::new(Vec::new()),
            shipped: Mutex::new(ReplicaWatermarks::new()),
            frames_shipped: AtomicU64::new(0),
            events_shipped: AtomicU64::new(0),
            bytes_shipped: AtomicU64::new(0),
            snapshot_bytes_shipped: AtomicU64::new(0),
            followers_dropped: AtomicU64::new(0),
            encode_buffer_reuses: AtomicU64::new(0),
            metrics: Mutex::new(None),
        });
        let pump_inner = Arc::clone(&inner);
        let pump = std::thread::Builder::new()
            .name("docs-replication-hub".into())
            .spawn(move || pump_loop(&pump_inner, feed))
            .expect("spawn replication hub thread");
        ReplicationHub {
            inner,
            pump: Some(pump),
        }
    }

    /// Subscribes a follower: every frame shipped from now on lands on the
    /// returned link's stream. History *before* the subscription comes
    /// from [`bootstrap_frames`] — subscribe first, scan second, and the
    /// watermark table de-duplicates the overlap.
    ///
    /// The stream is bounded ([`FOLLOWER_STREAM_CAPACITY`]): a follower
    /// that trails the pump by more than the bound is **disconnected**
    /// (counted in [`HubStats::followers_dropped`]) rather than allowed to
    /// grow the primary's memory without limit. Its applier drains what
    /// was buffered, then sees end-of-stream; rejoining means
    /// re-subscribing and re-bootstrapping.
    pub fn subscribe(&self, name: impl Into<String>) -> FollowerLink {
        self.subscribe_with_capacity(name, FOLLOWER_STREAM_CAPACITY)
    }

    /// [`ReplicationHub::subscribe`] with an explicit stream bound (tests
    /// exercise the cutoff with a tiny one).
    pub fn subscribe_with_capacity(
        &self,
        name: impl Into<String>,
        capacity: usize,
    ) -> FollowerLink {
        let (tx, rx) = bounded(capacity.max(1));
        let acked = Arc::new(Mutex::new(ReplicaWatermarks::new()));
        let cut_for_lag = Arc::new(AtomicBool::new(false));
        self.inner.followers.lock().push(FollowerSlot {
            name: name.into(),
            tx,
            acked: Arc::clone(&acked),
            cut_for_lag: Arc::clone(&cut_for_lag),
        });
        FollowerLink {
            frames: rx,
            acked,
            cut_for_lag,
        }
    }

    /// Attaches the primary's metrics: from now on the pump publishes a
    /// [`HubHealth`] snapshot (counters + per-follower lag) after every
    /// shipped frame, and follower lag-cutoffs land in the control
    /// journal — so `render_prometheus()` on the primary covers the hub.
    pub fn attach_metrics(&self, metrics: &ServiceMetrics) {
        *self.inner.metrics.lock() = Some(metrics.clone());
        metrics.hub_observed(self.inner.health());
    }

    /// Shipping counters so far.
    pub fn stats(&self) -> HubStats {
        HubStats {
            frames_shipped: self.inner.frames_shipped.load(Ordering::Relaxed),
            events_shipped: self.inner.events_shipped.load(Ordering::Relaxed),
            bytes_shipped: self.inner.bytes_shipped.load(Ordering::Relaxed),
            snapshot_bytes_shipped: self.inner.snapshot_bytes_shipped.load(Ordering::Relaxed),
            followers: self.inner.followers.lock().len(),
            followers_dropped: self.inner.followers_dropped.load(Ordering::Relaxed),
            encode_buffer_reuses: self.inner.encode_buffer_reuses.load(Ordering::Relaxed),
        }
    }

    /// The highest sequence shipped per campaign.
    pub fn shipped_watermarks(&self) -> Vec<(CampaignId, u64)> {
        self.inner.shipped.lock().all()
    }

    /// Per-follower lag: shipped minus acked, per campaign, summed.
    pub fn lag(&self) -> Vec<FollowerLag> {
        let shipped = self.inner.shipped.lock().clone();
        self.inner
            .followers
            .lock()
            .iter()
            .map(|slot| {
                let acked = slot.acked.lock().clone();
                let lag_events = shipped
                    .all()
                    .into_iter()
                    .map(|(campaign, seq)| seq.saturating_sub(acked.get(campaign)))
                    .sum();
                FollowerLag {
                    name: slot.name.clone(),
                    lag_events,
                    acked: acked.all(),
                }
            })
            .collect()
    }

    /// Waits for the pump to drain and stop (the primary's sinks must all
    /// be dropped first, or this blocks forever).
    pub fn join(mut self) {
        if let Some(pump) = self.pump.take() {
            pump.join().expect("replication hub thread panicked");
        }
    }
}

impl Drop for ReplicationHub {
    fn drop(&mut self) {
        // Dropping the hub handle does not kill the pump: it keeps
        // fanning out until the primary's sinks disappear, then exits on
        // its own. Detach rather than join so drop never deadlocks.
        drop(self.pump.take());
    }
}

fn pump_loop(inner: &HubInner, feed: Receiver<ReplicationFrame>) {
    // The pump's encode scratch, reused across iterations: after the
    // first few frames grow it to the stream's working-set size, each
    // encode is allocation-free and the only per-frame allocation left is
    // the exact-size shared record the followers refcount.
    let mut scratch: Vec<u8> = Vec::new();
    while let Ok(frame) = feed.recv() {
        {
            let mut shipped = inner.shipped.lock();
            match &frame {
                ReplicationFrame::Snapshot(s) => shipped.advance_to(s.campaign, s.seq),
                ReplicationFrame::Events(events) => {
                    for e in events {
                        shipped.advance_to(e.campaign, e.seq);
                    }
                }
            }
        }
        inner.frames_shipped.fetch_add(1, Ordering::Relaxed);
        inner
            .events_shipped
            .fetch_add(frame.num_events() as u64, Ordering::Relaxed);
        // Encode lazily: with nobody subscribed there is no wire to put
        // bytes on, so the pump only tracks watermarks and frame counts.
        // The encode cost (and the byte counters) start when the first
        // follower actually exists.
        if inner.followers.lock().is_empty() {
            continue;
        }
        let cap_before = scratch.capacity();
        encode_frame_into(&frame, &mut scratch);
        if cap_before > 0 && scratch.capacity() == cap_before {
            inner.encode_buffer_reuses.fetch_add(1, Ordering::Relaxed);
        }
        let record = ShippedRecord {
            bytes: Arc::from(scratch.as_slice()),
            shipped_at: Instant::now(),
        };
        let byte_counter = match &frame {
            ReplicationFrame::Snapshot(_) => &inner.snapshot_bytes_shipped,
            ReplicationFrame::Events(_) => &inner.bytes_shipped,
        };
        byte_counter.fetch_add(record.len() as u64, Ordering::Relaxed);
        // Fan out (a refcount bump per follower, the bytes are shared),
        // forgetting followers whose applier hung up — and cutting off
        // followers whose bounded stream is full: the pump never blocks
        // on a laggard, so one wedged follower cannot stall the others or
        // grow the primary's memory without limit.
        let mut cut_names: Vec<String> = Vec::new();
        inner
            .followers
            .lock()
            .retain(|slot| match slot.tx.try_send(record.clone()) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    eprintln!(
                        "docs-replication-hub: follower '{}' trails by more than \
                         its stream bound — disconnecting it",
                        slot.name
                    );
                    // Flag first, then drop the sender: by the time the
                    // applier sees end-of-stream the flag is visible.
                    slot.cut_for_lag.store(true, Ordering::SeqCst);
                    cut_names.push(slot.name.clone());
                    false
                }
                Err(TrySendError::Disconnected(_)) => false,
            });
        if !cut_names.is_empty() {
            inner
                .followers_dropped
                .fetch_add(cut_names.len() as u64, Ordering::Relaxed);
        }
        // Metrics ride the pump thread, never a shard: publish the hub's
        // health after each fan-out and journal any cutoffs.
        if let Some(metrics) = inner.metrics.lock().as_ref() {
            for name in &cut_names {
                metrics.journal().warn(
                    JournalKind::FollowerDisconnect,
                    format!("follower '{name}' cut off for trailing past its stream bound"),
                );
            }
            metrics.hub_observed(inner.health());
        }
    }
    // Feed gone (primary stopped or crashed): drop every follower sender
    // so appliers see end-of-stream after draining what was shipped.
    inner.followers.lock().clear();
}

/// Scans a primary's durability directory into bootstrap frames: per
/// campaign, its latest intact snapshot (possibly mid-campaign — the
/// snapshot cadence and creation baselines both qualify) followed by the
/// event suffix beyond it. New followers apply these before their live
/// stream; the shared watermark table silently drops whatever the two
/// overlap on.
///
/// The directory may belong to a **live** primary, whose snapshot cycle
/// can rewrite snapshots and prune segments mid-scan — a single scan
/// caught astride a prune could pair an old snapshot with a post-prune
/// segment set, leaving a sequence hole the live stream can never fill
/// (the applier would refuse it as a gap). The scan therefore repeats
/// until two consecutive passes agree on every campaign's durable
/// frontier; prunes are cadence-spaced, so disagreement is rare and a
/// handful of retries is plenty.
pub fn bootstrap_frames(dir: impl AsRef<Path>) -> Result<Vec<ReplicationFrame>> {
    let dir = dir.as_ref();
    let frontier = |t: &docs_storage::TreeRecovery| {
        t.campaigns
            .iter()
            .map(|(id, c)| (*id, c.snapshot.as_ref().map(|(s, _)| *s), c.last_seq))
            .collect::<Vec<_>>()
    };
    let mut previous: Option<docs_storage::TreeRecovery> = None;
    let mut tree = None;
    let mut last_error = None;
    for _ in 0..8 {
        // A scan caught astride a prune can also *fail* (the old snapshot
        // paired with post-prune segments reads as a sequence gap) — that
        // too is instability, retried rather than propagated.
        match recover_tree(dir) {
            Ok(scan) => {
                if let Some(prev) = &previous {
                    if frontier(prev) == frontier(&scan) {
                        tree = Some(scan);
                        break;
                    }
                }
                previous = Some(scan);
                last_error = None;
            }
            Err(e) => {
                previous = None;
                last_error = Some(e);
            }
        }
    }
    let Some(tree) = tree else {
        return Err(last_error.unwrap_or_else(|| {
            docs_types::Error::Storage(
                "bootstrap scan never stabilized: durability directory kept \
                 changing between passes"
                    .into(),
            )
        }));
    };
    let mut frames = Vec::new();
    for (id, campaign) in &tree.campaigns {
        let Some((seq, payload)) = &campaign.snapshot else {
            // No snapshot: the creation was never acknowledged (same rule
            // as crash recovery) — nothing to bootstrap.
            continue;
        };
        frames.push(ReplicationFrame::Snapshot(SnapshotFrame {
            campaign: *id,
            seq: *seq,
            // Cold path: a bootstrap scan runs once per subscriber, so
            // detaching from the recovery arena is fine here.
            payload: payload.to_vec(),
        }));
        if !campaign.events.is_empty() {
            frames.push(ReplicationFrame::Events(
                campaign
                    .events
                    .iter()
                    .map(|(seq, payload)| EventFrame {
                        campaign: *id,
                        seq: *seq,
                        payload: payload.to_vec(),
                    })
                    .collect(),
            ));
        }
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::decode_frame;

    fn event(campaign: u32, seq: u64) -> EventFrame {
        EventFrame {
            campaign: CampaignId(campaign),
            seq,
            payload: format!("e{campaign}-{seq}").into_bytes(),
        }
    }

    #[test]
    fn hub_fans_encoded_frames_out_to_every_follower_and_tracks_lag() {
        // A raw feed channel stands in for the primary's shard sinks (the
        // service-facing `ReplicationSink` wraps exactly this sender; the
        // integration tests cover the full service path).
        let (feed_tx, feed_rx) = unbounded();
        let hub = ReplicationHub::spawn(feed_rx);
        let a = hub.subscribe("a");
        let b = hub.subscribe("b");

        let frame = ReplicationFrame::Events(vec![event(0, 1), event(0, 2), event(5, 1)]);
        feed_tx.send(frame.clone()).unwrap();
        // Both followers receive the identical CRC-checked record.
        let rec_a = a.frames.recv().unwrap();
        let rec_b = b.frames.recv().unwrap();
        assert_eq!(rec_a.bytes(), rec_b.bytes());
        assert_eq!(decode_frame(&rec_a).unwrap(), frame);

        // Shipped watermarks advanced; nobody acked yet.
        wait_until(|| hub.stats().frames_shipped == 1);
        assert_eq!(
            hub.shipped_watermarks(),
            vec![(CampaignId(0), 2), (CampaignId(5), 1)]
        );
        let lag = hub.lag();
        assert_eq!(lag.len(), 2);
        assert_eq!(lag[0].lag_events, 3);
        // Follower `a` acks campaign 0 fully: its lag drops to 1.
        a.acked.lock().advance_to(CampaignId(0), 2);
        let lag = hub.lag();
        assert_eq!(lag[0].name, "a");
        assert_eq!(lag[0].lag_events, 1);
        assert_eq!(lag[1].lag_events, 3);
        assert!(hub.stats().bytes_shipped > 0);
        assert_eq!(hub.stats().followers, 2);

        // Dropping the feed ends the stream for every follower.
        drop(feed_tx);
        assert!(a.frames.recv().is_err());
        assert!(b.frames.recv().is_err());
        hub.join();
    }

    #[test]
    fn a_follower_trailing_past_its_stream_bound_is_cut_off_not_buffered() {
        let (feed_tx, feed_rx) = unbounded();
        let hub = ReplicationHub::spawn(feed_rx);
        // A tiny bound and an applier that never drains.
        let slow = hub.subscribe_with_capacity("slow", 2);
        let healthy = hub.subscribe("healthy");
        for seq in 1..=4u64 {
            feed_tx
                .send(ReplicationFrame::Events(vec![event(0, seq)]))
                .unwrap();
        }
        // The healthy follower got all four frames…
        for _ in 0..4 {
            healthy.frames.recv().unwrap();
        }
        // …while the slow one was disconnected after its bound filled:
        // the two buffered frames drain, then the stream ends.
        wait_until(|| hub.stats().followers_dropped == 1);
        assert_eq!(hub.stats().followers, 1, "laggard no longer subscribed");
        // Four equally-sized frames: the first grows the pump's scratch,
        // the rest reuse it without reallocating.
        assert!(
            hub.stats().encode_buffer_reuses >= 3,
            "steady-state encodes reuse the scratch buffer: {:?}",
            hub.stats()
        );
        assert!(slow.frames.recv().is_ok());
        assert!(slow.frames.recv().is_ok());
        assert!(slow.frames.recv().is_err(), "stream ends after the cutoff");
        // The cutoff is visible follower-side: the applier uses this flag
        // to poison the replica (a cut-off replica must refuse promotion).
        assert!(
            slow.cut_for_lag.load(std::sync::atomic::Ordering::SeqCst),
            "lag cutoff must be distinguishable from a dead primary"
        );
        assert!(
            !healthy
                .cut_for_lag
                .load(std::sync::atomic::Ordering::SeqCst),
            "healthy follower unaffected"
        );
        drop(feed_tx);
        hub.join();
    }

    fn wait_until(cond: impl Fn() -> bool) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!("condition not reached");
    }
}
