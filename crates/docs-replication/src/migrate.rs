//! Live campaign migration: moves one campaign between two primary nodes
//! while workers keep submitting, reusing the replication machinery as a
//! hand-off protocol.
//!
//! Replication already stretches the crash-recovery contract over a wire:
//! snapshot + ordered durable event suffix rebuilds a byte-identical
//! state machine. A migration is the same shipment with a different
//! ending — instead of tailing forever, the source is *fenced* at a
//! recorded watermark and the destination takes over the write path:
//!
//! 1. **subscribe** to the source's [`ReplicationHub`] (before scanning,
//!    the same subscribe-first/scan-second order a new replica uses — the
//!    watermark table de-duplicates the overlap, and a gap is impossible
//!    because anything flushed before the subscription is on disk for the
//!    scan),
//! 2. **copy**: apply the campaign's [`bootstrap_frames`] (latest
//!    snapshot + durable suffix) to the destination, which is in *intake*
//!    ([`ServiceHandle::prepare_migration_in`]): it accepts the
//!    replication plane for this campaign while still redirecting client
//!    mutations to the source,
//! 3. **fence** the source ([`ServiceHandle::fence_in`]): its shard
//!    hardens the campaign's log, ships the tail, records the hand-off
//!    watermark, and from then on redirects mutations to the destination
//!    with [`RejectReason::WrongNode`](docs_types::RejectReason) — reads
//!    keep being served locally (the fenced copy is a
//!    consistent-but-stale replica),
//! 4. **chase the tail**: drain the live stream until the destination
//!    has applied everything at or below the fence watermark. Because the
//!    fence flushed *then* shipped before answering, every event the
//!    source ever acknowledged is on the wire by the time the fence
//!    watermark is known — no acked event can be lost,
//! 5. **adopt** ([`ServiceHandle::complete_migration_in`]): the
//!    destination starts accepting the campaign's mutations. In-flight
//!    submissions that bounced between the two redirects during the
//!    fence window are the router's to forward
//!    ([`ClusterRouter`](docs_service::ClusterRouter) parks ~1 ms per
//!    bounce and retries — "buffer and forward").
//!
//! The caller then flips the routing directory: bump the
//! [`ClusterMap`](docs_types::ClusterMap) epoch, assign the campaign to
//! the destination, and install the map on routers and nodes — stale
//! clients self-heal off the `WrongNode` answers.
//!
//! [`bootstrap_frames`]: crate::bootstrap_frames
//! [`ServiceHandle::prepare_migration_in`]: docs_service::ServiceHandle
//! [`ServiceHandle::fence_in`]: docs_service::ServiceHandle
//! [`ServiceHandle::complete_migration_in`]: docs_service::ServiceHandle

use crate::apply::apply_frame;
use crate::frame::decode_frame;
use crate::ship::{bootstrap_frames, FollowerLink, ReplicationHub};
use crossbeam::channel::RecvTimeoutError;
use docs_service::{ServiceError, ServiceHandle};
use docs_types::{CampaignId, Error, NodeId, ReplicationFrame, Result};
use std::path::Path;
use std::time::{Duration, Instant};

/// How long the tail chase may wait for the fenced watermark to come out
/// of the wire before the migration gives up. The fence has already
/// flushed and shipped by the time the watermark is known, so this only
/// has to cover hub pump + apply latency — seconds of slack on a path
/// that takes milliseconds.
const TAIL_CHASE_TIMEOUT: Duration = Duration::from_secs(30);

/// The source side of a migration: where the campaign currently lives.
pub struct MigrationSource<'a> {
    /// The owning primary's routing handle.
    pub handle: &'a ServiceHandle,
    /// The owning node's cluster identity.
    pub node: NodeId,
    /// The owning pool's durability directory (scanned for the snapshot
    /// + suffix shipment, exactly like a new replica's bootstrap).
    pub dir: &'a Path,
    /// The owning pool's replication hub (the tail arrives through it).
    pub hub: &'a ReplicationHub,
}

/// What a completed migration measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationOutcome {
    /// The campaign that moved.
    pub campaign: CampaignId,
    /// The source's hand-off watermark: the highest sequence it ever
    /// acknowledged. The destination applied everything at or below it.
    pub fence_watermark: u64,
    /// Bootstrap frames (snapshot + suffix batches) copied before the
    /// fence.
    pub bootstrap_frames: usize,
    /// Watermark distance covered through the live stream after the
    /// bootstrap copy — the tail the fence window had to chase.
    pub streamed_events: u64,
    /// Fence → adoption: how long mutations had no serving owner and the
    /// routers buffered-and-forwarded.
    pub fence_window: Duration,
}

/// Moves `campaign` from `source` to the destination primary, live: the
/// source keeps serving until the fence, the destination takes over at
/// the recorded watermark, and no acknowledged event is lost in between.
///
/// Only durable campaigns can move — the shipment *is* the durability
/// artifact (snapshot + suffix); a memory-only campaign has nothing on
/// disk to copy and the call refuses it.
///
/// On success the caller still owns the directory flip: bump the
/// [`ClusterMap`](docs_types::ClusterMap) epoch, assign the campaign to
/// `dst_node`, and install the map on every router and node.
pub fn migrate_campaign(
    campaign: CampaignId,
    source: &MigrationSource<'_>,
    dst: &ServiceHandle,
    dst_node: NodeId,
) -> Result<MigrationOutcome> {
    let lift = |e: ServiceError| Error::Storage(format!("migration control: {e}"));
    // Subscribe first, scan second (the replica bootstrap order): the
    // stream covers everything after this instant, the scan everything
    // before it, and the watermark table drops the overlap.
    let link = source.hub.subscribe(format!("migrate-{campaign}"));
    let bootstrap: Vec<ReplicationFrame> = bootstrap_frames(source.dir)?
        .into_iter()
        .filter_map(|frame| filter_frame(frame, campaign))
        .collect();
    if bootstrap.is_empty() {
        return Err(Error::Storage(format!(
            "campaign {campaign} has no durable state to migrate; only \
             durable campaigns can move between nodes"
        )));
    }
    // Intake: from here the destination accepts this campaign's
    // replication plane while still redirecting client mutations to the
    // source — the write path has exactly one owner at every instant.
    dst.prepare_migration_in(campaign, source.node)
        .map_err(lift)?;
    let bootstrap_count = bootstrap.len();
    for frame in bootstrap {
        apply_frame(dst, &link.acked, frame)?;
    }
    let after_bootstrap = link.acked.lock().get(campaign);
    // The source kept acknowledging answers during the copy; drain what
    // the stream buffered so the fence window starts as short as it can.
    while let Ok(record) = link.frames.try_recv() {
        apply_filtered(dst, &link, &record, campaign)?;
    }

    // Fence: the source hardens the log, ships the tail, records the
    // hand-off watermark, and starts redirecting mutations to `dst_node`.
    let fence_started = Instant::now();
    let fence_watermark = source.handle.fence_in(campaign, dst_node).map_err(lift)?;

    // Chase the tail to the fence watermark. Flush-then-ship inside the
    // fence guarantees every acknowledged event is on the wire by now.
    let deadline = Instant::now() + TAIL_CHASE_TIMEOUT;
    while link.acked.lock().get(campaign) < fence_watermark {
        if Instant::now() >= deadline {
            return Err(Error::Storage(format!(
                "migration of campaign {campaign} timed out chasing the \
                 fenced tail: applied {}, fenced at {fence_watermark}",
                link.acked.lock().get(campaign)
            )));
        }
        match link.frames.recv_timeout(Duration::from_millis(20)) {
            Ok(record) => apply_filtered(dst, &link, &record, campaign)?,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(Error::Storage(format!(
                    "migration of campaign {campaign} lost its stream below \
                     the fence watermark: applied {}, fenced at \
                     {fence_watermark}",
                    link.acked.lock().get(campaign)
                )));
            }
        }
    }

    // Adopt: the destination owns the write path; redirected submissions
    // the routers buffered during the fence window land here now.
    dst.complete_migration_in(campaign).map_err(lift)?;
    let fence_window = fence_started.elapsed();
    // The adopting node owns the campaign now; the fence window is its
    // unavailability story, so its histogram gets the sample.
    dst.metrics().fence_window_recorded(fence_window);
    let applied = link.acked.lock().get(campaign);
    Ok(MigrationOutcome {
        campaign,
        fence_watermark,
        bootstrap_frames: bootstrap_count,
        streamed_events: applied.saturating_sub(after_bootstrap),
        fence_window,
    })
}

/// Decodes one wire record and applies whatever of it belongs to the
/// migrating campaign — the hub fans out the whole feed, and frames of
/// co-hosted campaigns are not ours to apply.
fn apply_filtered(
    dst: &ServiceHandle,
    link: &FollowerLink,
    record: &[u8],
    campaign: CampaignId,
) -> Result<()> {
    if let Some(frame) = filter_frame(decode_frame(record)?, campaign) {
        apply_frame(dst, &link.acked, frame)?;
    }
    Ok(())
}

/// Restricts a frame to one campaign. Dropping foreign events cannot open
/// a gap: each campaign's sequence numbers are its own.
fn filter_frame(frame: ReplicationFrame, campaign: CampaignId) -> Option<ReplicationFrame> {
    match frame {
        ReplicationFrame::Snapshot(s) if s.campaign == campaign => {
            Some(ReplicationFrame::Snapshot(s))
        }
        ReplicationFrame::Snapshot(_) => None,
        ReplicationFrame::Events(events) => {
            let kept: Vec<_> = events
                .into_iter()
                .filter(|e| e.campaign == campaign)
                .collect();
            if kept.is_empty() {
                None
            } else {
                Some(ReplicationFrame::Events(kept))
            }
        }
    }
}
