//! WAL-shipping replication for the DOCS service: read replicas fed by
//! log streaming, lag tracking, and promotion/failover.
//!
//! The event-sourced runtime (docs-storage + docs-service) already
//! guarantees that a campaign's snapshot plus its ordered, durable event
//! suffix rebuilds a **byte-identical** state machine — that is its crash
//! -recovery contract. This crate stretches the same contract over a wire:
//!
//! * the **primary** runs with a [`ReplicationSink`](docs_service::ReplicationSink)
//!   attached ([`replication_channel`]): after every group commit its
//!   shards hand the newly durable events (and every snapshot written) to
//!   the sink — *ship-after-flush, ship-before-ack*, so the wire never
//!   carries an event the primary's disk has not accepted, and never
//!   acknowledges one the wire has not seen;
//! * the [`ReplicationHub`] encodes each frame into a length-prefixed,
//!   CRC-checked record (the WAL's own framing style) and fans it out to
//!   subscribed followers, tracking shipped watermarks and per-follower
//!   lag;
//! * a [`Replica`] is a follower service pool
//!   ([`DocsService::spawn_replica`](docs_service::DocsService)) plus an
//!   applier thread: new followers bootstrap from the primary's snapshots
//!   — including mid-campaign snapshots, via [`bootstrap_frames`] — then
//!   apply the live stream through the identical deterministic
//!   `validate_event`/`apply` transition, advancing the per-campaign
//!   watermark table that doubles as the ack channel. Followers refuse
//!   mutations (`RejectReason::ReadOnlyReplica`) but serve status, truth,
//!   and state reads locally — [`ReadRouter`](docs_service::ReadRouter)
//!   fans client reads out to them;
//! * **failover**: [`Replica::promote`] drains every shipped frame, flips
//!   the pool to primary at a recorded watermark, and the service resumes
//!   accepting writes. Under `FlushPolicy::EveryEvent`, no event the old
//!   primary ever acknowledged can be lost across the crash → promotion →
//!   resume cycle (`tests/replication.rs` pins this with fault injection);
//! * **migration**: [`migrate_campaign`] reuses the snapshot + suffix
//!   shipment as a live hand-off between two *primaries* — copy, fence
//!   the source at a recorded watermark, chase the tail, adopt — so a
//!   campaign can move nodes mid-traffic with no acknowledged event lost
//!   (see ARCHITECTURE.md, "Cluster & migration").

mod apply;
mod frame;
mod migrate;
mod ship;

pub use apply::{Promotion, Replica};
pub use frame::{decode_frame, encode_frame};
pub use migrate::{migrate_campaign, MigrationOutcome, MigrationSource};
pub use ship::{
    bootstrap_frames, replication_channel, FollowerLag, FollowerLink, HubStats, ReplicationHub,
    ShippedRecord,
};
