//! The byte encoding of replication frames: length-prefixed, CRC-checked
//! records in the same style as the on-disk WAL.
//!
//! Wire layout of one record:
//!
//! ```text
//! [frame_len: u32 LE][crc32(frame): u32 LE][frame bytes]
//! frame bytes:
//!   0x01 (snapshot)  [campaign u32][seq u64][payload_len u32][payload]
//!   0x02 (events)    [count u32] then per event:
//!                    [campaign u32][seq u64][payload_len u32][payload]
//! ```
//!
//! The payloads are the exact bytes the primary's WAL/snapshot files hold,
//! so a follower applies — bit for bit — what the primary's own recovery
//! would replay. Decoding verifies the CRC before anything is
//! interpreted: a flipped bit anywhere in a frame is a loud
//! [`Error::Storage`], never a silently diverged replica.

use bytes::Buf;
use docs_storage::crc32;
use docs_types::{CampaignId, Error, EventFrame, ReplicationFrame, Result, SnapshotFrame};

const KIND_SNAPSHOT: u8 = 0x01;
const KIND_EVENTS: u8 = 0x02;

fn put_tagged(buf: &mut Vec<u8>, campaign: CampaignId, seq: u64, payload: &[u8]) {
    buf.extend_from_slice(&campaign.0.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
}

fn get_tagged(cursor: &mut &[u8]) -> Result<(CampaignId, u64, Vec<u8>)> {
    if cursor.len() < 16 {
        return Err(Error::Storage("truncated replication frame body".into()));
    }
    let campaign = CampaignId(cursor.get_u32_le());
    let seq = cursor.get_u64_le();
    let len = cursor.get_u32_le() as usize;
    if cursor.len() < len {
        return Err(Error::Storage("truncated replication frame payload".into()));
    }
    let payload = cursor[..len].to_vec();
    cursor.advance(len);
    Ok((campaign, seq, payload))
}

/// Encodes one frame into `record`, **reusing its allocation**: the buffer
/// is cleared, not reallocated, so a caller encoding frames in a loop (the
/// hub's pump) settles into zero encode allocations once the buffer has
/// grown to the stream's largest frame. The length/CRC header is written
/// as a placeholder and back-patched after the body, keeping the record a
/// single contiguous write.
pub fn encode_frame_into(frame: &ReplicationFrame, record: &mut Vec<u8>) {
    record.clear();
    record.extend_from_slice(&[0u8; 8]);
    match frame {
        ReplicationFrame::Snapshot(s) => {
            record.push(KIND_SNAPSHOT);
            put_tagged(record, s.campaign, s.seq, &s.payload);
        }
        ReplicationFrame::Events(events) => {
            record.push(KIND_EVENTS);
            record.extend_from_slice(&(events.len() as u32).to_le_bytes());
            for e in events {
                put_tagged(record, e.campaign, e.seq, &e.payload);
            }
        }
    }
    let body_len = (record.len() - 8) as u32;
    let crc = crc32(&record[8..]);
    record[..4].copy_from_slice(&body_len.to_le_bytes());
    record[4..8].copy_from_slice(&crc.to_le_bytes());
}

/// Encodes one frame into its CRC-stamped wire record (a fresh allocation;
/// hot paths use [`encode_frame_into`] with a retained buffer).
pub fn encode_frame(frame: &ReplicationFrame) -> Vec<u8> {
    let mut record = Vec::new();
    encode_frame_into(frame, &mut record);
    record
}

/// Decodes one wire record back into its frame, verifying length and CRC
/// first — a corrupted record is refused before any field is trusted.
pub fn decode_frame(record: &[u8]) -> Result<ReplicationFrame> {
    if record.len() < 8 {
        return Err(Error::Storage(format!(
            "replication record truncated ({} bytes)",
            record.len()
        )));
    }
    let mut header = &record[..8];
    let len = header.get_u32_le() as usize;
    let crc = header.get_u32_le();
    if record.len() != 8 + len {
        return Err(Error::Storage(format!(
            "replication record length mismatch: header promises {len} frame \
             bytes, record carries {}",
            record.len() - 8
        )));
    }
    let body = &record[8..];
    if crc32(body) != crc {
        return Err(Error::Storage(
            "replication frame failed its CRC check".into(),
        ));
    }
    // From here every read is bounds-checked by hand: a record that
    // passes the CRC but carries a malformed body (e.g. a zero-length
    // frame) must still be a clean error, never a panic in the applier.
    let mut cursor = body;
    if cursor.is_empty() {
        return Err(Error::Storage("empty replication frame body".into()));
    }
    let kind = cursor.get_u8();
    match kind {
        KIND_SNAPSHOT => {
            let (campaign, seq, payload) = get_tagged(&mut cursor)?;
            Ok(ReplicationFrame::Snapshot(SnapshotFrame {
                campaign,
                seq,
                payload,
            }))
        }
        KIND_EVENTS => {
            if cursor.len() < 4 {
                return Err(Error::Storage("truncated replication frame body".into()));
            }
            let count = cursor.get_u32_le() as usize;
            // Every event needs at least its 16-byte tag, so a count the
            // remaining bytes cannot possibly satisfy is refused *before*
            // it sizes an allocation.
            if count > cursor.len() / 16 {
                return Err(Error::Storage(format!(
                    "replication frame claims {count} events in {} bytes",
                    cursor.len()
                )));
            }
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                let (campaign, seq, payload) = get_tagged(&mut cursor)?;
                events.push(EventFrame {
                    campaign,
                    seq,
                    payload,
                });
            }
            Ok(ReplicationFrame::Events(events))
        }
        other => Err(Error::Storage(format!(
            "unknown replication frame kind 0x{other:02x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<ReplicationFrame> {
        vec![
            ReplicationFrame::Snapshot(SnapshotFrame {
                campaign: CampaignId(7),
                seq: 42,
                payload: b"{\"engine\":{}}".to_vec(),
            }),
            ReplicationFrame::Events(vec![
                EventFrame {
                    campaign: CampaignId(7),
                    seq: 43,
                    payload: b"{\"AnswerSubmitted\":{}}".to_vec(),
                },
                EventFrame {
                    campaign: CampaignId(9),
                    seq: 1,
                    payload: Vec::new(),
                },
            ]),
            ReplicationFrame::Events(Vec::new()),
        ]
    }

    #[test]
    fn every_frame_roundtrips_through_the_wire_encoding() {
        for frame in frames() {
            let record = encode_frame(&frame);
            assert_eq!(decode_frame(&record).unwrap(), frame, "{}", frame.kind());
        }
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_the_one_shot_encoding() {
        let mut scratch = Vec::new();
        for frame in frames() {
            encode_frame_into(&frame, &mut scratch);
            assert_eq!(scratch, encode_frame(&frame), "{}", frame.kind());
            assert_eq!(decode_frame(&scratch).unwrap(), frame);
        }
        // Once grown, encoding a smaller frame reuses the allocation.
        let cap = scratch.capacity();
        encode_frame_into(&frames()[2], &mut scratch);
        assert_eq!(scratch.capacity(), cap, "no reallocation on reuse");
    }

    #[test]
    fn a_flipped_bit_anywhere_fails_the_crc_loudly() {
        let record = encode_frame(&frames()[1]);
        // Flip one bit at every body position: each must be caught.
        for i in 8..record.len() {
            let mut bad = record.clone();
            bad[i] ^= 0x01;
            let err = decode_frame(&bad).unwrap_err();
            assert!(err.to_string().contains("CRC"), "byte {i}: {err}");
        }
    }

    /// Builds a record whose CRC is valid for an arbitrary (possibly
    /// malformed) body — the adversarial decode inputs.
    fn record_of(body: &[u8]) -> Vec<u8> {
        let mut rec = Vec::new();
        rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(body).to_le_bytes());
        rec.extend_from_slice(body);
        rec
    }

    #[test]
    fn truncation_and_unknown_kinds_are_clean_errors() {
        let record = encode_frame(&frames()[0]);
        assert!(decode_frame(&record[..4]).is_err(), "short header");
        assert!(
            decode_frame(&record[..record.len() - 1]).is_err(),
            "short body"
        );
        // Unknown kind: a record with a bogus kind byte.
        let mut body = vec![0x7Fu8];
        body.extend_from_slice(&[0; 16]);
        let err = decode_frame(&record_of(&body)).unwrap_err();
        assert!(err.to_string().contains("unknown"), "{err}");
    }

    /// CRC-valid but malformed bodies must decode to errors, never panic
    /// (a panicking decode would kill the applier thread).
    #[test]
    fn crc_valid_malformed_bodies_are_errors_not_panics() {
        // Empty body: length and CRC both check out.
        let err = decode_frame(&record_of(&[])).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        // Snapshot kind with a truncated tag.
        let err = decode_frame(&record_of(&[0x01, 9, 9])).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Events kind claiming u32::MAX events in a 4-byte body: refused
        // before it can size an allocation.
        let mut body = vec![0x02u8];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_frame(&record_of(&body)).unwrap_err();
        assert!(err.to_string().contains("claims"), "{err}");
        // Events kind whose one event promises more payload than exists.
        let mut body = vec![0x02u8];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&7u32.to_le_bytes()); // campaign
        body.extend_from_slice(&1u64.to_le_bytes()); // seq
        body.extend_from_slice(&5u32.to_le_bytes()); // payload len, 0 present
        let err = decode_frame(&record_of(&body)).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }
}
