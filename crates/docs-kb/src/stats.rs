//! Knowledge-base health statistics and validation.
//!
//! A deployment that swaps in its own KB (the paper used Freebase; ours is
//! synthetic; a downstream user might load a Wikidata dump) needs to know
//! whether the KB can actually support domain vector estimation: are all
//! deployment domains covered by concepts, how ambiguous is the alias
//! space, how many concepts carry no domain signal at all. [`KbStats`]
//! computes those numbers and [`KbStats::validate`] turns the hard failure
//! modes into actionable errors.

use crate::KnowledgeBase;

/// Aggregate statistics of a knowledge base.
#[derive(Debug, Clone, PartialEq)]
pub struct KbStats {
    /// Number of concepts.
    pub concepts: usize,
    /// Number of distinct aliases.
    pub aliases: usize,
    /// Aliases resolving to more than one concept.
    pub ambiguous_aliases: usize,
    /// Concepts related to no deployment domain (like the paper's
    /// "Michael I. Jordan" page, which maps outside the 26 domains).
    pub domain_free_concepts: usize,
    /// Concepts related to two or more domains (multi-domain concepts,
    /// like the basketball Michael Jordan: sports + films).
    pub multi_domain_concepts: usize,
    /// Concepts per domain, indexed by domain id.
    pub concepts_per_domain: Vec<usize>,
    /// Mean candidates per alias (≥ 1.0; higher = more ambiguity).
    pub mean_candidates_per_alias: f64,
}

/// A problem that makes a KB unusable (or useless) for DVE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbIssue {
    /// The KB has no concepts at all.
    Empty,
    /// These domains have no related concept — tasks in them can never be
    /// detected (named by domain index).
    UncoveredDomains(Vec<usize>),
    /// Every concept is domain-free: DVE would emit only uniform vectors.
    NoDomainSignal,
}

impl std::fmt::Display for KbIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KbIssue::Empty => write!(f, "knowledge base has no concepts"),
            KbIssue::UncoveredDomains(ds) => {
                write!(f, "domains without any related concept: {ds:?}")
            }
            KbIssue::NoDomainSignal => {
                write!(f, "every concept is domain-free; DVE would be uniform")
            }
        }
    }
}

impl KbStats {
    /// Computes statistics for a knowledge base.
    ///
    /// ```
    /// use docs_kb::{table2_example_kb, KbStats};
    ///
    /// let stats = KbStats::of(&table2_example_kb());
    /// assert_eq!(stats.concepts, 6);          // Table 2's six concepts
    /// assert_eq!(stats.ambiguous_aliases, 2); // "michael jordan", "nba"
    /// // The politics domain has no concept — validation flags it.
    /// assert!(!stats.validate().is_empty());
    /// ```
    pub fn of(kb: &KnowledgeBase) -> KbStats {
        let m = kb.num_domains();
        let mut per_domain = vec![0usize; m];
        let mut domain_free = 0usize;
        let mut multi = 0usize;
        for c in kb.concepts() {
            let count = c.domains.count() as usize;
            if count == 0 {
                domain_free += 1;
            }
            if count >= 2 {
                multi += 1;
            }
            for (k, slot) in per_domain.iter_mut().enumerate() {
                *slot += c.domains.get(k) as usize;
            }
        }
        let ambiguous = kb.ambiguous_aliases().count();
        let total_candidates: usize = kb
            .aliases()
            .map(|a| kb.candidates(a).map_or(0, <[_]>::len))
            .sum();
        KbStats {
            concepts: kb.num_concepts(),
            aliases: kb.num_aliases(),
            ambiguous_aliases: ambiguous,
            domain_free_concepts: domain_free,
            multi_domain_concepts: multi,
            concepts_per_domain: per_domain,
            mean_candidates_per_alias: if kb.num_aliases() == 0 {
                0.0
            } else {
                total_candidates as f64 / kb.num_aliases() as f64
            },
        }
    }

    /// Checks the hard failure modes; an empty result means the KB can
    /// support DVE on every deployment domain.
    pub fn validate(&self) -> Vec<KbIssue> {
        let mut issues = Vec::new();
        if self.concepts == 0 {
            issues.push(KbIssue::Empty);
            return issues;
        }
        let uncovered: Vec<usize> = self
            .concepts_per_domain
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(k, _)| k)
            .collect();
        if !uncovered.is_empty() {
            issues.push(KbIssue::UncoveredDomains(uncovered));
        }
        if self.domain_free_concepts == self.concepts {
            issues.push(KbIssue::NoDomainSignal);
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{table2_example_kb, IndicatorVector, KnowledgeBase};
    use docs_types::DomainSet;

    fn domains() -> DomainSet {
        DomainSet::new(["politics", "sports", "films"])
    }

    #[test]
    fn table2_kb_statistics() {
        let stats = KbStats::of(&table2_example_kb());
        // Table 2: six concepts (3 Michael Jordans, 2 NBAs, Kobe).
        assert_eq!(stats.concepts, 6);
        // "michael jordan" and "nba" are ambiguous; "kobe bryant" is not.
        assert_eq!(stats.ambiguous_aliases, 2);
        // Michael I. Jordan and the bar association carry no domain.
        assert_eq!(stats.domain_free_concepts, 2);
        // The basketball Michael Jordan is sports + films.
        assert_eq!(stats.multi_domain_concepts, 1);
        // Sports: player + NBA + Kobe; films: player + actor; politics: none.
        assert_eq!(stats.concepts_per_domain, vec![0, 3, 2]);
        assert!(stats.mean_candidates_per_alias > 1.0);
        // Politics is uncovered — validation must flag it.
        assert_eq!(stats.validate(), vec![KbIssue::UncoveredDomains(vec![0])]);
    }

    #[test]
    fn curated_kb_validates_clean() {
        let kb = docs_types_smoke();
        let stats = KbStats::of(&kb);
        assert!(stats.validate().is_empty(), "{:?}", stats.validate());
    }

    /// A minimal fully covered KB.
    fn docs_types_smoke() -> KnowledgeBase {
        let mut b = KnowledgeBase::builder(domains());
        for (i, k) in [0usize, 1, 2].iter().enumerate() {
            b.add_concept(
                format!("c{i}"),
                IndicatorVector::from_domains(3, &[*k]),
                1.0,
                [format!("alias{i}")],
            );
        }
        b.build()
    }

    #[test]
    fn empty_kb_is_flagged() {
        let kb = KnowledgeBase::builder(domains()).build();
        let stats = KbStats::of(&kb);
        assert_eq!(stats.validate(), vec![KbIssue::Empty]);
        assert_eq!(stats.mean_candidates_per_alias, 0.0);
    }

    #[test]
    fn all_domain_free_kb_is_flagged() {
        let mut b = KnowledgeBase::builder(domains());
        b.add_concept("void", IndicatorVector::empty(3), 1.0, ["void"]);
        let kb = b.build();
        let issues = KbStats::of(&kb).validate();
        assert!(issues.contains(&KbIssue::NoDomainSignal));
        assert!(issues
            .iter()
            .any(|i| matches!(i, KbIssue::UncoveredDomains(_))));
    }

    #[test]
    fn issue_display_is_readable() {
        assert!(KbIssue::Empty.to_string().contains("no concepts"));
        assert!(KbIssue::UncoveredDomains(vec![2])
            .to_string()
            .contains("[2]"));
        assert!(KbIssue::NoDomainSignal.to_string().contains("uniform"));
    }
}
