//! Per-concept domain indicator vectors `h_{i,j}` (Section 3, Table 2).

use serde::{Deserialize, Serialize};

/// A concept's domain membership: `h_{i,j,k} = 1` iff the `j`-th candidate
/// concept of entity `e_i` is related to domain `d_k`.
///
/// Since the paper deploys with `m = 26` domains (and all simulation
/// experiments use `m ≤ 50`), memberships fit in a single `u64` bitmask.
/// This makes Algorithm 1's hot inner loop — reading `h_{i,j,k}` and the row
/// sum `x_{i,j} = Σ_k h_{i,j,k}` — a shift and a popcount instead of a
/// heap-allocated vector walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndicatorVector {
    mask: u64,
    m: u16,
}

impl IndicatorVector {
    /// Maximum number of domains supported by the packed representation.
    pub const MAX_DOMAINS: usize = 64;

    /// The all-zero indicator over `m` domains — a concept related to no
    /// domain in `D`, like the paper's "Michael I. Jordan" example whose
    /// page maps outside the 26 Yahoo Answers domains.
    pub fn empty(m: usize) -> Self {
        assert!(
            (1..=Self::MAX_DOMAINS).contains(&m),
            "indicator vectors support 1..=64 domains, got {m}"
        );
        IndicatorVector {
            mask: 0,
            m: m as u16,
        }
    }

    /// Builds an indicator from the set of related domain indices.
    ///
    /// # Panics
    /// Panics if `m > 64` or any index is out of range.
    pub fn from_domains(m: usize, domains: &[usize]) -> Self {
        let mut iv = Self::empty(m);
        for &k in domains {
            iv.set(k);
        }
        iv
    }

    /// Builds an indicator from a 0/1 slice, the shape used in Table 2
    /// (e.g. `h_{1,1} = [0, 1, 1]`).
    pub fn from_bits(bits: &[u8]) -> Self {
        let mut iv = Self::empty(bits.len());
        for (k, &b) in bits.iter().enumerate() {
            debug_assert!(b <= 1, "indicator bits must be 0 or 1");
            if b != 0 {
                iv.set(k);
            }
        }
        iv
    }

    /// Marks domain `k` as related.
    pub fn set(&mut self, k: usize) {
        assert!(
            k < self.m as usize,
            "domain {k} out of range (m={})",
            self.m
        );
        self.mask |= 1 << k;
    }

    /// `h_{i,j,k}` as 0/1.
    #[inline]
    pub fn get(&self, k: usize) -> u32 {
        debug_assert!(k < self.m as usize);
        ((self.mask >> k) & 1) as u32
    }

    /// True iff domain `k` is related.
    #[inline]
    pub fn contains(&self, k: usize) -> bool {
        self.get(k) == 1
    }

    /// Row sum `x_{i,j} = Σ_k h_{i,j,k}` — a popcount (Algorithm 1, line 1).
    #[inline]
    pub fn count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Number of domains `m` this indicator is defined over.
    #[inline]
    pub fn num_domains(&self) -> usize {
        self.m as usize
    }

    /// Number of shared domains with another indicator — the semantic
    ///-overlap signal the entity linker uses for disambiguation.
    #[inline]
    pub fn overlap(&self, other: &IndicatorVector) -> u32 {
        (self.mask & other.mask).count_ones()
    }

    /// Expands into the explicit 0/1 vector of length `m`.
    pub fn to_bits(&self) -> Vec<u8> {
        (0..self.m as usize).map(|k| self.get(k) as u8).collect()
    }

    /// Raw bitmask, exposed for the DVE hash-map key ablation bench.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_examples() {
        // h_{1,1} = [0, 1, 1] — Michael Jordan the player: sports + films.
        let h11 = IndicatorVector::from_bits(&[0, 1, 1]);
        assert_eq!(h11.get(0), 0);
        assert_eq!(h11.get(1), 1);
        assert_eq!(h11.get(2), 1);
        assert_eq!(h11.count(), 2);

        // h_{1,2} = [0, 0, 0] — Michael I. Jordan: no related domain.
        let h12 = IndicatorVector::empty(3);
        assert_eq!(h12.count(), 0);

        // h_{1,3} = [0, 0, 1] — Michael B. Jordan: films only.
        let h13 = IndicatorVector::from_domains(3, &[2]);
        assert_eq!(h13.count(), 1);
        assert!(h13.contains(2));
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits = [1u8, 0, 1, 1, 0];
        let iv = IndicatorVector::from_bits(&bits);
        assert_eq!(iv.to_bits(), bits.to_vec());
        assert_eq!(iv.num_domains(), 5);
    }

    #[test]
    fn overlap_counts_shared_domains() {
        let a = IndicatorVector::from_domains(4, &[0, 1]);
        let b = IndicatorVector::from_domains(4, &[1, 2]);
        assert_eq!(a.overlap(&b), 1);
        assert_eq!(a.overlap(&a), 2);
        let c = IndicatorVector::empty(4);
        assert_eq!(a.overlap(&c), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut iv = IndicatorVector::empty(3);
        iv.set(3);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn too_many_domains_rejected() {
        let _ = IndicatorVector::empty(65);
    }

    #[test]
    fn supports_26_yahoo_domains() {
        let iv = IndicatorVector::from_domains(26, &[23, 8]);
        assert!(iv.contains(23));
        assert!(iv.contains(8));
        assert_eq!(iv.count(), 2);
    }
}
