//! Concepts — the KB-side referents of entity mentions (Wikipedia pages /
//! Freebase topics in the paper).

use crate::IndicatorVector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a concept within one [`crate::KnowledgeBase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// Returns the id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A real-world concept: a canonical name, the set of domains it belongs to,
/// and a popularity prior.
///
/// The popularity prior plays the role of Wikifier's "frequency of the
/// linking" feature: when a surface form is ambiguous, more popular concepts
/// receive more of the link probability mass before context is considered.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Concept {
    /// Dense id within the owning knowledge base.
    pub id: ConceptId,
    /// Canonical name, e.g. `"Michael Jordan (basketball player)"`.
    pub name: String,
    /// Domain memberships `h` w.r.t. the deployment's `DomainSet`.
    pub domains: IndicatorVector,
    /// Relative popularity weight (> 0); link priors are proportional to it.
    pub popularity: f64,
}

impl Concept {
    /// Creates a concept; popularity defaults to 1.0 via [`Concept::with_popularity`].
    pub fn new(id: ConceptId, name: impl Into<String>, domains: IndicatorVector) -> Self {
        Concept {
            id,
            name: name.into(),
            domains,
            popularity: 1.0,
        }
    }

    /// Sets the popularity prior weight.
    pub fn with_popularity(mut self, popularity: f64) -> Self {
        assert!(
            popularity > 0.0 && popularity.is_finite(),
            "popularity must be positive and finite"
        );
        self.popularity = popularity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concept_construction() {
        let c = Concept::new(
            ConceptId(0),
            "Kobe Bryant",
            IndicatorVector::from_bits(&[0, 1, 0]),
        )
        .with_popularity(3.0);
        assert_eq!(c.id.index(), 0);
        assert_eq!(c.popularity, 3.0);
        assert!(c.domains.contains(1));
        assert_eq!(c.id.to_string(), "c0");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_popularity_rejected() {
        let _ = Concept::new(ConceptId(0), "x", IndicatorVector::empty(3)).with_popularity(0.0);
    }
}
