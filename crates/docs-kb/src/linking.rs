//! Entity linking: from task text to `(E_t, p_i, h_{i,j})`.
//!
//! This reproduces the role of Wikifier [36, 10] in the paper's pipeline:
//! detect entity mentions in the task description, link each to its top-`c`
//! candidate concepts, and emit a probability distribution per mention. Two
//! signals shape the distribution, mirroring Wikifier's features:
//!
//! * **popularity prior** — "the frequency of the linking": candidates start
//!   with mass proportional to their popularity weight;
//! * **context coherence** — "the semantic meanings in the text": candidates
//!   whose domains overlap the domains suggested by the *other* mentions in
//!   the same task get boosted (so "Michael Jordan" next to "NBA" leans
//!   toward the basketball player).

use crate::{ConceptId, IndicatorVector, KnowledgeBase};
use serde::{Deserialize, Serialize};

/// Configuration of the entity linker.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkerConfig {
    /// Keep at most this many candidate concepts per mention — the paper's
    /// Wikifier deployment keeps the top 20, and Table 3 evaluates the
    /// top-10/top-3 pruning heuristics.
    pub top_c: usize,
    /// Strength of the context-coherence boost; `0.0` disables
    /// disambiguation and yields pure popularity priors.
    pub context_weight: f64,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        LinkerConfig {
            top_c: 20,
            context_weight: 0.0,
        }
    }
}

/// One detected entity `e_i` with its candidate linkings: the distribution
/// `p_i` and the per-candidate indicator vectors `h_{i,j}`.
///
/// This is exactly the per-entity input of Algorithm 1.
#[derive(Debug, Clone)]
pub struct LinkedEntity {
    /// Surface form as it appeared in the text.
    pub mention: String,
    /// Candidate concept ids, most probable first.
    pub candidates: Vec<ConceptId>,
    /// `p_i`: probability that each candidate is the correct linking; sums
    /// to 1 over the retained top-`c` candidates.
    pub probs: Vec<f64>,
    /// `h_{i,j}`: domain indicator of each candidate.
    pub indicators: Vec<IndicatorVector>,
}

impl LinkedEntity {
    /// Number of retained candidates `|p_i|`.
    pub fn num_candidates(&self) -> usize {
        self.probs.len()
    }

    /// Builds a linked entity directly from `(prob, indicator)` pairs —
    /// used by tests and by the synthetic workload generators that bypass
    /// text. Probabilities are normalized defensively.
    pub fn from_parts(mention: impl Into<String>, parts: &[(f64, IndicatorVector)]) -> Self {
        assert!(!parts.is_empty(), "an entity needs at least one candidate");
        let mut probs: Vec<f64> = parts.iter().map(|(p, _)| *p).collect();
        docs_types::prob::normalize_in_place(&mut probs);
        LinkedEntity {
            mention: mention.into(),
            candidates: (0..parts.len()).map(|j| ConceptId(j as u32)).collect(),
            probs,
            indicators: parts.iter().map(|(_, h)| *h).collect(),
        }
    }
}

/// The entity linker over a [`KnowledgeBase`].
#[derive(Debug, Clone)]
pub struct EntityLinker<'kb> {
    kb: &'kb KnowledgeBase,
    config: LinkerConfig,
}

impl<'kb> EntityLinker<'kb> {
    /// Creates a linker with the given configuration.
    pub fn new(kb: &'kb KnowledgeBase, config: LinkerConfig) -> Self {
        assert!(config.top_c >= 1, "top_c must be at least 1");
        EntityLinker { kb, config }
    }

    /// Creates a linker with the paper's defaults (top-20 candidates).
    pub fn with_defaults(kb: &'kb KnowledgeBase) -> Self {
        EntityLinker::new(kb, LinkerConfig::default())
    }

    /// Detects entity mentions and links them: the full Step 1 of Section 3.
    ///
    /// Mention detection is greedy longest-match over the KB alias index:
    /// at each token position the longest alias starting there wins, and
    /// matching resumes after it. Unmatched tokens are skipped — they are
    /// ordinary words, handled by the topic-model baselines instead.
    pub fn link(&self, text: &str) -> Vec<LinkedEntity> {
        let tokens = tokenize(text);
        let mut mentions: Vec<(String, &[ConceptId])> = Vec::new();
        let max_window = self.kb.max_alias_words().max(1);
        let mut i = 0;
        while i < tokens.len() {
            let mut matched = None;
            let upper = (i + max_window).min(tokens.len());
            // Longest match first.
            for end in (i + 1..=upper).rev() {
                let phrase = tokens[i..end].join(" ");
                if let Some(cands) = self.kb.candidates(&phrase) {
                    matched = Some((phrase, cands, end));
                    break;
                }
            }
            match matched {
                Some((phrase, cands, end)) => {
                    mentions.push((phrase, cands));
                    i = end;
                }
                None => i += 1,
            }
        }

        // First pass: popularity priors per mention.
        let mut entities: Vec<LinkedEntity> = mentions
            .into_iter()
            .map(|(mention, cands)| self.prior_distribution(mention, cands))
            .collect();

        // Second pass: context coherence (skipped when disabled or when the
        // task has a single mention — no context to lean on).
        if self.config.context_weight > 0.0 && entities.len() > 1 {
            self.apply_context(&mut entities);
        }

        // Truncate to top-c and renormalize.
        for e in &mut entities {
            truncate_top_c(e, self.config.top_c);
        }
        entities
    }

    fn prior_distribution(&self, mention: String, cands: &[ConceptId]) -> LinkedEntity {
        let mut probs: Vec<f64> = cands
            .iter()
            .map(|&id| self.kb.concept(id).popularity)
            .collect();
        docs_types::prob::normalize_in_place(&mut probs);
        let indicators = cands
            .iter()
            .map(|&id| self.kb.concept(id).domains)
            .collect();
        let mut e = LinkedEntity {
            mention,
            candidates: cands.to_vec(),
            probs,
            indicators,
        };
        sort_by_prob(&mut e);
        e
    }

    /// Boosts candidates whose domains cohere with the other mentions:
    /// candidate `j` of entity `i` is reweighted by
    /// `1 + w · Σ_{i'≠i} Σ_{j'} p_{i',j'} · overlap(h_{i,j}, h_{i',j'})`.
    fn apply_context(&self, entities: &mut [LinkedEntity]) {
        let m = self.kb.num_domains();
        // Domain vote vector per entity: expected indicator under p_i.
        let votes: Vec<Vec<f64>> = entities
            .iter()
            .map(|e| {
                let mut v = vec![0.0; m];
                for (j, h) in e.indicators.iter().enumerate() {
                    let p = e.probs[j];
                    for (k, slot) in v.iter_mut().enumerate() {
                        *slot += p * h.get(k) as f64;
                    }
                }
                v
            })
            .collect();

        let w = self.config.context_weight;
        for (i, e) in entities.iter_mut().enumerate() {
            for (j, h) in e.indicators.iter().enumerate() {
                let mut coherence = 0.0;
                for (i2, vote) in votes.iter().enumerate() {
                    if i2 == i {
                        continue;
                    }
                    for (k, v) in vote.iter().enumerate() {
                        coherence += h.get(k) as f64 * v;
                    }
                }
                e.probs[j] *= 1.0 + w * coherence;
            }
            docs_types::prob::normalize_in_place(&mut e.probs);
            sort_by_prob(e);
        }
    }
}

fn sort_by_prob(e: &mut LinkedEntity) {
    let mut order: Vec<usize> = (0..e.probs.len()).collect();
    order.sort_by(|&a, &b| {
        e.probs[b]
            .partial_cmp(&e.probs[a])
            .expect("probs are finite")
    });
    e.candidates = order.iter().map(|&j| e.candidates[j]).collect();
    e.indicators = order.iter().map(|&j| e.indicators[j]).collect();
    e.probs = order.iter().map(|&j| e.probs[j]).collect();
}

fn truncate_top_c(e: &mut LinkedEntity, c: usize) {
    if e.probs.len() > c {
        e.candidates.truncate(c);
        e.indicators.truncate(c);
        e.probs.truncate(c);
        docs_types::prob::normalize_in_place(&mut e.probs);
    }
}

/// Lower-cases and splits text into alphanumeric word tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|ch: char| !ch.is_alphanumeric() && ch != '\'' && ch != '.')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim_matches('.').to_lowercase())
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::table2_example_kb;

    const TASK_T1: &str = "Does Michael Jordan win more NBA championships than Kobe Bryant?";

    #[test]
    fn tokenize_strips_punctuation() {
        let toks = tokenize("Does Michael Jordan win? Yes, he does.");
        assert_eq!(
            toks,
            vec!["does", "michael", "jordan", "win", "yes", "he", "does"]
        );
    }

    #[test]
    fn detects_table2_entities_in_order() {
        let kb = table2_example_kb();
        let linker = EntityLinker::with_defaults(&kb);
        let entities = linker.link(TASK_T1);
        assert_eq!(entities.len(), 3);
        assert_eq!(entities[0].mention, "michael jordan");
        assert_eq!(entities[1].mention, "nba");
        assert_eq!(entities[2].mention, "kobe bryant");
    }

    #[test]
    fn priors_match_table2() {
        let kb = table2_example_kb();
        let linker = EntityLinker::with_defaults(&kb);
        let entities = linker.link(TASK_T1);
        // p_1 = [0.7, 0.2, 0.1], sorted descending.
        let p1 = &entities[0].probs;
        assert!((p1[0] - 0.7).abs() < 1e-12);
        assert!((p1[1] - 0.2).abs() < 1e-12);
        assert!((p1[2] - 0.1).abs() < 1e-12);
        // p_2 = [0.8, 0.2].
        let p2 = &entities[1].probs;
        assert!((p2[0] - 0.8).abs() < 1e-12);
        assert!((p2[1] - 0.2).abs() < 1e-12);
        // p_3 = [1.0].
        assert_eq!(entities[2].probs, vec![1.0]);
    }

    #[test]
    fn context_boost_favors_coherent_candidate() {
        let kb = table2_example_kb();
        let plain = EntityLinker::with_defaults(&kb);
        let ctx = EntityLinker::new(
            &kb,
            LinkerConfig {
                top_c: 20,
                context_weight: 1.0,
            },
        );
        let without = plain.link(TASK_T1);
        let with = ctx.link(TASK_T1);
        // With NBA and Kobe Bryant as context, the basketball player should
        // gain probability mass relative to the prior-only linking.
        assert!(with[0].probs[0] > without[0].probs[0]);
        // And the distribution stays normalized.
        let sum: f64 = with[0].probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_c_truncation_renormalizes() {
        let kb = table2_example_kb();
        let linker = EntityLinker::new(
            &kb,
            LinkerConfig {
                top_c: 2,
                context_weight: 0.0,
            },
        );
        let entities = linker.link(TASK_T1);
        assert_eq!(entities[0].num_candidates(), 2);
        let sum: f64 = entities[0].probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Top-2 of [0.7, 0.2, 0.1] renormalized: [7/9, 2/9].
        assert!((entities[0].probs[0] - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_text_yields_no_entities() {
        let kb = table2_example_kb();
        let linker = EntityLinker::with_defaults(&kb);
        assert!(linker.link("completely unrelated words here").is_empty());
    }

    #[test]
    fn from_parts_normalizes() {
        let e = LinkedEntity::from_parts(
            "x",
            &[
                (2.0, IndicatorVector::from_bits(&[1, 0])),
                (2.0, IndicatorVector::from_bits(&[0, 1])),
            ],
        );
        assert_eq!(e.probs, vec![0.5, 0.5]);
        assert_eq!(e.num_candidates(), 2);
    }

    #[test]
    fn longest_match_wins() {
        // "kobe bryant" must match as one two-word entity, not fail at
        // "kobe" (which is not an alias on its own).
        let kb = table2_example_kb();
        let linker = EntityLinker::with_defaults(&kb);
        let entities = linker.link("kobe bryant and NBA");
        assert_eq!(entities.len(), 2);
        assert_eq!(entities[0].mention, "kobe bryant");
    }
}
