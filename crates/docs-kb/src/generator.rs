//! Seeded random knowledge-base generation for scale experiments.
//!
//! Table 3 and the DVE benchmarks need tasks with controllable entity counts
//! `|E_t|` and candidate counts `c`; this module produces knowledge bases
//! (and raw entity-linking outputs) with those knobs without hand-curating
//! thousands of concepts.

use crate::{IndicatorVector, KbBuilder, KnowledgeBase, LinkedEntity};
use docs_types::DomainSet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random KB generator.
#[derive(Debug, Clone)]
pub struct KbGeneratorConfig {
    /// Domain set to generate over (defaults to the 26 Yahoo Answers domains).
    pub domains: DomainSet,
    /// Concepts generated per domain.
    pub concepts_per_domain: usize,
    /// Probability that a concept belongs to a second domain as well —
    /// multi-domain concepts like "Michael Jordan (basketball)" ∈
    /// {sports, films}.
    pub multi_domain_prob: f64,
    /// Probability that a concept's alias is shared with a concept from a
    /// *different* domain, creating ambiguity.
    pub ambiguous_alias_prob: f64,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for KbGeneratorConfig {
    fn default() -> Self {
        KbGeneratorConfig {
            domains: DomainSet::yahoo_answers(),
            concepts_per_domain: 200,
            multi_domain_prob: 0.15,
            ambiguous_alias_prob: 0.2,
            seed: 0x0DC5,
        }
    }
}

/// Deterministic random KB generator. See [`KbGeneratorConfig`].
#[derive(Debug)]
pub struct KbGenerator {
    config: KbGeneratorConfig,
}

impl KbGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: KbGeneratorConfig) -> Self {
        assert!(config.concepts_per_domain > 0);
        assert!((0.0..=1.0).contains(&config.multi_domain_prob));
        assert!((0.0..=1.0).contains(&config.ambiguous_alias_prob));
        KbGenerator { config }
    }

    /// Generates the knowledge base.
    pub fn generate(&self) -> KnowledgeBase {
        let cfg = &self.config;
        let m = cfg.domains.len();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut builder: KbBuilder = KnowledgeBase::builder(cfg.domains.clone());

        // Pool of aliases that later concepts may reuse to create ambiguity:
        // (alias text, domain of the first owner).
        let mut reusable: Vec<(String, usize)> = Vec::new();

        for k in 0..m {
            for c in 0..cfg.concepts_per_domain {
                let mut domain_indices = vec![k];
                if rng.gen_bool(cfg.multi_domain_prob) && m > 1 {
                    let mut other = rng.gen_range(0..m - 1);
                    if other >= k {
                        other += 1;
                    }
                    domain_indices.push(other);
                }
                let indicators = IndicatorVector::from_domains(m, &domain_indices);
                let popularity = rng.gen_range(0.1..10.0);
                let name = format!("concept {k} {c}");

                // Decide the alias: either reuse an alias owned by a concept
                // in another domain (ambiguity) or mint a fresh one.
                let alias = if !reusable.is_empty() && rng.gen_bool(cfg.ambiguous_alias_prob) {
                    let pick = rng.gen_range(0..reusable.len());
                    if reusable[pick].1 != k {
                        reusable[pick].0.clone()
                    } else {
                        format!("entity {k} {c}")
                    }
                } else {
                    format!("entity {k} {c}")
                };
                if alias.starts_with("entity") {
                    reusable.push((alias.clone(), k));
                }
                builder.add_concept(name, indicators, popularity, [alias]);
            }
        }
        builder.build()
    }
}

/// Generates raw entity-linking outputs directly — one synthetic task's
/// `(p_i, h_{i,j})` inputs — bypassing text. Used by the DVE benchmarks
/// (Table 3 sweeps `|E_t|` and `c` precisely).
///
/// Each entity gets exactly `num_candidates` candidates with a geometric-ish
/// probability profile (matching the skewed distributions Wikifier emits)
/// and random indicator vectors with `related_domains` set bits.
pub fn synthetic_entities(
    m: usize,
    num_entities: usize,
    num_candidates: usize,
    related_domains: usize,
    seed: u64,
) -> Vec<LinkedEntity> {
    assert!(m >= 1 && num_entities >= 1 && num_candidates >= 1);
    assert!(related_domains <= m);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..num_entities)
        .map(|i| {
            let parts: Vec<(f64, IndicatorVector)> = (0..num_candidates)
                .map(|j| {
                    // Skewed weights: first candidates grab most of the mass.
                    let w = 1.0 / (1.0 + j as f64) + rng.gen_range(0.0..0.05);
                    let mut domains = Vec::with_capacity(related_domains);
                    while domains.len() < related_domains {
                        let k = rng.gen_range(0..m);
                        if !domains.contains(&k) {
                            domains.push(k);
                        }
                    }
                    (w, IndicatorVector::from_domains(m, &domains))
                })
                .collect();
            LinkedEntity::from_parts(format!("e{i}"), &parts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EntityLinker;

    #[test]
    fn generator_is_deterministic() {
        let cfg = KbGeneratorConfig {
            concepts_per_domain: 10,
            ..Default::default()
        };
        let kb1 = KbGenerator::new(cfg.clone()).generate();
        let kb2 = KbGenerator::new(cfg).generate();
        assert_eq!(kb1.num_concepts(), kb2.num_concepts());
        assert_eq!(kb1.num_aliases(), kb2.num_aliases());
        for (a, b) in kb1.concepts().iter().zip(kb2.concepts()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.domains, b.domains);
            assert_eq!(a.popularity, b.popularity);
        }
    }

    #[test]
    fn generator_covers_all_domains() {
        let cfg = KbGeneratorConfig {
            domains: DomainSet::anonymous(6),
            concepts_per_domain: 20,
            ..Default::default()
        };
        let kb = KbGenerator::new(cfg).generate();
        assert_eq!(kb.num_concepts(), 120);
        for k in 0..6 {
            assert!(
                kb.concepts().iter().any(|c| c.domains.contains(k)),
                "domain {k} has no concepts"
            );
        }
    }

    #[test]
    fn generator_produces_ambiguity() {
        let cfg = KbGeneratorConfig {
            domains: DomainSet::anonymous(8),
            concepts_per_domain: 100,
            ambiguous_alias_prob: 0.4,
            ..Default::default()
        };
        let kb = KbGenerator::new(cfg).generate();
        assert!(
            kb.ambiguous_aliases().count() > 0,
            "expected at least one ambiguous alias"
        );
    }

    #[test]
    fn generated_kb_is_linkable() {
        let cfg = KbGeneratorConfig {
            domains: DomainSet::anonymous(4),
            concepts_per_domain: 5,
            ambiguous_alias_prob: 0.0,
            ..Default::default()
        };
        let kb = KbGenerator::new(cfg).generate();
        let linker = EntityLinker::with_defaults(&kb);
        let entities = linker.link("tell me about entity 0 0 and entity 3 4");
        assert_eq!(entities.len(), 2);
    }

    #[test]
    fn synthetic_entities_shape() {
        let es = synthetic_entities(26, 5, 20, 2, 7);
        assert_eq!(es.len(), 5);
        for e in &es {
            assert_eq!(e.num_candidates(), 20);
            let sum: f64 = e.probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for h in &e.indicators {
                assert_eq!(h.count(), 2);
            }
        }
    }

    #[test]
    fn synthetic_entities_deterministic() {
        let a = synthetic_entities(10, 3, 5, 1, 42);
        let b = synthetic_entities(10, 3, 5, 1, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.probs, y.probs);
            assert_eq!(x.indicators, y.indicators);
        }
    }
}
