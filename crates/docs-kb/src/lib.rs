//! Synthetic knowledge base and entity linking — the Freebase + Wikifier
//! substrate of DOCS (Section 3, Step 1).
//!
//! The paper's DVE pipeline needs, for each task:
//!
//! 1. the set of detected entities `E_t` in the task text,
//! 2. for each entity `e_i`, a distribution `p_i` over its top-`c` candidate
//!    concepts (Wikipedia pages in the paper), and
//! 3. for each candidate concept, an indicator vector `h_{i,j}` marking which
//!    domains of `D` the concept belongs to (derived from Freebase).
//!
//! Freebase is gone and Wikifier is a closed web service, so this crate
//! builds the same contract from scratch:
//!
//! * [`KnowledgeBase`] — concepts with domain memberships and aliases,
//!   including deliberately *ambiguous* aliases (one surface form linking to
//!   concepts in different domains, like the paper's "Michael Jordan"),
//! * [`EntityLinker`] — longest-match mention detection plus a light
//!   context-based disambiguation pass producing calibrated top-`c`
//!   distributions,
//! * [`generator`] — a seeded random KB generator for scale experiments.
//!
//! [`LinkedEntity`] is exactly the `(p_i, h_{i,*})` input of Algorithm 1, so
//! `docs-core::dve` consumes this crate's output without adaptation.

mod concept;
pub mod generator;
mod indicator;
mod kb;
mod linking;
mod stats;

pub use concept::{Concept, ConceptId};
pub use generator::{KbGenerator, KbGeneratorConfig};
pub use indicator::IndicatorVector;
pub use kb::{table2_example_kb, KbBuilder, KnowledgeBase};
pub use linking::{EntityLinker, LinkedEntity, LinkerConfig};
pub use stats::{KbIssue, KbStats};
