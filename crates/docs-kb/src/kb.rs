//! The knowledge base: concepts, domain memberships, and the alias index the
//! entity linker searches.

use crate::{Concept, ConceptId, IndicatorVector};
use docs_types::DomainSet;
use std::collections::HashMap;

/// An in-memory knowledge base over a fixed [`DomainSet`].
///
/// Structurally this mirrors what DOCS extracts from Freebase: every concept
/// knows which of the `m` deployment domains it belongs to, and every concept
/// is reachable through one or more *aliases* (surface forms). Ambiguity is
/// first-class: an alias may map to several concepts, each with a popularity
/// prior, reproducing the "Michael Jordan → player / professor / actor"
/// situation that makes domain vector computation non-trivial.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    domain_set: DomainSet,
    concepts: Vec<Concept>,
    /// Lower-cased alias → candidate concept ids.
    alias_index: HashMap<String, Vec<ConceptId>>,
    /// Longest alias length in words, bounding the linker's match window.
    max_alias_words: usize,
}

impl KnowledgeBase {
    /// Starts an empty KB over the given domain set.
    pub fn builder(domain_set: DomainSet) -> KbBuilder {
        KbBuilder {
            kb: KnowledgeBase {
                domain_set,
                concepts: Vec::new(),
                alias_index: HashMap::new(),
                max_alias_words: 0,
            },
        }
    }

    /// The deployment domain set `D`.
    pub fn domain_set(&self) -> &DomainSet {
        &self.domain_set
    }

    /// Number of domains `m`.
    pub fn num_domains(&self) -> usize {
        self.domain_set.len()
    }

    /// Number of concepts stored.
    pub fn num_concepts(&self) -> usize {
        self.concepts.len()
    }

    /// Number of distinct aliases indexed.
    pub fn num_aliases(&self) -> usize {
        self.alias_index.len()
    }

    /// Looks up a concept by id.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// All concepts.
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Candidate concepts for a (lower-cased) alias, or `None` if the surface
    /// form is unknown to the KB.
    pub fn candidates(&self, alias_lower: &str) -> Option<&[ConceptId]> {
        self.alias_index.get(alias_lower).map(|v| v.as_slice())
    }

    /// Longest indexed alias, in whitespace-separated words.
    pub fn max_alias_words(&self) -> usize {
        self.max_alias_words
    }

    /// All indexed aliases (lower-cased surface forms), in arbitrary order.
    pub fn aliases(&self) -> impl Iterator<Item = &str> {
        self.alias_index.keys().map(String::as_str)
    }

    /// All aliases that resolve to more than one concept — the ambiguous
    /// surface forms. Exposed for tests and dataset generators.
    pub fn ambiguous_aliases(&self) -> impl Iterator<Item = (&str, &[ConceptId])> {
        self.alias_index
            .iter()
            .filter(|(_, v)| v.len() > 1)
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

/// Builder used both by the curated dataset KBs and the random generator.
#[derive(Debug)]
pub struct KbBuilder {
    kb: KnowledgeBase,
}

impl KbBuilder {
    /// Adds a concept with its aliases; returns the assigned id.
    ///
    /// Aliases are indexed case-insensitively. The canonical name is *not*
    /// automatically an alias — callers list every surface form explicitly,
    /// which keeps ambiguity under test control.
    pub fn add_concept<I, S>(
        &mut self,
        name: impl Into<String>,
        domains: IndicatorVector,
        popularity: f64,
        aliases: I,
    ) -> ConceptId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        assert_eq!(
            domains.num_domains(),
            self.kb.domain_set.len(),
            "indicator vector length must match the domain set"
        );
        let id = ConceptId(self.kb.concepts.len() as u32);
        self.kb
            .concepts
            .push(Concept::new(id, name, domains).with_popularity(popularity));
        for alias in aliases {
            let alias_lower = alias.as_ref().to_lowercase();
            let words = alias_lower.split_whitespace().count();
            assert!(words > 0, "aliases must be non-empty");
            self.kb.max_alias_words = self.kb.max_alias_words.max(words);
            self.kb.alias_index.entry(alias_lower).or_default().push(id);
        }
        id
    }

    /// Finalizes the KB.
    pub fn build(self) -> KnowledgeBase {
        self.kb
    }
}

/// Builds the 3-domain example KB of Table 2: the three "Michael Jordan"
/// concepts, the two "NBA" concepts, and Kobe Bryant, with popularity priors
/// chosen so the linker reproduces the paper's `p_i` distributions.
pub fn table2_example_kb() -> KnowledgeBase {
    let d = DomainSet::example3();
    let mut b = KnowledgeBase::builder(d);
    // p_1 = [0.7, 0.2, 0.1] over the three Michael Jordans.
    b.add_concept(
        "Michael Jordan (basketball)",
        IndicatorVector::from_bits(&[0, 1, 1]),
        0.7,
        ["Michael Jordan"],
    );
    b.add_concept(
        "Michael I. Jordan (scientist)",
        IndicatorVector::from_bits(&[0, 0, 0]),
        0.2,
        ["Michael Jordan"],
    );
    b.add_concept(
        "Michael B. Jordan (actor)",
        IndicatorVector::from_bits(&[0, 0, 1]),
        0.1,
        ["Michael Jordan"],
    );
    // p_2 = [0.8, 0.2] over the two NBAs.
    b.add_concept(
        "National Basketball Association",
        IndicatorVector::from_bits(&[0, 1, 0]),
        0.8,
        ["NBA"],
    );
    b.add_concept(
        "National Bar Association",
        IndicatorVector::from_bits(&[0, 0, 0]),
        0.2,
        ["NBA"],
    );
    // p_3 = [1.0].
    b.add_concept(
        "Kobe Bryant",
        IndicatorVector::from_bits(&[0, 1, 0]),
        1.0,
        ["Kobe Bryant"],
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_kb_shape() {
        let kb = table2_example_kb();
        assert_eq!(kb.num_domains(), 3);
        assert_eq!(kb.num_concepts(), 6);
        assert_eq!(kb.num_aliases(), 3);
        let mj = kb.candidates("michael jordan").unwrap();
        assert_eq!(mj.len(), 3);
        let nba = kb.candidates("nba").unwrap();
        assert_eq!(nba.len(), 2);
        assert_eq!(kb.candidates("kobe bryant").unwrap().len(), 1);
        assert!(kb.candidates("lebron james").is_none());
        assert_eq!(kb.max_alias_words(), 2);
    }

    #[test]
    fn ambiguous_aliases_enumerated() {
        let kb = table2_example_kb();
        let amb: Vec<&str> = kb.ambiguous_aliases().map(|(a, _)| a).collect();
        assert_eq!(amb.len(), 2);
        assert!(amb.contains(&"michael jordan"));
        assert!(amb.contains(&"nba"));
    }

    #[test]
    #[should_panic(expected = "must match the domain set")]
    fn mismatched_indicator_rejected() {
        let mut b = KnowledgeBase::builder(DomainSet::example3());
        b.add_concept("x", IndicatorVector::empty(5), 1.0, ["x"]);
    }

    #[test]
    fn alias_lookup_is_case_insensitive() {
        let kb = table2_example_kb();
        // The index stores lower-case keys; the linker lower-cases queries.
        assert!(kb.candidates("NBA").is_none());
        assert!(kb.candidates("nba").is_some());
    }
}
