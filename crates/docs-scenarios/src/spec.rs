//! The declarative scenario manifest.
//!
//! A [`ScenarioSpec`] names everything a run needs — dataset, worker
//! population, arrival pattern, service topology, collection budget, and
//! one seed — and nothing else. Two runs of the same spec produce
//! byte-identical answer logs and truths (pinned by the `scenarios`
//! proptest), so a spec's JSON form is a complete, shareable repro recipe
//! for any quality number the harness reports.

use docs_crowd::{AdversarialConfig, AnswerModel, ArrivalProcess, PopulationConfig};
use docs_datasets::{four_domain, item, sfv, yahoo_qa, Dataset};
use serde::{Deserialize, Serialize};

/// Which regenerated evaluation dataset the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetRef {
    /// 360 product-comparison tasks, 4 domains × 90.
    Item,
    /// 400 tasks with cross-domain template sharing.
    FourDomain,
    /// 1000 heterogeneous search-style questions.
    YahooQa,
    /// 328 person-attribute tasks with 4 choices each.
    Sfv,
}

impl DatasetRef {
    /// Builds the dataset (ground truth and true domains included).
    pub fn build(self) -> Dataset {
        match self {
            DatasetRef::Item => item(),
            DatasetRef::FourDomain => four_domain(),
            DatasetRef::YahooQa => yahoo_qa(),
            DatasetRef::Sfv => sfv(),
        }
    }

    /// Key-friendly name used in `BENCH_quality.json` metric keys.
    pub fn key(self) -> &'static str {
        match self {
            DatasetRef::Item => "item",
            DatasetRef::FourDomain => "four_domain",
            DatasetRef::YahooQa => "yahoo_qa",
            DatasetRef::Sfv => "sfv",
        }
    }
}

/// The behavioral mix of the worker population — one named class per
/// scenario so quality deltas attribute cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PopulationClass {
    /// Everyone honest under the paper's answer model.
    Honest,
    /// `fraction` uniform spammers among honest workers.
    Spammers {
        /// Fraction of the population spamming.
        fraction: f64,
    },
    /// `fraction` sleeper spammers gaming the golden gate.
    Sleepers {
        /// Fraction of the population sleeping.
        fraction: f64,
        /// Accuracy they fake on golden tasks.
        golden_quality: f64,
    },
    /// `fraction` colluders split across `cliques` wrong-consensus cliques.
    Colluders {
        /// Fraction of the population colluding.
        fraction: f64,
        /// Number of independent cliques.
        cliques: u32,
        /// Probability of giving the clique answer.
        collusion: f64,
    },
    /// `fraction` workers whose quality drifts with campaign progress.
    Drifters {
        /// Fraction of the population drifting.
        fraction: f64,
        /// Quality slope over progress (negative = degrading).
        slope: f64,
    },
}

impl PopulationClass {
    /// Key-friendly class name.
    pub fn key(self) -> &'static str {
        match self {
            PopulationClass::Honest => "honest",
            PopulationClass::Spammers { .. } => "spammers",
            PopulationClass::Sleepers { .. } => "sleepers",
            PopulationClass::Colluders { .. } => "colluders",
            PopulationClass::Drifters { .. } => "drifters",
        }
    }

    /// True when no adversarial class is present.
    pub fn is_honest(self) -> bool {
        matches!(self, PopulationClass::Honest)
    }
}

/// Worker population of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Number of workers.
    pub size: usize,
    /// Behavioral mix.
    pub class: PopulationClass,
}

/// Arrival pattern — serde mirror of [`ArrivalProcess`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Uniform arrivals.
    Uniform,
    /// Zipf-skewed arrivals.
    Zipf {
        /// Skew exponent.
        exponent: f64,
    },
    /// Flash-crowd cohorts.
    Bursty {
        /// Hot-cohort size.
        window: usize,
        /// Arrivals per cohort.
        hold: usize,
    },
}

impl ArrivalSpec {
    /// The docs-crowd arrival process this spec resolves to.
    pub fn process(self) -> ArrivalProcess {
        match self {
            ArrivalSpec::Uniform => ArrivalProcess::Uniform,
            ArrivalSpec::Zipf { exponent } => ArrivalProcess::Zipf { exponent },
            ArrivalSpec::Bursty { window, hold } => ArrivalProcess::Bursty { window, hold },
        }
    }
}

/// Service topology the scenario drives through. Quality is invariant
/// across topologies (the same deterministic request stream reaches the
/// same engine); the spec still names one so every serving stack is
/// exercised end-to-end by the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceSpec {
    /// Plain in-memory shard pool.
    InMemory {
        /// Shard threads.
        shards: usize,
    },
    /// Durable pool (WAL + snapshots in a scratch directory).
    Durable {
        /// Shard threads.
        shards: usize,
    },
    /// Durable primary shipping its WAL to one live read replica.
    Replicated {
        /// Shard threads on the primary.
        shards: usize,
    },
    /// Two-primary cluster; the campaign lives on node 0 and the drive
    /// goes through the [`docs_service::ClusterRouter`].
    Clustered {
        /// Shard threads per node.
        shards: usize,
    },
}

impl ServiceSpec {
    /// Shard threads on the (first) primary.
    pub fn shards(self) -> usize {
        match self {
            ServiceSpec::InMemory { shards }
            | ServiceSpec::Durable { shards }
            | ServiceSpec::Replicated { shards }
            | ServiceSpec::Clustered { shards } => shards,
        }
    }
}

/// One named, seeded, byte-reproducible scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name; also the metric-key prefix in `BENCH_quality.json`.
    pub name: String,
    /// Dataset under inference.
    pub dataset: DatasetRef,
    /// Worker population.
    pub population: PopulationSpec,
    /// Arrival pattern.
    pub arrivals: ArrivalSpec,
    /// Service topology.
    pub service: ServiceSpec,
    /// Collection budget: answers per task.
    pub answers_per_task: usize,
    /// Tasks per HIT.
    pub k_per_hit: usize,
    /// Golden tasks selected at publish.
    pub num_golden: usize,
    /// Full-inference period.
    pub z: usize,
    /// Task-state shards inside the engine (walk-order knob; truths are
    /// byte-identical for every value).
    pub task_shards: usize,
    /// Optional truncation of the dataset to its first `n` tasks — smoke
    /// and property tests shrink scenarios without changing their shape.
    pub task_limit: Option<usize>,
    /// The run seed: arrivals and simulated answers both derive from it.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The adversarial population this spec resolves to.
    pub fn population_config(&self, num_domains: usize) -> AdversarialConfig {
        let mut cfg = AdversarialConfig {
            base: PopulationConfig {
                m: num_domains,
                size: self.population.size,
                // Class fractions below describe *behavior*. The quality
                // vectors come from the dataset's focus-domain crowd
                // (`Dataset::worker_qualities`, seeded below); the runner
                // passes them through `AdversarialPopulation::with_base`,
                // so this base config contributes only size and seed.
                seed: self.seed ^ 0x00F0_0D5E,
                ..Default::default()
            },
            honest_model: AnswerModel::DomainUniform,
            ..Default::default()
        };
        match self.population.class {
            PopulationClass::Honest => {}
            PopulationClass::Spammers { fraction } => cfg.spammer_fraction = fraction,
            PopulationClass::Sleepers {
                fraction,
                golden_quality,
            } => {
                cfg.sleeper_fraction = fraction;
                cfg.sleeper_golden_quality = golden_quality;
            }
            PopulationClass::Colluders {
                fraction,
                cliques,
                collusion,
            } => {
                cfg.colluder_fraction = fraction;
                cfg.colluder_cliques = cliques;
                cfg.collusion = collusion;
            }
            PopulationClass::Drifters { fraction, slope } => {
                cfg.drifter_fraction = fraction;
                cfg.drift_slope = slope;
            }
        }
        cfg
    }

    /// Serializes the manifest (sorted-field JSON via serde).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("scenario specs serialize")
    }

    /// Parses a manifest back.
    pub fn from_json(s: &str) -> Result<ScenarioSpec, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Returns the spec truncated to at most `tasks` tasks with a reduced
    /// budget — the shape-preserving shrink smoke tests use.
    pub fn shrunk(&self, tasks: usize, answers_per_task: usize) -> ScenarioSpec {
        ScenarioSpec {
            task_limit: Some(tasks),
            answers_per_task,
            ..self.clone()
        }
    }
}

fn base_spec(name: &str, dataset: DatasetRef, class: PopulationClass) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        dataset,
        population: PopulationSpec { size: 40, class },
        arrivals: ArrivalSpec::Uniform,
        service: ServiceSpec::InMemory { shards: 2 },
        answers_per_task: 10,
        k_per_hit: 3,
        num_golden: 20,
        z: 100,
        task_shards: 1,
        task_limit: None,
        seed: 0x5CEA_0001,
    }
}

/// The named scenario registry — every spec the quality bench, the CI
/// smoke, and the examples draw from. Names are stable: they are the
/// metric-key prefixes of `BENCH_quality.json`.
pub fn registry() -> Vec<ScenarioSpec> {
    vec![
        // Honest runs on every dataset class the paper evaluates.
        base_spec("item_honest", DatasetRef::Item, PopulationClass::Honest),
        base_spec(
            "four_domain_honest",
            DatasetRef::FourDomain,
            PopulationClass::Honest,
        ),
        ScenarioSpec {
            // Bursty arrivals + durable topology on the honest population:
            // quality must not care how workers arrive or where events go.
            arrivals: ArrivalSpec::Bursty {
                window: 12,
                hold: 30,
            },
            service: ServiceSpec::Durable { shards: 2 },
            ..base_spec(
                "sfv_honest_bursty",
                DatasetRef::Sfv,
                PopulationClass::Honest,
            )
        },
        // Adversarial classes on the dataset with the hardest domain
        // structure (cross-domain template sharing).
        ScenarioSpec {
            service: ServiceSpec::Replicated { shards: 2 },
            ..base_spec(
                "four_domain_spammers",
                DatasetRef::FourDomain,
                PopulationClass::Spammers { fraction: 0.3 },
            )
        },
        base_spec(
            "four_domain_sleepers",
            DatasetRef::FourDomain,
            PopulationClass::Sleepers {
                fraction: 0.25,
                golden_quality: 0.95,
            },
        ),
        ScenarioSpec {
            service: ServiceSpec::Clustered { shards: 2 },
            ..base_spec(
                "four_domain_colluders",
                DatasetRef::FourDomain,
                PopulationClass::Colluders {
                    fraction: 0.25,
                    cliques: 2,
                    collusion: 0.85,
                },
            )
        },
        base_spec(
            "four_domain_drift",
            DatasetRef::FourDomain,
            PopulationClass::Drifters {
                fraction: 0.4,
                slope: -0.5,
            },
        ),
        // Sleepers against the large heterogeneous dataset: the headline
        // golden-calibration metric.
        base_spec(
            "yahoo_qa_sleepers",
            DatasetRef::YahooQa,
            PopulationClass::Sleepers {
                fraction: 0.25,
                golden_quality: 0.95,
            },
        ),
    ]
}

/// Looks a scenario up by name.
pub fn named(name: &str) -> Option<ScenarioSpec> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_cover_the_classes() {
        let specs = registry();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate scenario names");
        for class in ["honest", "spammers", "sleepers", "colluders", "drifters"] {
            assert!(
                specs.iter().any(|s| s.population.class.key() == class),
                "registry misses class {class}"
            );
        }
        // Every topology is exercised somewhere.
        assert!(specs
            .iter()
            .any(|s| matches!(s.service, ServiceSpec::Durable { .. })));
        assert!(specs
            .iter()
            .any(|s| matches!(s.service, ServiceSpec::Replicated { .. })));
        assert!(specs
            .iter()
            .any(|s| matches!(s.service, ServiceSpec::Clustered { .. })));
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        for spec in registry() {
            let json = spec.to_json();
            let back = ScenarioSpec::from_json(&json).expect("parse");
            assert_eq!(spec, back, "manifest not stable: {json}");
            // Byte-stable serialization: the manifest is the repro recipe.
            assert_eq!(json, back.to_json());
        }
    }

    #[test]
    fn named_lookup_finds_every_registry_entry() {
        for spec in registry() {
            assert_eq!(named(&spec.name), Some(spec));
        }
        assert_eq!(named("no_such_scenario"), None);
    }
}
