//! Declarative scenario harness: dataset × worker population × arrival
//! pattern × service topology, one seeded manifest per run, scored for
//! inference **quality** next to throughput.
//!
//! Every bench before this crate measured *speed* on one honest synthetic
//! workload. The paper's actual claim is statistical — per-domain truth
//! inference beats majority vote, and the golden gate calibrates worker
//! quality — and that claim can silently die under a perf refactor or an
//! adversarial crowd. A [`ScenarioSpec`] pins one end-to-end experiment:
//!
//! * a regenerated evaluation dataset ([`DatasetRef`]),
//! * a worker population with a behavioral mix ([`PopulationClass`]:
//!   honest, uniform spammers, golden-gaming sleepers, colluding cliques,
//!   quality drifters),
//! * an arrival pattern ([`ArrivalSpec`], including flash-crowd bursts),
//! * a service topology ([`ServiceSpec`]: in-memory, durable, replicated,
//!   or a two-primary cluster) — the run goes through the *real*
//!   `docs-service` request path, not a simulation shortcut,
//! * budget knobs and a single seed.
//!
//! [`run_scenario`] executes the manifest deterministically (same spec →
//! byte-identical answer log and truths, across shard counts) and
//! [`score`] reduces the run to a [`QualityReport`]: DOCS accuracy vs the
//! majority-vote baseline on the same answers, golden-calibration error,
//! per-domain accuracy, budget per correct label, and throughput. The
//! `quality` bench merges these into `BENCH_quality.json`, which
//! `scripts/bench_gate.py` gates like any perf number — a PR that makes
//! the service faster but dumber now fails CI.

mod run;
mod score;
mod spec;

pub use run::{run_scenario, DriveMirror, ScenarioOutcome};
pub use score::{bench_metrics, render_table, score, QualityReport};
pub use spec::{
    named, registry, ArrivalSpec, DatasetRef, PopulationClass, PopulationSpec, ScenarioSpec,
    ServiceSpec,
};
