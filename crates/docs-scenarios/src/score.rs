//! Quality scoring: the numbers `BENCH_quality.json` merges.
//!
//! Everything here is computed from the run's *client-side* artifacts —
//! the mirrored answer log, the golden records, and the service's final
//! report — so the scorer cannot accidentally depend on engine internals
//! that a refactor might move.

use crate::run::ScenarioOutcome;
use docs_baselines::ti::{MajorityVote, TruthMethod};
use docs_crowd::try_accuracy_of;
use std::collections::HashMap;

/// The quality card of one scenario run.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Scenario name (metric-key prefix).
    pub scenario: String,
    /// DOCS accuracy against ground truth.
    pub docs_accuracy: f64,
    /// Majority vote over the same mirrored answers.
    pub majority_accuracy: f64,
    /// `docs_accuracy − majority_accuracy`: the paper's core claim, as a
    /// gateable number.
    pub accuracy_delta_vs_majority: f64,
    /// Mean over workers of |golden-task accuracy − ordinary accuracy| —
    /// how much the golden gate's first impression lies about real
    /// behavior. Sleeper spammers are built to maximize it.
    pub golden_calibration_err: f64,
    /// DOCS accuracy per focus domain `(name, accuracy)`; domains without
    /// graded tasks in the run are omitted.
    pub per_domain_accuracy: Vec<(String, f64)>,
    /// Ordinary answers spent per correctly inferred label.
    pub budget_per_correct: f64,
    /// Ordinary answers the service accepted.
    pub answers_collected: usize,
    /// Drive throughput over the full request path.
    pub answers_per_s: f64,
}

/// Scores a finished run.
pub fn score(outcome: &ScenarioOutcome) -> QualityReport {
    let tasks = &outcome.tasks;
    let docs_accuracy =
        try_accuracy_of(&outcome.report.truths, tasks).expect("datasets carry ground truth");
    let majority_truths = MajorityVote.infer(tasks, &outcome.mirror.log);
    let majority_accuracy =
        try_accuracy_of(&majority_truths, tasks).expect("datasets carry ground truth");

    // Golden calibration: per worker, golden accuracy vs ordinary
    // accuracy, both against ground truth, workers with signal on both
    // sides only (≥1 golden and ≥4 ordinary answers).
    let mut golden_stats: HashMap<docs_types::WorkerId, (usize, usize)> = HashMap::new();
    for &(w, t, c) in &outcome.mirror.golden {
        let e = golden_stats.entry(w).or_insert((0, 0));
        e.1 += 1;
        if tasks[t.index()].ground_truth == Some(c) {
            e.0 += 1;
        }
    }
    let mut normal_stats: HashMap<docs_types::WorkerId, (usize, usize)> = HashMap::new();
    for a in &outcome.mirror.flat {
        let e = normal_stats.entry(a.worker).or_insert((0, 0));
        e.1 += 1;
        if tasks[a.task.index()].ground_truth == Some(a.choice) {
            e.0 += 1;
        }
    }
    let mut err_sum = 0.0;
    let mut err_n = 0usize;
    // Sorted worker order: this is a float accumulation, and the metric
    // must be byte-stable run to run (the gate treats any change as real).
    let mut calibrated: Vec<_> = golden_stats.iter().collect();
    calibrated.sort_unstable_by_key(|(w, _)| **w);
    for (w, &(g_ok, g_all)) in calibrated {
        if let Some(&(n_ok, n_all)) = normal_stats.get(w) {
            if g_all >= 1 && n_all >= 4 {
                let g_acc = g_ok as f64 / g_all as f64;
                let n_acc = n_ok as f64 / n_all as f64;
                err_sum += (g_acc - n_acc).abs();
                err_n += 1;
            }
        }
    }
    let golden_calibration_err = if err_n == 0 {
        0.0
    } else {
        err_sum / err_n as f64
    };

    // Per-domain accuracy over the dataset's focus domains.
    let mut per_domain_accuracy = Vec::new();
    for (&d, &name) in outcome.focus_domains.iter().zip(&outcome.focus_names) {
        let mut correct = 0usize;
        let mut graded = 0usize;
        for (task, &truth) in tasks.iter().zip(&outcome.report.truths) {
            if task.true_domain != Some(d) {
                continue;
            }
            if let Some(gt) = task.ground_truth {
                graded += 1;
                if gt == truth {
                    correct += 1;
                }
            }
        }
        if graded > 0 {
            per_domain_accuracy.push((name.to_string(), correct as f64 / graded as f64));
        }
    }

    let graded = tasks.iter().filter(|t| t.ground_truth.is_some()).count();
    let correct_labels = (docs_accuracy * graded as f64).round().max(1.0);
    let budget_per_correct = outcome.mirror.answers_collected as f64 / correct_labels;
    let secs = outcome.wall.as_secs_f64().max(1e-9);

    QualityReport {
        scenario: outcome.spec.name.clone(),
        docs_accuracy,
        majority_accuracy,
        accuracy_delta_vs_majority: docs_accuracy - majority_accuracy,
        golden_calibration_err,
        per_domain_accuracy,
        budget_per_correct,
        answers_collected: outcome.mirror.answers_collected,
        answers_per_s: outcome.mirror.answers_collected as f64 / secs,
    }
}

/// The `BENCH_quality.json` metrics a report contributes. `throughput`
/// additionally emits `answers_per_s` (benches want it; smoke runs and
/// tests skip it to keep gates timing-free).
pub fn bench_metrics(q: &QualityReport, throughput: bool) -> Vec<(String, f64)> {
    let mut out = vec![
        (format!("{}_accuracy", q.scenario), q.docs_accuracy),
        (
            format!("{}_accuracy_delta_vs_majority", q.scenario),
            q.accuracy_delta_vs_majority,
        ),
        (
            format!("{}_golden_calibration_err", q.scenario),
            q.golden_calibration_err,
        ),
        (
            format!("{}_budget_per_correct", q.scenario),
            q.budget_per_correct,
        ),
    ];
    if throughput {
        out.push((format!("{}_answers_per_s", q.scenario), q.answers_per_s));
    }
    out
}

/// Renders the human-readable quality table (examples and bench logs).
pub fn render_table(reports: &[QualityReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
        "scenario", "docs", "majority", "delta", "calib", "ans/label"
    ));
    for q in reports {
        out.push_str(&format!(
            "{:<24} {:>8.4} {:>8.4} {:>+8.4} {:>8.4} {:>10.2}\n",
            q.scenario,
            q.docs_accuracy,
            q.majority_accuracy,
            q.accuracy_delta_vs_majority,
            q.golden_calibration_err,
            q.budget_per_correct,
        ));
    }
    out
}
