//! Executes a [`ScenarioSpec`] end-to-end through the real service stack.
//!
//! The drive is **deterministic by construction**: one client thread, one
//! seeded rng, blocking round-trips. A campaign lives on exactly one shard
//! and the shard serves one client's operations in submission order, so the
//! request stream — and therefore every pick, every answer, and the final
//! truths — is byte-identical no matter how many shards or task shards the
//! topology runs (the `scenarios` proptest pins this across the
//! `shards × task_shards` matrix). Every accepted answer is mirrored
//! client-side from the submission acks ([`BatchOutcome`] names rejected
//! positions), which is what the scorer feeds to the majority-vote baseline
//! and the calibration metric — no engine internals involved.

use crate::spec::{ScenarioSpec, ServiceSpec};
use docs_crowd::{AdversarialPopulation, AnswerContext, ArrivalSampler, WorkerPopulation};
use docs_replication::{bootstrap_frames, replication_channel, Replica, ReplicationHub};
use docs_service::{
    AdaptiveCommit, ClusterNode, ClusterRouter, DocsService, DriveTarget, DurabilityConfig,
    ServiceConfig,
};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, RequesterReport};
use docs_types::{
    Answer, AnswerLog, CampaignId, ChoiceIndex, ClusterMap, NodeId, Task, TaskId, WorkerId,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Client-side mirror of everything the service acknowledged.
#[derive(Debug, Clone)]
pub struct DriveMirror {
    /// Accepted ordinary answers, indexed per task.
    pub log: AnswerLog,
    /// The same answers in submission order (byte-determinism witness).
    pub flat: Vec<Answer>,
    /// Golden-gate answers in submission order.
    pub golden: Vec<(WorkerId, TaskId, ChoiceIndex)>,
    /// Ordinary answers the service accepted.
    pub answers_collected: usize,
    /// Ordinary answers the service rejected (late budget races etc.).
    pub answers_rejected: usize,
}

/// Everything a finished scenario run exposes to scoring.
pub struct ScenarioOutcome {
    /// The manifest that produced this run.
    pub spec: ScenarioSpec,
    /// Published tasks (ground truth and true domains included).
    pub tasks: Vec<Task>,
    /// Focus domains of the dataset (per-domain accuracy breakdown).
    pub focus_domains: Vec<usize>,
    /// Display names of the focus domains.
    pub focus_names: Vec<&'static str>,
    /// The service's final requester report (full inference).
    pub report: RequesterReport,
    /// Client-side mirror of the acknowledged traffic.
    pub mirror: DriveMirror,
    /// Wall-clock time of the drive (excludes dataset build and spawn).
    pub wall: Duration,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("docs-scenario-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(shards: usize, dir: &Path) -> ServiceConfig {
    ServiceConfig {
        shards,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            default_flush: FlushPolicy::EveryEvent,
            snapshot_every: 256,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
}

/// Runs the spec and returns the scored artifacts.
///
/// # Panics
/// Panics on any service rejection other than a per-answer budget race —
/// a scenario run is a correctness harness, not a fault drill.
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioOutcome {
    let mut dataset = spec.dataset.build();
    if let Some(limit) = spec.task_limit {
        dataset.tasks.truncate(limit);
    }
    let num_domains = dataset.domain_set.len();
    let tasks = dataset.tasks.clone();
    // Quality comes from the dataset's focus-domain crowd (experts
    // concentrated where the tasks are — the Figure 6(a) shape the figure
    // benches validate DOCS ≥ MV on); behavior comes from the spec's class.
    let cfg = spec.population_config(num_domains);
    let base = WorkerPopulation::from_qualities(
        dataset.worker_qualities(spec.population.size, cfg.base.seed),
    );
    let population = AdversarialPopulation::with_base(base, &cfg);

    let docs_config = |durable: bool| DocsConfig {
        num_golden: spec.num_golden.min(tasks.len().saturating_sub(1)).max(1),
        k_per_hit: spec.k_per_hit,
        answers_per_task: spec.answers_per_task,
        z: spec.z,
        task_shards: spec.task_shards,
        durable_flush: durable.then_some(FlushPolicy::EveryEvent),
        ..Default::default()
    };
    let publish = |durable: bool| {
        Docs::publish(&dataset.kb, tasks.clone(), docs_config(durable)).expect("publish scenario")
    };
    let budget = spec.answers_per_task * tasks.len();

    let (report, mirror, wall) = match spec.service {
        ServiceSpec::InMemory { shards } => {
            let (service, handle) = DocsService::spawn_sharded(
                publish(false),
                ServiceConfig {
                    shards,
                    ..Default::default()
                },
            );
            let campaign = handle.default_campaign();
            let started = Instant::now();
            let mirror = drive(&handle, campaign, &tasks, &population, spec, budget);
            let report = handle.finish_in(campaign).expect("finish");
            let wall = started.elapsed();
            drop(handle);
            service.join_all();
            (report, mirror, wall)
        }
        ServiceSpec::Durable { shards } => {
            let dir = scratch_dir(&spec.name);
            let (service, handle) =
                DocsService::spawn_sharded(publish(true), durable_config(shards, &dir));
            let campaign = handle.default_campaign();
            let started = Instant::now();
            let mirror = drive(&handle, campaign, &tasks, &population, spec, budget);
            let report = handle.finish_in(campaign).expect("finish");
            let wall = started.elapsed();
            drop(handle);
            service.join_all();
            let _ = std::fs::remove_dir_all(&dir);
            (report, mirror, wall)
        }
        ServiceSpec::Replicated { shards } => {
            let dir = scratch_dir(&spec.name);
            let (sink, feed) = replication_channel();
            let (service, handle) = DocsService::spawn_sharded(
                publish(true),
                durable_config(shards, &dir).with_replication(sink),
            );
            let campaign = handle.default_campaign();
            let hub = ReplicationHub::spawn(feed);
            let link = hub.subscribe("scenario-replica");
            let bootstrap = bootstrap_frames(&dir).expect("bootstrap scan");
            let replica = Replica::spawn(ServiceConfig::follower(shards), link, bootstrap)
                .expect("spawn replica");

            let started = Instant::now();
            let mirror = drive(&handle, campaign, &tasks, &population, spec, budget);
            let report = handle.finish_in(campaign).expect("finish");
            let wall = started.elapsed();

            // The replica must tail the whole run: wait for zero lag, then
            // require its locally-served truths to match the primary's.
            let deadline = Instant::now() + Duration::from_secs(30);
            while hub.lag().iter().any(|f| f.lag_events > 0) {
                assert!(
                    replica.error().is_none(),
                    "replica diverged: {:?}",
                    replica.error()
                );
                assert!(Instant::now() < deadline, "replica never caught up");
                std::thread::sleep(Duration::from_millis(1));
            }
            let replica_view = replica
                .handle()
                .peek_report_in(campaign)
                .expect("replica read");
            assert_eq!(
                replica_view.truths, report.truths,
                "replica-served truths diverged from the primary"
            );

            drop(handle);
            service.join_all();
            hub.join();
            let (replica_service, replica_handle) = replica.detach();
            drop(replica_handle);
            replica_service.join_all();
            let _ = std::fs::remove_dir_all(&dir);
            (report, mirror, wall)
        }
        ServiceSpec::Clustered { shards } => {
            let (service0, handle0) = DocsService::spawn_sharded(
                publish(false),
                ServiceConfig {
                    shards,
                    ..Default::default()
                }
                .with_node(NodeId(0)),
            );
            let campaign = handle0.default_campaign();
            let (service1, handle1) = DocsService::spawn_empty(
                ServiceConfig {
                    shards,
                    ..Default::default()
                }
                .with_node(NodeId(1)),
            )
            .expect("spawn node 1");
            let router = ClusterRouter::new(
                vec![
                    ClusterNode {
                        id: NodeId(0),
                        primary: handle0.clone(),
                        replicas: vec![],
                    },
                    ClusterNode {
                        id: NodeId(1),
                        primary: handle1.clone(),
                        replicas: vec![],
                    },
                ],
                ClusterMap::new(NodeId(0)),
            );
            let started = Instant::now();
            let mirror = drive(&router, campaign, &tasks, &population, spec, budget);
            let report = router.finish_in(campaign).expect("finish");
            let wall = started.elapsed();
            drop(router);
            drop(handle0);
            service0.join_all();
            drop(handle1);
            service1.join_all();
            (report, mirror, wall)
        }
    };

    ScenarioOutcome {
        spec: spec.clone(),
        tasks,
        focus_domains: dataset.focus_domains.clone(),
        focus_names: dataset.focus_names.clone(),
        report,
        mirror,
        wall,
    }
}

/// The deterministic single-client drive loop shared by every topology.
fn drive<T: DriveTarget>(
    target: &T,
    campaign: CampaignId,
    tasks: &[Task],
    population: &AdversarialPopulation,
    spec: &ScenarioSpec,
    budget: usize,
) -> DriveMirror {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut sampler = ArrivalSampler::new(spec.arrivals.process(), population.len());
    let mut mirror = DriveMirror {
        log: AnswerLog::new(tasks.len()),
        flat: Vec::new(),
        golden: Vec::new(),
        answers_collected: 0,
        answers_rejected: 0,
    };
    // Bounded so a stalled campaign cannot loop forever; generous enough
    // that a healthy run always exhausts its budget first.
    let max_arrivals = (budget / spec.k_per_hit.max(1) + 1) * 16 + population.len() * 8;
    let mut consecutive_done = 0usize;
    let mut arrivals = 0usize;
    while mirror.answers_collected < budget
        && consecutive_done < population.len() * 2
        && arrivals < max_arrivals
    {
        arrivals += 1;
        let w = sampler.next(&mut rng);
        let progress = mirror.answers_collected as f64 / budget as f64;
        let work = target
            .request_tasks_ticket_in(campaign, w)
            .expect("request submit")
            .wait()
            .expect("request tasks");
        match work {
            docs_system::WorkRequest::Golden(golden_ids) => {
                consecutive_done = 0;
                let ctx = AnswerContext {
                    is_golden: true,
                    progress,
                };
                let answers: Vec<(TaskId, ChoiceIndex)> = golden_ids
                    .iter()
                    .map(|&g| (g, population.answer(w, &tasks[g.index()], ctx, &mut rng)))
                    .collect();
                for &(g, c) in &answers {
                    mirror.golden.push((w, g, c));
                }
                target
                    .submit_golden_ticket_in(campaign, w, answers)
                    .expect("golden submit")
                    .wait()
                    .expect("golden ack");
            }
            docs_system::WorkRequest::Tasks(assigned) => {
                consecutive_done = 0;
                let ctx = AnswerContext {
                    is_golden: false,
                    progress,
                };
                let batch: Vec<Answer> = assigned
                    .iter()
                    .map(|&t| {
                        Answer::new(w, t, population.answer(w, &tasks[t.index()], ctx, &mut rng))
                    })
                    .collect();
                let outcome = target
                    .submit_answer_batch_ticket_in(campaign, batch.clone())
                    .expect("batch submit")
                    .wait()
                    .expect("batch ack");
                let rejected: Vec<usize> = outcome.rejected.iter().map(|&(i, _)| i).collect();
                for (i, answer) in batch.into_iter().enumerate() {
                    if rejected.contains(&i) {
                        mirror.answers_rejected += 1;
                        continue;
                    }
                    mirror.log.record(answer).expect("mirror record");
                    mirror.flat.push(answer);
                    mirror.answers_collected += 1;
                }
            }
            docs_system::WorkRequest::Done => {
                consecutive_done += 1;
            }
        }
    }
    mirror
}
