//! The end-to-end DOCS system — the architecture of Figure 1.
//!
//! A requester publishes tasks with text descriptions; [`Docs`] then:
//!
//! 1. runs **DVE** against the knowledge base to obtain each task's domain
//!    vector (Section 3),
//! 2. selects **golden tasks** to profile new workers (Section 5.2),
//! 3. serves the platform loop: on *answer submission* it runs incremental
//!    **TI** with periodic full re-inference (Section 4), on *task request*
//!    it runs **OTA** with the benefit function (Section 5.1),
//! 4. persists worker statistics and task state in the parameter database
//!    (`docs-storage`), merging a returning worker's history by Theorem 1,
//! 5. returns the inferred truths to the requester when the budget is
//!    consumed.
//!
//! [`run_campaign`] additionally wires a whole simulated AMT campaign
//! (`docs-crowd`) through the system for the examples and experiments.

mod campaign;
mod config;
mod ownership;
mod system;
mod watermark;

pub use campaign::{run_campaign, CampaignRegistry, CampaignReport, ReplayStats};
pub use config::DocsConfig;
pub use ownership::{MutationAdmission, OwnershipTable};
pub use system::{
    BatchSubmitReport, CampaignSnapshot, CampaignStatus, Docs, RequesterReport, WorkRequest,
};
pub use watermark::{ReplicaWatermarks, WatermarkAdmission};
