//! The [`Docs`] system object: requester API + platform request handlers.
//!
//! Since the durable-runtime refactor, every state change flows through the
//! deterministic [`Docs::apply`] transition over [`CampaignEvent`]s: the
//! public command methods ([`Docs::submit_answer`], [`Docs::submit_golden`],
//! [`Docs::finish`]) are thin wrappers that render their input into an
//! event and apply it. A campaign is therefore fully described by its
//! initial [`CampaignSnapshot`] plus the ordered event sequence — which is
//! exactly what the service's write-ahead log records, and what
//! [`Docs::restore`] + replay rebuild after a crash.

use crate::DocsConfig;
use docs_core::dve;
use docs_core::golden::select_golden_tasks;
use docs_core::ota::{Assigner, AssignerConfig};
use docs_core::ti::{IncrementalTi, TiSnapshot, WorkerRegistry, WorkerStats};
use docs_kb::{EntityLinker, KnowledgeBase};
use docs_storage::ParamStore;
use docs_types::{Answer, CampaignEvent, ChoiceIndex, Error, Result, Task, TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Response to a worker's task request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkRequest {
    /// New worker: answer these golden tasks first (submitted via
    /// [`Docs::submit_golden`]).
    Golden(Vec<TaskId>),
    /// Known worker: the OTA-selected HIT.
    Tasks(Vec<TaskId>),
    /// Budget consumed or nothing left for this worker.
    Done,
}

/// Final report returned to the requester.
#[derive(Debug, Clone)]
pub struct RequesterReport {
    /// Inferred truth per task.
    pub truths: Vec<ChoiceIndex>,
    /// Probabilistic truths `s_i`.
    pub truth_distributions: Vec<Vec<f64>>,
    /// Total answers collected.
    pub answers_collected: usize,
    /// Accuracy against ground truth where available (evaluation only).
    pub accuracy: f64,
}

/// A campaign's observable serving state — the read-path summary a
/// follower replica can answer locally (no mutation, no inference run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Published tasks.
    pub tasks: usize,
    /// Golden tasks selected at publish time.
    pub golden: usize,
    /// Ordinary (non-golden) answers collected so far.
    pub answers_collected: usize,
    /// Workers seen this session (passed the golden gate or submitted).
    pub seen_workers: usize,
    /// Workers with quality statistics in the registry (includes returning
    /// workers merged from the parameter database).
    pub known_workers: usize,
    /// Whether the collection budget is consumed.
    pub budget_exhausted: bool,
    /// Answers ingested per task shard (length = `task_shards`) — the
    /// ingestion-balance view of the sharded TI scan.
    pub shard_ingestion: Vec<u64>,
}

/// Per-answer outcome of [`Docs::submit_answer_batch`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchSubmitReport {
    /// Answers accepted and applied, in submission order.
    pub accepted: usize,
    /// Rejected answers: their position in the submitted batch and why.
    pub rejected: Vec<(usize, Error)>,
}

/// The full serializable state of a campaign's [`Docs`] state machine —
/// what the durable runtime writes as the base of a campaign's log and
/// periodically refreshes to truncate it.
///
/// `seen_workers` is stored sorted so snapshots of equal states are
/// byte-identical regardless of insertion history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSnapshot {
    /// The inference engine's state (tasks, per-task state, registries,
    /// answer log, scan geometry).
    pub engine: TiSnapshot,
    /// The selected golden task ids.
    pub golden_ids: Vec<TaskId>,
    /// Workers seen this session, ascending.
    pub seen_workers: Vec<WorkerId>,
    /// The publish-time configuration.
    pub config: DocsConfig,
}

/// The deployed DOCS system for one requester batch.
#[derive(Debug)]
pub struct Docs {
    engine: IncrementalTi,
    golden_ids: Vec<TaskId>,
    seen_workers: HashSet<WorkerId>,
    config: DocsConfig,
    store: Option<ParamStore>,
    /// Monotone per-process state version: advanced once per successfully
    /// applied event. Not part of the snapshot — it tells "did anything
    /// change since I last looked" apart within one process lifetime, which
    /// is all the push-dispatch plane needs (see [`Docs::dispatch_epoch`]).
    version: u64,
}

impl Docs {
    /// Publishes a requester's tasks: runs DVE over the KB, selects golden
    /// tasks, opens the parameter database, and merges any stored history
    /// of returning workers (Theorem 1).
    ///
    /// Tasks may arrive without domain vectors — DVE fills them. Golden
    /// tasks must have ground truth (the paper has them manually labeled);
    /// `publish` verifies this after selection.
    pub fn publish(kb: &KnowledgeBase, mut tasks: Vec<Task>, config: DocsConfig) -> Result<Self> {
        if tasks.is_empty() {
            return Err(Error::Empty("task set"));
        }
        let m = kb.num_domains();
        // ① DVE.
        let linker = EntityLinker::new(kb, config.linker);
        for task in &mut tasks {
            if task.domain_vector.is_none() {
                let entities = linker.link(&task.text);
                task.domain_vector = Some(dve::domain_vector(&entities, m));
            }
        }
        // ② Golden selection.
        let golden_ids = select_golden_tasks(&tasks, config.num_golden);
        for &gid in &golden_ids {
            if tasks[gid.index()].ground_truth.is_none() {
                return Err(Error::Storage(format!(
                    "golden task {gid} lacks a manually labeled ground truth"
                )));
            }
        }
        // ③ Registry, seeded from the parameter database when present.
        let mut registry = WorkerRegistry::new(m, 0.7);
        let store = match &config.storage_dir {
            Some(dir) => Some(ParamStore::open(dir)?),
            None => None,
        };
        if let Some(store) = &store {
            for w in store.worker_ids() {
                if let Some(stats) = store.get_worker::<WorkerStats>(w)? {
                    if stats.num_domains() == m {
                        registry.put(w, stats);
                    }
                }
            }
        }
        let engine = IncrementalTi::new(tasks, registry, config.z)
            .with_shards(config.task_shards.max(1))
            .with_benefit_index(config.use_benefit_index);
        Ok(Docs {
            engine,
            golden_ids,
            seen_workers: HashSet::new(),
            config,
            store,
            version: 0,
        })
    }

    /// The published tasks (with DVE-filled domain vectors).
    pub fn tasks(&self) -> &[Task] {
        self.engine.tasks()
    }

    /// The publish-time configuration.
    pub fn config(&self) -> &DocsConfig {
        &self.config
    }

    /// Overrides the per-campaign durability opt-in after publish — the
    /// service applies a wire-level persistence override here so the policy
    /// a campaign actually runs with is the one its snapshots record.
    pub fn set_durable_flush(&mut self, flush: Option<docs_storage::FlushPolicy>) {
        self.config.durable_flush = flush;
    }

    /// The selected golden task ids.
    pub fn golden_ids(&self) -> &[TaskId] {
        &self.golden_ids
    }

    /// The inference engine (read access for experiment harnesses).
    pub fn engine(&self) -> &IncrementalTi {
        &self.engine
    }

    /// Answers ingested per task shard (length = `task_shards`): the
    /// ingestion-balance view runtimes use to check that the hash partition
    /// spreads TI load before trusting the sharded scan's parallelism.
    pub fn shard_ingestion(&self) -> Vec<u64> {
        let sharding = self.engine.sharding();
        (0..sharding.num_shards())
            .map(|s| sharding.ingested(s))
            .collect()
    }

    /// Total (non-golden) answers collected so far.
    pub fn answers_collected(&self) -> usize {
        self.engine.log().len()
    }

    /// The campaign's observable serving state — a pure read over the live
    /// state, cheap enough for status polling and safe to serve from a
    /// follower replica (nothing is mutated, no inference runs).
    pub fn status(&self) -> CampaignStatus {
        CampaignStatus {
            tasks: self.tasks().len(),
            golden: self.golden_ids.len(),
            answers_collected: self.answers_collected(),
            seen_workers: self.seen_workers.len(),
            known_workers: self.engine.registry().len(),
            budget_exhausted: self.budget_exhausted(),
            shard_ingestion: self.shard_ingestion(),
        }
    }

    /// Whether the collection budget is consumed: the flat budget is spent,
    /// or — with an adaptive stopping policy configured — every task has
    /// satisfied its stopping condition.
    pub fn budget_exhausted(&self) -> bool {
        self.budget_exhausted_with(0)
    }

    /// [`Docs::budget_exhausted`] as seen by the `(pending + 1)`-th answer
    /// of one submission: the flat cap counts the `pending` answers already
    /// admitted ahead of it (batch validation admits sequentially without
    /// mutating state), while the adaptive-stopping condition is evaluated
    /// against the pre-submission state.
    ///
    /// Scope: only the **flat cap** threads `pending` through. With an
    /// adaptive stopping policy, a batch whose earlier answers would tip
    /// every task into its stopping condition does not refuse the batch's
    /// own tail — validation is pure and cannot evolve the states, so
    /// strict per-answer admission within one batch is exact for the flat
    /// budget and pre-state for the stopping condition (documented on
    /// `DocsConfig::strict_budget`).
    fn budget_exhausted_with(&self, pending: usize) -> bool {
        if self.config.answers_per_task == 0 {
            return false;
        }
        if self.answers_collected() + pending >= self.config.answers_per_task * self.tasks().len() {
            return true;
        }
        if let Some(policy) = self.config.stopping {
            let log = self.engine.log();
            return self
                .engine
                .states()
                .iter()
                .zip(self.engine.tasks())
                .all(|(state, task)| policy.should_stop(state, log.answer_count(task.id)));
        }
        false
    }

    /// Handles "a worker comes and requests tasks" (Figure 1, arrow ④).
    ///
    /// Unknown workers — not seen in this session and absent from the
    /// parameter database — get the golden HIT first; known workers get an
    /// OTA assignment.
    pub fn request_tasks(&mut self, worker: WorkerId) -> WorkRequest {
        if self.budget_exhausted() {
            return WorkRequest::Done;
        }
        let known = self.seen_workers.contains(&worker) || self.engine.registry().contains(worker);
        if !known {
            return WorkRequest::Golden(self.golden_ids.clone());
        }
        let quality = self.engine.registry().quality(worker);
        let assigner = Assigner::new(AssignerConfig {
            k: self.config.k_per_hit,
            max_answers_per_task: if self.config.answers_per_task == 0 {
                None
            } else {
                Some(self.config.answers_per_task)
            },
            linear_select: true,
        });
        let stopping = self.config.stopping;
        let (tasks, states, log, sharding, index) = self.engine.assign_view();
        // Adaptive stopping excludes confident tasks the same way an
        // already-answered task is excluded.
        let answered = |t: docs_types::TaskId| {
            log.has_answered(worker, t)
                || stopping.is_some_and(|policy| {
                    policy.should_stop(&states[t.index()], log.answer_count(t))
                })
        };
        let answer_count = |t: docs_types::TaskId| log.answer_count(t);
        // Two ways to find the same candidates: the indexed
        // pop-and-revalidate (`use_benefit_index`) and the sharded scan
        // merged by `merge_top_k` (flat list when `task_shards == 1`).
        // Either way the picks match the paper's single scan exactly.
        let picks = match index {
            Some(index) => assigner.assign_indexed(
                &quality,
                tasks,
                states,
                sharding,
                index,
                answered,
                answer_count,
            ),
            None => {
                assigner.assign_sharded(&quality, tasks, states, sharding, answered, answer_count)
            }
        };
        if picks.is_empty() {
            WorkRequest::Done
        } else {
            WorkRequest::Tasks(picks)
        }
    }

    /// Receives a new worker's golden answers and initializes her quality
    /// (Section 5.2). Command wrapper over
    /// [`CampaignEvent::GoldenSubmitted`].
    pub fn submit_golden(
        &mut self,
        worker: WorkerId,
        answers: &[(TaskId, ChoiceIndex)],
    ) -> Result<()> {
        self.apply(&CampaignEvent::golden(worker, answers.to_vec()))
    }

    /// Handles "a worker accomplishes tasks and submits answers"
    /// (Figure 1, arrow ⑤): incremental TI plus periodic full inference.
    /// Command wrapper over [`CampaignEvent::AnswerSubmitted`].
    pub fn submit_answer(&mut self, answer: Answer) -> Result<()> {
        self.apply(&CampaignEvent::answer(answer))
    }

    /// Batched ingestion: validates every answer up front (against the log
    /// *and* the earlier answers of the same batch), applies the accepted
    /// ones as a single [`CampaignEvent::AnswerBatchSubmitted`] transition,
    /// and reports the per-answer outcome. Applying a batch is
    /// byte-identical to submitting its accepted answers one by one — only
    /// the bookkeeping (one event, one index-repair pass, one WAL record in
    /// the durable service) is amortized.
    pub fn submit_answer_batch(&mut self, answers: &[Answer]) -> Result<BatchSubmitReport> {
        let (accepted, rejected) = self.validate_answer_batch(answers);
        let accepted_count = accepted.len();
        if !accepted.is_empty() {
            self.apply(&CampaignEvent::answer_batch(accepted))?;
        }
        Ok(BatchSubmitReport {
            accepted: accepted_count,
            rejected,
        })
    }

    /// Partitions a batch into the answers that would be accepted (in
    /// order) and the rejected ones with their positions and errors — the
    /// validation front of the batched ingestion path, shared by
    /// [`Docs::submit_answer_batch`] and the durable service (which logs
    /// only the accepted sub-batch). Pure: no state is touched.
    pub fn validate_answer_batch(&self, answers: &[Answer]) -> (Vec<Answer>, Vec<(usize, Error)>) {
        let mut accepted = Vec::with_capacity(answers.len());
        let mut rejected = Vec::new();
        let mut seen: HashSet<(WorkerId, TaskId)> = HashSet::with_capacity(answers.len());
        for (i, &answer) in answers.iter().enumerate() {
            // `accepted.len()` answers of this batch are already admitted
            // ahead of this one — the log growth a sequential submission of
            // the same batch would have seen — so a batch straddling the
            // flat budget cap truncates at the same answer. (The adaptive
            // stopping condition is evaluated on pre-batch state; see
            // `budget_exhausted_with`.)
            if let Err(e) = self.validate_answer_at(&answer, accepted.len()) {
                rejected.push((i, e));
                continue;
            }
            // A duplicate *within* the batch is rejected exactly like a
            // duplicate against the log: the earlier answer wins.
            if !seen.insert((answer.worker, answer.task)) {
                rejected.push((
                    i,
                    Error::DuplicateAnswer {
                        task: answer.task,
                        worker: answer.worker,
                    },
                ));
                continue;
            }
            accepted.push(answer);
        }
        (accepted, rejected)
    }

    /// Validates one answer against the current state: known task, in-range
    /// choice, not a duplicate of a logged answer — and, on strict-budget
    /// campaigns, that the collection budget is still open.
    fn validate_answer(&self, answer: &Answer) -> Result<()> {
        self.validate_answer_at(answer, 0)
    }

    /// [`Docs::validate_answer`] for the answer arriving after `pending`
    /// already-admitted answers of the same submission. Duplicate
    /// classification outranks budget admission: a client retrying after a
    /// lost ack must see [`Error::DuplicateAnswer`] (its idempotent-success
    /// signal), never a spurious budget error.
    fn validate_answer_at(&self, answer: &Answer, pending: usize) -> Result<()> {
        let task = self
            .engine
            .tasks()
            .get(answer.task.index())
            .ok_or(Error::UnknownTask(answer.task))?;
        task.check_choice(answer.choice)?;
        if self.engine.log().has_answered(answer.worker, answer.task) {
            return Err(Error::DuplicateAnswer {
                task: answer.task,
                worker: answer.worker,
            });
        }
        self.check_budget_admission_at(pending)?;
        Ok(())
    }

    /// Strict-budget admission for the `(pending + 1)`-th new answer of one
    /// submission: a closed budget refuses further answers. Pure in the
    /// state, so the live path, the batch validation front, and crash
    /// replay all reach the same verdict for the same answer log.
    fn check_budget_admission_at(&self, pending: usize) -> Result<()> {
        if self.config.strict_budget && self.budget_exhausted_with(pending) {
            return Err(Error::BudgetExhausted);
        }
        Ok(())
    }

    /// Finalizes the batch: one last full inference, state persisted, report
    /// returned to the requester. Command wrapper over
    /// [`CampaignEvent::Finished`].
    pub fn finish(&mut self) -> Result<RequesterReport> {
        self.apply(&CampaignEvent::finished())?;
        Ok(self.report())
    }

    /// Checks whether an event would be accepted by [`Docs::apply`], without
    /// touching any state. The durable runtime calls this *before* logging a
    /// command so rejected requests (duplicate answers, unknown tasks) never
    /// reach the write-ahead log.
    pub fn validate_event(&self, event: &CampaignEvent) -> Result<()> {
        match event {
            CampaignEvent::Published(_) | CampaignEvent::Finished(_) => Ok(()),
            CampaignEvent::GoldenSubmitted(g) => {
                for &(tid, choice) in &g.answers {
                    let task = self
                        .engine
                        .tasks()
                        .get(tid.index())
                        .ok_or(Error::UnknownTask(tid))?;
                    task.check_choice(choice)?;
                    if task.ground_truth.is_none() {
                        // A task without a manual label cannot grade a new
                        // worker — distinct from an id that doesn't exist.
                        return Err(Error::GoldenRequired(tid));
                    }
                }
                Ok(())
            }
            CampaignEvent::AnswerSubmitted(a) => self.validate_answer(&a.answer),
            CampaignEvent::AnswerBatchSubmitted(b) => {
                // A loggable batch must apply *in full*: every answer valid
                // against the state (budget capacity included, counted per
                // position), no duplicates within the batch (the service
                // pre-filters with `validate_answer_batch`, so a failure
                // here means a mispaired or tampered log).
                let mut seen: HashSet<(WorkerId, TaskId)> = HashSet::new();
                for (i, answer) in b.answers.iter().enumerate() {
                    self.validate_answer_at(answer, i)?;
                    if !seen.insert((answer.worker, answer.task)) {
                        return Err(Error::DuplicateAnswer {
                            task: answer.task,
                            worker: answer.worker,
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// The deterministic state transition: applies one event to the state
    /// machine. Replaying a logged event sequence over a restored snapshot
    /// reproduces the live state exactly — the transition reads no clock, no
    /// randomness, and no iteration order of unordered containers.
    pub fn apply(&mut self, event: &CampaignEvent) -> Result<()> {
        let applied = match event {
            // `Published` marks the birth of the log; the state it describes
            // is the snapshot it rides with, so applying it is a no-op.
            CampaignEvent::Published(_) => Ok(()),
            CampaignEvent::GoldenSubmitted(g) => self.apply_golden(g.worker, &g.answers),
            CampaignEvent::AnswerSubmitted(a) => self.apply_answer(a.answer),
            CampaignEvent::AnswerBatchSubmitted(b) => self.apply_answer_batch(&b.answers),
            CampaignEvent::Finished(_) => self.apply_finished(),
        };
        if applied.is_ok() {
            self.version = self.version.wrapping_add(1);
        }
        applied
    }

    /// The campaign's dispatch epoch: a monotone counter that moves exactly
    /// when the assignment candidate space can have moved — once per applied
    /// event, plus once per benefit-index maintenance step (bump/rebuild)
    /// when the campaign runs the incremental index, so the index's own
    /// maintenance bump is the literal trigger. The service's push plane
    /// caches the epoch per campaign and dispatches parked subscriptions
    /// only when it advanced: the index is consulted once per state change
    /// instead of once per worker poll.
    pub fn dispatch_epoch(&self) -> u64 {
        self.version
            .wrapping_add(self.engine.index_generation().unwrap_or(0))
    }

    fn apply_golden(&mut self, worker: WorkerId, answers: &[(TaskId, ChoiceIndex)]) -> Result<()> {
        let infos: Vec<(TaskId, (docs_types::DomainVector, ChoiceIndex))> = answers
            .iter()
            .map(|&(tid, _)| {
                let t = self
                    .engine
                    .tasks()
                    .get(tid.index())
                    .ok_or(Error::UnknownTask(tid))?;
                Ok((
                    tid,
                    (
                        t.domain_vector().clone(),
                        t.ground_truth.ok_or(Error::GoldenRequired(tid))?,
                    ),
                ))
            })
            .collect::<Result<_>>()?;
        let lookup = move |tid: TaskId| {
            infos
                .iter()
                .find(|(t, _)| *t == tid)
                .map(|(_, info)| info.clone())
                .expect("golden info present")
        };
        self.engine
            .init_worker_from_golden(worker, answers, &lookup, self.config.golden_smoothing);
        self.seen_workers.insert(worker);
        self.persist_worker(worker)?;
        Ok(())
    }

    fn apply_answer(&mut self, answer: Answer) -> Result<()> {
        // Full validation first (the same classification order the pure
        // front uses — duplicate outranks budget), so a rejected answer
        // leaves the state untouched and carries the same error whichever
        // path refused it; the engine re-validates before mutating.
        self.validate_answer(&answer)?;
        self.engine.submit(answer)?;
        self.seen_workers.insert(answer.worker);
        self.persist_worker(answer.worker)?;
        self.persist_task(answer.task)?;
        Ok(())
    }

    fn apply_answer_batch(&mut self, answers: &[Answer]) -> Result<()> {
        // One engine pass (single index repair), then one parameter-store
        // write per distinct worker/task — the same final store contents
        // as per-answer persistence, without rewriting a hot task's state
        // once per answer. BTreeSets keep the write order deterministic.
        // A batch applies *in full*, so admission requires budget capacity
        // for its last answer — the validation front truncates straddling
        // batches to exactly this capacity.
        if let Some(last) = answers.len().checked_sub(1) {
            self.check_budget_admission_at(last)?;
        }
        self.engine.submit_batch(answers)?;
        let mut workers: std::collections::BTreeSet<WorkerId> = std::collections::BTreeSet::new();
        let mut tasks: std::collections::BTreeSet<TaskId> = std::collections::BTreeSet::new();
        for answer in answers {
            self.seen_workers.insert(answer.worker);
            workers.insert(answer.worker);
            tasks.insert(answer.task);
        }
        for worker in workers {
            self.persist_worker(worker)?;
        }
        for task in tasks {
            self.persist_task(task)?;
        }
        Ok(())
    }

    fn apply_finished(&mut self) -> Result<()> {
        self.engine.run_full();
        if let Some(store) = &self.store {
            for (w, stats) in self.engine.registry().iter() {
                store.put_worker(w, stats)?;
            }
            for (i, state) in self.engine.states().iter().enumerate() {
                store.put_task(TaskId::from(i), state)?;
            }
            store.compact()?;
        }
        Ok(())
    }

    /// The requester report under the current state — a pure read. The
    /// report after [`CampaignEvent::Finished`] depends only on the tasks,
    /// the answer log, and the golden registry (the full inference
    /// recomputes everything from them), so a recovered campaign that
    /// reaches the same log reports byte-identical truths.
    pub fn report(&self) -> RequesterReport {
        let truths = self.engine.truths();
        let accuracy = docs_crowd::accuracy_of(&truths, self.engine.tasks());
        RequesterReport {
            truth_distributions: self
                .engine
                .states()
                .iter()
                .map(|s| s.s().to_vec())
                .collect(),
            answers_collected: self.answers_collected(),
            truths,
            accuracy,
        }
    }

    /// Captures the campaign's full state for the durable runtime.
    pub fn snapshot(&self) -> CampaignSnapshot {
        let mut seen_workers: Vec<WorkerId> = self.seen_workers.iter().copied().collect();
        seen_workers.sort_unstable();
        CampaignSnapshot {
            engine: self.engine.snapshot(),
            golden_ids: self.golden_ids.clone(),
            seen_workers,
            config: self.config.clone(),
        }
    }

    /// Rebuilds a campaign from a snapshot. The parameter database is
    /// reopened from `config.storage_dir` when one was configured; its
    /// contents are *not* re-merged into the registry — the snapshot already
    /// carries the exact live statistics.
    pub fn restore(snapshot: CampaignSnapshot) -> Result<Self> {
        let store = match &snapshot.config.storage_dir {
            Some(dir) => Some(ParamStore::open(dir)?),
            None => None,
        };
        Ok(Docs {
            // The benefit index is derived state: rebuilt here rather than
            // snapshotted, per the campaign's own config.
            engine: IncrementalTi::restore(snapshot.engine)
                .with_benefit_index(snapshot.config.use_benefit_index),
            golden_ids: snapshot.golden_ids,
            seen_workers: snapshot.seen_workers.into_iter().collect(),
            config: snapshot.config,
            store,
            version: 0,
        })
    }

    fn persist_worker(&self, worker: WorkerId) -> Result<()> {
        if let (Some(store), Some(stats)) = (&self.store, self.engine.registry().get(worker)) {
            store.put_worker(worker, stats)?;
        }
        Ok(())
    }

    fn persist_task(&self, task: TaskId) -> Result<()> {
        if let Some(store) = &self.store {
            store.put_task(task, self.engine.state(task))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_kb::table2_example_kb;
    use docs_types::TaskBuilder;

    fn example_tasks(n: usize) -> Vec<Task> {
        // Texts built from the Table 2 KB aliases so DVE has signal.
        let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
        (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("Is {} great?", subjects[i % subjects.len()]))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(1)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    fn small_config() -> DocsConfig {
        DocsConfig {
            num_golden: 2,
            k_per_hit: 3,
            answers_per_task: 3,
            z: 10,
            ..Default::default()
        }
    }

    #[test]
    fn publish_runs_dve_and_selects_golden() {
        let kb = table2_example_kb();
        let docs = Docs::publish(&kb, example_tasks(6), small_config()).unwrap();
        assert_eq!(docs.golden_ids().len(), 2);
        for t in docs.tasks() {
            let r = t.domain_vector.as_ref().expect("DVE ran");
            assert!(docs_types::prob::is_distribution(r.as_slice()));
            // Kobe Bryant is a sports-only concept ⇒ sports-dominated
            // vector. ("Michael Jordan" alone legitimately leans films:
            // the player concept is multi-domain and the actor exists.)
            if t.text.contains("Kobe") {
                assert_eq!(r.dominant_domain(), 1);
            }
        }
    }

    #[test]
    fn new_workers_get_golden_then_tasks() {
        let kb = table2_example_kb();
        let mut docs = Docs::publish(&kb, example_tasks(6), small_config()).unwrap();
        let w = WorkerId(0);
        let req = docs.request_tasks(w);
        let golden = match req {
            WorkRequest::Golden(g) => g,
            other => panic!("expected golden request, got {other:?}"),
        };
        let answers: Vec<(TaskId, ChoiceIndex)> = golden
            .iter()
            .map(|&g| (g, docs.tasks()[g.index()].ground_truth.unwrap()))
            .collect();
        docs.submit_golden(w, &answers).unwrap();
        match docs.request_tasks(w) {
            WorkRequest::Tasks(tasks) => assert_eq!(tasks.len(), 3),
            other => panic!("expected tasks, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_stops_assignment() {
        let kb = table2_example_kb();
        let mut docs = Docs::publish(&kb, example_tasks(2), small_config()).unwrap();
        // Budget = 2 tasks × 3 answers = 6.
        let mut served = 0;
        'outer: for w in 0..10u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = docs.request_tasks(w) {
                let answers: Vec<_> = g
                    .iter()
                    .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                    .collect();
                docs.submit_golden(w, &answers).unwrap();
            }
            loop {
                match docs.request_tasks(w) {
                    WorkRequest::Tasks(tasks) => {
                        for t in tasks {
                            docs.submit_answer(Answer {
                                task: t,
                                worker: w,
                                choice: 0,
                            })
                            .unwrap();
                            served += 1;
                            if served > 100 {
                                panic!("budget never exhausted");
                            }
                        }
                    }
                    _ => continue 'outer,
                }
            }
        }
        assert!(docs.budget_exhausted());
        assert_eq!(docs.answers_collected(), 6);
        match docs.request_tasks(WorkerId(99)) {
            WorkRequest::Done => {}
            other => panic!("expected Done after budget, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_stopping_excludes_confident_tasks() {
        use docs_core::ti::{StoppingPolicy, StoppingRule};
        let kb = table2_example_kb();
        let config = DocsConfig {
            num_golden: 2,
            k_per_hit: 4,
            answers_per_task: 10,
            z: 1, // full inference after every answer, deterministic states
            stopping: Some(StoppingPolicy {
                rule: StoppingRule::ConfidenceAbove(0.95),
                min_answers: 2,
                max_answers: 10,
            }),
            ..Default::default()
        };
        let mut docs = Docs::publish(&kb, example_tasks(4), config).unwrap();
        // Three golden-perfect workers agree on task 0's truth.
        for w in 0..3u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = docs.request_tasks(w) {
                let answers: Vec<_> = g
                    .iter()
                    .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                    .collect();
                docs.submit_golden(w, &answers).unwrap();
            }
            docs.submit_answer(Answer {
                task: TaskId(0),
                worker: w,
                choice: docs.tasks()[0].ground_truth.unwrap(),
            })
            .unwrap();
        }
        // Task 0 is now confident; a fresh (golden-initialized) worker's
        // HIT must not contain it, even though its flat cap (10) is far off.
        let w = WorkerId(7);
        if let WorkRequest::Golden(g) = docs.request_tasks(w) {
            let answers: Vec<_> = g
                .iter()
                .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                .collect();
            docs.submit_golden(w, &answers).unwrap();
        }
        match docs.request_tasks(w) {
            WorkRequest::Tasks(tasks) => {
                assert!(
                    !tasks.contains(&TaskId(0)),
                    "confident task assigned anyway: {tasks:?}"
                );
                assert!(!tasks.is_empty());
            }
            other => panic!("expected tasks, got {other:?}"),
        }
    }

    #[test]
    fn all_tasks_stopped_exhausts_the_budget() {
        use docs_core::ti::{StoppingPolicy, StoppingRule};
        let kb = table2_example_kb();
        let config = DocsConfig {
            num_golden: 2,
            k_per_hit: 4,
            answers_per_task: 10,
            z: 1,
            stopping: Some(StoppingPolicy {
                rule: StoppingRule::ConfidenceAbove(0.9),
                min_answers: 2,
                max_answers: 10,
            }),
            ..Default::default()
        };
        let mut docs = Docs::publish(&kb, example_tasks(2), config).unwrap();
        for w in 0..3u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = docs.request_tasks(w) {
                let answers: Vec<_> = g
                    .iter()
                    .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                    .collect();
                docs.submit_golden(w, &answers).unwrap();
            }
            for t in 0..2usize {
                docs.submit_answer(Answer {
                    task: TaskId::from(t),
                    worker: w,
                    choice: docs.tasks()[t].ground_truth.unwrap(),
                })
                .unwrap();
            }
        }
        // 3 unanimous expert answers per task: both tasks stop well short
        // of the 10-answer flat budget (6 of 20 answers spent).
        assert!(docs.budget_exhausted());
        assert_eq!(docs.answers_collected(), 6);
        assert!(matches!(docs.request_tasks(WorkerId(9)), WorkRequest::Done));
    }

    #[test]
    fn strict_budget_rejects_late_answers_with_a_typed_error() {
        let kb = table2_example_kb();
        let config = DocsConfig {
            num_golden: 2,
            k_per_hit: 2,
            answers_per_task: 2,
            z: 10,
            strict_budget: true,
            ..Default::default()
        };
        let mut docs = Docs::publish(&kb, example_tasks(2), config).unwrap();
        // Budget = 2 tasks × 2 answers.
        for w in 0..2u32 {
            for t in 0..2usize {
                docs.submit_answer(Answer {
                    task: TaskId::from(t),
                    worker: WorkerId(w),
                    choice: 0,
                })
                .unwrap();
            }
        }
        assert!(docs.budget_exhausted());
        let late = Answer {
            task: TaskId(0),
            worker: WorkerId(9),
            choice: 0,
        };
        assert_eq!(docs.submit_answer(late), Err(Error::BudgetExhausted));
        assert_eq!(
            docs.validate_event(&CampaignEvent::answer(late)),
            Err(Error::BudgetExhausted)
        );
        // The batch front reports the refusal per position.
        let report = docs.submit_answer_batch(&[late]).unwrap();
        assert_eq!(report.accepted, 0);
        assert_eq!(report.rejected, vec![(0, Error::BudgetExhausted)]);
        assert_eq!(docs.answers_collected(), 4, "nothing absorbed");
        // Duplicate classification outranks budget admission: a retry of an
        // already-accepted answer is told it's a duplicate (idempotent
        // success), not a spurious budget error.
        assert_eq!(
            docs.submit_answer(Answer {
                task: TaskId(0),
                worker: WorkerId(0),
                choice: 1,
            }),
            Err(Error::DuplicateAnswer {
                task: TaskId(0),
                worker: WorkerId(0),
            })
        );

        // The paper's default still absorbs late answers.
        let lax = DocsConfig {
            num_golden: 2,
            k_per_hit: 2,
            answers_per_task: 1,
            z: 10,
            ..Default::default()
        };
        let mut docs = Docs::publish(&kb, example_tasks(2), lax).unwrap();
        for t in 0..2usize {
            docs.submit_answer(Answer {
                task: TaskId::from(t),
                worker: WorkerId(0),
                choice: 0,
            })
            .unwrap();
        }
        assert!(docs.budget_exhausted());
        assert!(docs.submit_answer(late).is_ok());
    }

    /// A batch straddling the budget boundary truncates at exactly the
    /// answer a sequential submission would have refused — strict admission
    /// is per answer, not per round-trip.
    #[test]
    fn strict_budget_truncates_a_straddling_batch_per_answer() {
        let kb = table2_example_kb();
        let config = DocsConfig {
            num_golden: 2,
            k_per_hit: 2,
            answers_per_task: 2,
            z: 10,
            strict_budget: true,
            ..Default::default()
        };
        // Budget = 2 tasks × 2 = 4; burn 3 slots, leaving room for one.
        let mut docs = Docs::publish(&kb, example_tasks(2), config).unwrap();
        for (w, t) in [(0u32, 0u32), (0, 1), (1, 0)] {
            docs.submit_answer(Answer {
                task: TaskId(t),
                worker: WorkerId(w),
                choice: 0,
            })
            .unwrap();
        }
        let batch = [
            Answer {
                task: TaskId(1),
                worker: WorkerId(1),
                choice: 1,
            }, // fills the last slot
            Answer {
                task: TaskId(0),
                worker: WorkerId(2),
                choice: 0,
            }, // over budget
            Answer {
                task: TaskId(1),
                worker: WorkerId(2),
                choice: 1,
            }, // over budget
        ];
        // The full-batch event can no longer apply in full…
        assert_eq!(
            docs.validate_event(&CampaignEvent::answer_batch(batch.to_vec())),
            Err(Error::BudgetExhausted)
        );
        // …and the validation front truncates it per position.
        let report = docs.submit_answer_batch(&batch).unwrap();
        assert_eq!(report.accepted, 1);
        assert_eq!(
            report.rejected,
            vec![(1, Error::BudgetExhausted), (2, Error::BudgetExhausted)]
        );
        assert_eq!(
            docs.answers_collected(),
            4,
            "exactly the budget, no overshoot"
        );
        assert!(docs.budget_exhausted());
    }

    #[test]
    fn golden_submission_for_an_unlabeled_task_is_golden_required() {
        let kb = table2_example_kb();
        // No golden set, and task 0 deliberately unlabeled: grading against
        // it is impossible, which must be told apart from an unknown id.
        let mut tasks = example_tasks(4);
        tasks[0].ground_truth = None;
        let config = DocsConfig {
            num_golden: 0,
            k_per_hit: 2,
            answers_per_task: 2,
            z: 10,
            ..Default::default()
        };
        let mut docs = Docs::publish(&kb, tasks, config).unwrap();
        let w = WorkerId(0);
        assert_eq!(
            docs.validate_event(&CampaignEvent::golden(w, vec![(TaskId(0), 0)])),
            Err(Error::GoldenRequired(TaskId(0)))
        );
        assert_eq!(
            docs.submit_golden(w, &[(TaskId(0), 0)]),
            Err(Error::GoldenRequired(TaskId(0)))
        );
        // An id outside the task set keeps its own classification.
        assert_eq!(
            docs.validate_event(&CampaignEvent::golden(w, vec![(TaskId(99), 0)])),
            Err(Error::UnknownTask(TaskId(99)))
        );
        // A labeled task still grades fine.
        assert!(docs.submit_golden(w, &[(TaskId(1), 1)]).is_ok());
    }

    #[test]
    fn shard_ingestion_accounts_for_every_answer() {
        let kb = table2_example_kb();
        let config = DocsConfig {
            task_shards: 3,
            ..small_config()
        };
        let mut docs = Docs::publish(&kb, example_tasks(6), config).unwrap();
        assert_eq!(docs.shard_ingestion(), vec![0, 0, 0]);
        for t in 0..6usize {
            docs.submit_answer(Answer {
                task: TaskId::from(t),
                worker: WorkerId(0),
                choice: 0,
            })
            .unwrap();
        }
        let ingestion = docs.shard_ingestion();
        assert_eq!(ingestion.len(), 3);
        assert_eq!(ingestion.iter().sum::<u64>(), 6);
    }

    #[test]
    fn finish_reports_truths() {
        let kb = table2_example_kb();
        let mut docs = Docs::publish(&kb, example_tasks(4), small_config()).unwrap();
        for w in 0..3u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = docs.request_tasks(w) {
                let answers: Vec<_> = g
                    .iter()
                    .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                    .collect();
                docs.submit_golden(w, &answers).unwrap();
            }
            for t in 0..4usize {
                let tid = TaskId::from(t);
                if !docs.engine().log().has_answered(w, tid) {
                    docs.submit_answer(Answer {
                        task: tid,
                        worker: w,
                        choice: docs.tasks()[t].ground_truth.unwrap(),
                    })
                    .unwrap();
                }
            }
        }
        let report = docs.finish().unwrap();
        assert_eq!(report.truths.len(), 4);
        assert_eq!(report.accuracy, 1.0);
        assert_eq!(report.answers_collected, 12);
    }

    #[test]
    fn batched_submission_is_byte_identical_to_individual_submissions() {
        let kb = table2_example_kb();
        let config = DocsConfig {
            z: 3, // the periodic full inference fires mid-batch
            ..small_config()
        };
        let mut one_by_one = Docs::publish(&kb, example_tasks(6), config.clone()).unwrap();
        let mut batched = Docs::publish(&kb, example_tasks(6), config).unwrap();
        let answers: Vec<Answer> = (0..6)
            .flat_map(|t| {
                (0..2u32).map(move |w| Answer {
                    task: TaskId::from(t),
                    worker: WorkerId(w),
                    choice: (t + w as usize) % 2,
                })
            })
            .collect();
        for &a in &answers {
            one_by_one.submit_answer(a).unwrap();
        }
        let report = batched.submit_answer_batch(&answers).unwrap();
        assert_eq!(report.accepted, answers.len());
        assert!(report.rejected.is_empty());
        let (a, b) = (one_by_one.finish().unwrap(), batched.finish().unwrap());
        assert_eq!(a.truths, b.truths);
        assert_eq!(a.truth_distributions, b.truth_distributions);
        assert_eq!(a.answers_collected, b.answers_collected);
    }

    #[test]
    fn batch_rejects_bad_answers_and_applies_the_rest() {
        let kb = table2_example_kb();
        let mut docs = Docs::publish(&kb, example_tasks(4), small_config()).unwrap();
        let w = WorkerId(0);
        docs.submit_answer(Answer {
            task: TaskId(0),
            worker: w,
            choice: 0,
        })
        .unwrap();
        let batch = [
            Answer {
                task: TaskId(0),
                worker: w,
                choice: 1,
            }, // duplicate against the log
            Answer {
                task: TaskId(1),
                worker: w,
                choice: 0,
            }, // fine
            Answer {
                task: TaskId(1),
                worker: w,
                choice: 1,
            }, // duplicate within the batch
            Answer {
                task: TaskId(99),
                worker: w,
                choice: 0,
            }, // unknown task
            Answer {
                task: TaskId(2),
                worker: w,
                choice: 9,
            }, // out-of-range choice
            Answer {
                task: TaskId(3),
                worker: WorkerId(1),
                choice: 1,
            }, // fine
        ];
        let report = docs.submit_answer_batch(&batch).unwrap();
        assert_eq!(report.accepted, 2);
        assert_eq!(
            report.rejected.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 2, 3, 4]
        );
        assert_eq!(docs.answers_collected(), 3);
        // validate_event mirrors the same rules for a whole logged batch.
        assert!(docs
            .validate_event(&CampaignEvent::answer_batch(batch.to_vec()))
            .is_err());
        assert!(docs
            .validate_event(&CampaignEvent::answer_batch(vec![Answer {
                task: TaskId(2),
                worker: WorkerId(2),
                choice: 1,
            }]))
            .is_ok());
        // An empty batch is a no-op, not an error.
        let empty = docs.submit_answer_batch(&[]).unwrap();
        assert_eq!((empty.accepted, empty.rejected.len()), (0, 0));
        assert_eq!(docs.answers_collected(), 3);
    }

    #[test]
    fn indexed_campaign_serves_identically_to_the_scan_campaign() {
        // The DocsConfig switch: same request stream, byte-identical HITs,
        // answers, and final report — the index only changes how candidates
        // are found.
        let kb = table2_example_kb();
        let run = |use_benefit_index: bool| {
            let config = DocsConfig {
                use_benefit_index,
                task_shards: 2,
                ..small_config()
            };
            let mut docs = Docs::publish(&kb, example_tasks(9), config).unwrap();
            let mut trace: Vec<WorkRequest> = Vec::new();
            for round in 0..6 {
                for w in 0..3u32 {
                    let w = WorkerId(w);
                    let req = docs.request_tasks(w);
                    match &req {
                        WorkRequest::Golden(g) => {
                            let answers: Vec<_> = g
                                .iter()
                                .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                                .collect();
                            docs.submit_golden(w, &answers).unwrap();
                        }
                        WorkRequest::Tasks(hit) => {
                            let answers: Vec<Answer> = hit
                                .iter()
                                .map(|&t| Answer {
                                    task: t,
                                    worker: w,
                                    choice: (t.index() + round) % 2,
                                })
                                .collect();
                            docs.submit_answer_batch(&answers).unwrap();
                        }
                        WorkRequest::Done => {}
                    }
                    trace.push(req);
                }
            }
            (trace, docs.finish().unwrap())
        };
        let (scan_trace, scan_report) = run(false);
        let (index_trace, index_report) = run(true);
        assert_eq!(index_trace, scan_trace, "assignments diverged");
        assert_eq!(index_report.truths, scan_report.truths);
        assert_eq!(
            index_report.truth_distributions,
            scan_report.truth_distributions
        );
    }

    #[test]
    fn dispatch_epoch_advances_on_state_changes_not_polls() {
        let kb = table2_example_kb();
        let config = DocsConfig {
            use_benefit_index: true,
            ..small_config()
        };
        let mut docs = Docs::publish(&kb, example_tasks(6), config).unwrap();
        let w = WorkerId(0);
        let e0 = docs.dispatch_epoch();
        // Golden init is a state change.
        let golden: Vec<_> = docs
            .golden_ids()
            .to_vec()
            .iter()
            .map(|&g| (g, docs.tasks()[g.index()].ground_truth.unwrap()))
            .collect();
        docs.submit_golden(w, &golden).unwrap();
        let e1 = docs.dispatch_epoch();
        assert!(e1 > e0, "golden init must advance the epoch");
        // Polling (assignment) is a read of the candidate space: the indexed
        // pop-and-revalidate re-pushes live entries and must not advance.
        let _ = docs.request_tasks(w);
        let _ = docs.request_tasks(w);
        assert_eq!(docs.dispatch_epoch(), e1, "polls must not advance");
        // An ingested answer advances (apply + index bump).
        docs.submit_answer(Answer {
            task: TaskId(0),
            worker: w,
            choice: 0,
        })
        .unwrap();
        let e2 = docs.dispatch_epoch();
        assert!(e2 > e1);
        // A rejected submission leaves the epoch alone.
        assert!(docs
            .submit_answer(Answer {
                task: TaskId(0),
                worker: w,
                choice: 1,
            })
            .is_err());
        assert_eq!(docs.dispatch_epoch(), e2, "rejections must not advance");
    }

    #[test]
    fn snapshot_restore_roundtrip_is_byte_identical() {
        let kb = table2_example_kb();
        let mut docs = Docs::publish(&kb, example_tasks(6), small_config()).unwrap();
        let w = WorkerId(0);
        if let WorkRequest::Golden(g) = docs.request_tasks(w) {
            let answers: Vec<_> = g
                .iter()
                .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                .collect();
            docs.submit_golden(w, &answers).unwrap();
        }
        docs.submit_answer(Answer {
            task: TaskId(0),
            worker: w,
            choice: 0,
        })
        .unwrap();
        // Snapshot → JSON → restore: every probability must round-trip
        // exactly, and the restored machine must serve identically.
        let json = serde_json::to_vec(&docs.snapshot()).unwrap();
        let mut restored = Docs::restore(serde_json::from_slice(&json).unwrap()).unwrap();
        assert_eq!(restored.answers_collected(), docs.answers_collected());
        assert_eq!(restored.golden_ids(), docs.golden_ids());
        for (a, b) in docs
            .engine()
            .states()
            .iter()
            .zip(restored.engine().states())
        {
            assert_eq!(a.s(), b.s());
        }
        // A returning worker is still known; assignments match exactly.
        assert_eq!(restored.request_tasks(w), docs.request_tasks(w));
        let ra = restored.finish().unwrap();
        let rb = docs.finish().unwrap();
        assert_eq!(ra.truths, rb.truths);
        assert_eq!(ra.truth_distributions, rb.truth_distributions);
    }

    #[test]
    fn registry_replays_snapshot_plus_event_suffix() {
        use docs_types::{CampaignEvent, CampaignId};
        let kb = table2_example_kb();
        let mut live = Docs::publish(&kb, example_tasks(6), small_config()).unwrap();
        let w = WorkerId(0);
        let golden_answers: Vec<_> = live
            .golden_ids()
            .to_vec()
            .iter()
            .map(|&gid| (gid, live.tasks()[gid.index()].ground_truth.unwrap()))
            .collect();
        let snapshot = serde_json::to_vec(&live.snapshot()).unwrap();
        // Events after the snapshot: golden init, one answer, one duplicate
        // (a deterministic rejection), finish.
        let events = [
            CampaignEvent::golden(w, golden_answers.clone()),
            CampaignEvent::answer(Answer {
                task: TaskId(1),
                worker: w,
                choice: 1,
            }),
            CampaignEvent::answer(Answer {
                task: TaskId(1),
                worker: w,
                choice: 0,
            }),
            CampaignEvent::finished(),
        ];
        let payloads: Vec<Vec<u8>> = events
            .iter()
            .map(|e| serde_json::to_vec(e).unwrap())
            .collect();
        // Drive the live machine through the same (accepted) transitions.
        live.submit_golden(w, &golden_answers).unwrap();
        live.submit_answer(Answer {
            task: TaskId(1),
            worker: w,
            choice: 1,
        })
        .unwrap();
        let reference = live.finish().unwrap();

        let mut registry = crate::CampaignRegistry::new();
        let stats = registry
            .replay(CampaignId(3), &snapshot, &payloads)
            .unwrap();
        assert_eq!(stats.applied, 3);
        assert_eq!(stats.rejected, 1, "duplicate answer skipped");
        let replayed = registry.get(CampaignId(3)).unwrap().report();
        assert_eq!(replayed.truths, reference.truths);
        assert_eq!(replayed.truth_distributions, reference.truth_distributions);
        // Garbage event bytes fail loudly.
        let err = registry
            .replay(CampaignId(4), &snapshot, &[b"not json".to_vec()])
            .unwrap_err();
        assert!(matches!(err, Error::Storage(_)), "{err}");
        // A `Published` marker disagreeing with the snapshot's task count
        // means the snapshot and log are mispaired — refuse to replay.
        let mispaired = serde_json::to_vec(&CampaignEvent::Published(docs_types::PublishedEvent {
            campaign: CampaignId(5),
            num_tasks: 999,
            num_golden: 2,
        }))
        .unwrap();
        let err = registry
            .replay(CampaignId(5), &snapshot, &[mispaired])
            .unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn validate_event_rejects_without_mutating() {
        let kb = table2_example_kb();
        let mut docs = Docs::publish(&kb, example_tasks(4), small_config()).unwrap();
        let good = Answer {
            task: TaskId(0),
            worker: WorkerId(0),
            choice: 0,
        };
        docs.submit_answer(good).unwrap();
        let before = docs.answers_collected();
        // Duplicate, unknown task, out-of-range choice.
        assert!(docs
            .validate_event(&docs_types::CampaignEvent::answer(good))
            .is_err());
        assert!(docs
            .validate_event(&docs_types::CampaignEvent::answer(Answer {
                task: TaskId(99),
                worker: WorkerId(1),
                choice: 0,
            }))
            .is_err());
        assert!(docs
            .validate_event(&docs_types::CampaignEvent::answer(Answer {
                task: TaskId(1),
                worker: WorkerId(1),
                choice: 9,
            }))
            .is_err());
        assert!(docs
            .validate_event(&docs_types::CampaignEvent::answer(Answer {
                task: TaskId(1),
                worker: WorkerId(1),
                choice: 1,
            }))
            .is_ok());
        assert_eq!(docs.answers_collected(), before, "validation is pure");
    }

    #[test]
    fn returning_workers_recover_history_from_storage() {
        let dir =
            std::env::temp_dir().join(format!("docs-system-test-{}-history", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let kb = table2_example_kb();
        let config = DocsConfig {
            storage_dir: Some(dir.clone()),
            ..small_config()
        };
        // First requester: worker 0 answers golden + tasks, state persisted.
        {
            let mut docs = Docs::publish(&kb, example_tasks(4), config.clone()).unwrap();
            let w = WorkerId(0);
            if let WorkRequest::Golden(g) = docs.request_tasks(w) {
                let answers: Vec<_> = g
                    .iter()
                    .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                    .collect();
                docs.submit_golden(w, &answers).unwrap();
            }
            docs.submit_answer(Answer {
                task: TaskId(0),
                worker: w,
                choice: 0,
            })
            .unwrap();
            docs.finish().unwrap();
        }
        // Second requester: the same worker is recognized — no golden HIT.
        {
            let mut docs = Docs::publish(&kb, example_tasks(4), config).unwrap();
            match docs.request_tasks(WorkerId(0)) {
                WorkRequest::Tasks(_) => {}
                other => panic!("returning worker should skip golden, got {other:?}"),
            }
            // A brand-new worker still gets golden tasks.
            match docs.request_tasks(WorkerId(5)) {
                WorkRequest::Golden(_) => {}
                other => panic!("new worker should get golden, got {other:?}"),
            }
        }
    }
}
