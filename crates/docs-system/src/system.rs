//! The [`Docs`] system object: requester API + platform request handlers.

use crate::DocsConfig;
use docs_core::dve;
use docs_core::golden::select_golden_tasks;
use docs_core::ota::{Assigner, AssignerConfig};
use docs_core::ti::{IncrementalTi, WorkerRegistry, WorkerStats};
use docs_kb::{EntityLinker, KnowledgeBase};
use docs_storage::ParamStore;
use docs_types::{Answer, ChoiceIndex, Error, Result, Task, TaskId, WorkerId};
use std::collections::HashSet;

/// Response to a worker's task request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkRequest {
    /// New worker: answer these golden tasks first (submitted via
    /// [`Docs::submit_golden`]).
    Golden(Vec<TaskId>),
    /// Known worker: the OTA-selected HIT.
    Tasks(Vec<TaskId>),
    /// Budget consumed or nothing left for this worker.
    Done,
}

/// Final report returned to the requester.
#[derive(Debug, Clone)]
pub struct RequesterReport {
    /// Inferred truth per task.
    pub truths: Vec<ChoiceIndex>,
    /// Probabilistic truths `s_i`.
    pub truth_distributions: Vec<Vec<f64>>,
    /// Total answers collected.
    pub answers_collected: usize,
    /// Accuracy against ground truth where available (evaluation only).
    pub accuracy: f64,
}

/// The deployed DOCS system for one requester batch.
#[derive(Debug)]
pub struct Docs {
    engine: IncrementalTi,
    golden_ids: Vec<TaskId>,
    seen_workers: HashSet<WorkerId>,
    config: DocsConfig,
    store: Option<ParamStore>,
}

impl Docs {
    /// Publishes a requester's tasks: runs DVE over the KB, selects golden
    /// tasks, opens the parameter database, and merges any stored history
    /// of returning workers (Theorem 1).
    ///
    /// Tasks may arrive without domain vectors — DVE fills them. Golden
    /// tasks must have ground truth (the paper has them manually labeled);
    /// `publish` verifies this after selection.
    pub fn publish(kb: &KnowledgeBase, mut tasks: Vec<Task>, config: DocsConfig) -> Result<Self> {
        if tasks.is_empty() {
            return Err(Error::Empty("task set"));
        }
        let m = kb.num_domains();
        // ① DVE.
        let linker = EntityLinker::new(kb, config.linker);
        for task in &mut tasks {
            if task.domain_vector.is_none() {
                let entities = linker.link(&task.text);
                task.domain_vector = Some(dve::domain_vector(&entities, m));
            }
        }
        // ② Golden selection.
        let golden_ids = select_golden_tasks(&tasks, config.num_golden);
        for &gid in &golden_ids {
            if tasks[gid.index()].ground_truth.is_none() {
                return Err(Error::Storage(format!(
                    "golden task {gid} lacks a manually labeled ground truth"
                )));
            }
        }
        // ③ Registry, seeded from the parameter database when present.
        let mut registry = WorkerRegistry::new(m, 0.7);
        let store = match &config.storage_dir {
            Some(dir) => Some(ParamStore::open(dir)?),
            None => None,
        };
        if let Some(store) = &store {
            for w in store.worker_ids() {
                if let Some(stats) = store.get_worker::<WorkerStats>(w)? {
                    if stats.num_domains() == m {
                        registry.put(w, stats);
                    }
                }
            }
        }
        let engine =
            IncrementalTi::new(tasks, registry, config.z).with_shards(config.task_shards.max(1));
        Ok(Docs {
            engine,
            golden_ids,
            seen_workers: HashSet::new(),
            config,
            store,
        })
    }

    /// The published tasks (with DVE-filled domain vectors).
    pub fn tasks(&self) -> &[Task] {
        self.engine.tasks()
    }

    /// The selected golden task ids.
    pub fn golden_ids(&self) -> &[TaskId] {
        &self.golden_ids
    }

    /// The inference engine (read access for experiment harnesses).
    pub fn engine(&self) -> &IncrementalTi {
        &self.engine
    }

    /// Answers ingested per task shard (length = `task_shards`): the
    /// ingestion-balance view runtimes use to check that the hash partition
    /// spreads TI load before trusting the sharded scan's parallelism.
    pub fn shard_ingestion(&self) -> Vec<u64> {
        let sharding = self.engine.sharding();
        (0..sharding.num_shards())
            .map(|s| sharding.ingested(s))
            .collect()
    }

    /// Total (non-golden) answers collected so far.
    pub fn answers_collected(&self) -> usize {
        self.engine.log().len()
    }

    /// Whether the collection budget is consumed: the flat budget is spent,
    /// or — with an adaptive stopping policy configured — every task has
    /// satisfied its stopping condition.
    pub fn budget_exhausted(&self) -> bool {
        if self.config.answers_per_task == 0 {
            return false;
        }
        if self.answers_collected() >= self.config.answers_per_task * self.tasks().len() {
            return true;
        }
        if let Some(policy) = self.config.stopping {
            let log = self.engine.log();
            return self
                .engine
                .states()
                .iter()
                .zip(self.engine.tasks())
                .all(|(state, task)| policy.should_stop(state, log.answer_count(task.id)));
        }
        false
    }

    /// Handles "a worker comes and requests tasks" (Figure 1, arrow ④).
    ///
    /// Unknown workers — not seen in this session and absent from the
    /// parameter database — get the golden HIT first; known workers get an
    /// OTA assignment.
    pub fn request_tasks(&mut self, worker: WorkerId) -> WorkRequest {
        if self.budget_exhausted() {
            return WorkRequest::Done;
        }
        let known = self.seen_workers.contains(&worker) || self.engine.registry().contains(worker);
        if !known {
            return WorkRequest::Golden(self.golden_ids.clone());
        }
        let quality = self.engine.registry().quality(worker);
        let assigner = Assigner::new(AssignerConfig {
            k: self.config.k_per_hit,
            max_answers_per_task: if self.config.answers_per_task == 0 {
                None
            } else {
                Some(self.config.answers_per_task)
            },
            linear_select: true,
        });
        let log = self.engine.log();
        let stopping = self.config.stopping;
        let states = self.engine.states();
        // The sharded scan: per-shard benefit computation merged by
        // `merge_top_k`. With `task_shards == 1` this walks the flat list;
        // either way the picks match the paper's single scan exactly.
        let picks = assigner.assign_sharded(
            &quality,
            self.engine.tasks(),
            states,
            self.engine.sharding(),
            |t| {
                // Adaptive stopping excludes confident tasks the same way
                // an already-answered task is excluded.
                log.has_answered(worker, t)
                    || stopping.is_some_and(|policy| {
                        policy.should_stop(&states[t.index()], log.answer_count(t))
                    })
            },
            |t| log.answer_count(t),
        );
        if picks.is_empty() {
            WorkRequest::Done
        } else {
            WorkRequest::Tasks(picks)
        }
    }

    /// Receives a new worker's golden answers and initializes her quality
    /// (Section 5.2).
    pub fn submit_golden(
        &mut self,
        worker: WorkerId,
        answers: &[(TaskId, ChoiceIndex)],
    ) -> Result<()> {
        let infos: Vec<(TaskId, (docs_types::DomainVector, ChoiceIndex))> = answers
            .iter()
            .map(|&(tid, _)| {
                let t = &self.engine.tasks()[tid.index()];
                Ok((
                    tid,
                    (
                        t.domain_vector().clone(),
                        t.ground_truth.ok_or(Error::UnknownTask(tid))?,
                    ),
                ))
            })
            .collect::<Result<_>>()?;
        let lookup = move |tid: TaskId| {
            infos
                .iter()
                .find(|(t, _)| *t == tid)
                .map(|(_, info)| info.clone())
                .expect("golden info present")
        };
        self.engine
            .init_worker_from_golden(worker, answers, &lookup, self.config.golden_smoothing);
        self.seen_workers.insert(worker);
        self.persist_worker(worker)?;
        Ok(())
    }

    /// Handles "a worker accomplishes tasks and submits answers"
    /// (Figure 1, arrow ⑤): incremental TI plus periodic full inference.
    pub fn submit_answer(&mut self, answer: Answer) -> Result<()> {
        self.seen_workers.insert(answer.worker);
        self.engine.submit(answer)?;
        self.persist_worker(answer.worker)?;
        self.persist_task(answer.task)?;
        Ok(())
    }

    /// Finalizes the batch: one last full inference, state persisted, report
    /// returned to the requester.
    pub fn finish(&mut self) -> Result<RequesterReport> {
        self.engine.run_full();
        if let Some(store) = &self.store {
            for (w, stats) in self.engine.registry().iter() {
                store.put_worker(w, stats)?;
            }
            for (i, state) in self.engine.states().iter().enumerate() {
                store.put_task(TaskId::from(i), state)?;
            }
            store.compact()?;
        }
        let truths = self.engine.truths();
        let accuracy = docs_crowd::accuracy_of(&truths, self.engine.tasks());
        Ok(RequesterReport {
            truth_distributions: self
                .engine
                .states()
                .iter()
                .map(|s| s.s().to_vec())
                .collect(),
            answers_collected: self.answers_collected(),
            truths,
            accuracy,
        })
    }

    fn persist_worker(&self, worker: WorkerId) -> Result<()> {
        if let (Some(store), Some(stats)) = (&self.store, self.engine.registry().get(worker)) {
            store.put_worker(worker, stats)?;
        }
        Ok(())
    }

    fn persist_task(&self, task: TaskId) -> Result<()> {
        if let Some(store) = &self.store {
            store.put_task(task, self.engine.state(task))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_kb::table2_example_kb;
    use docs_types::TaskBuilder;

    fn example_tasks(n: usize) -> Vec<Task> {
        // Texts built from the Table 2 KB aliases so DVE has signal.
        let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
        (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("Is {} great?", subjects[i % subjects.len()]))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(1)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    fn small_config() -> DocsConfig {
        DocsConfig {
            num_golden: 2,
            k_per_hit: 3,
            answers_per_task: 3,
            z: 10,
            ..Default::default()
        }
    }

    #[test]
    fn publish_runs_dve_and_selects_golden() {
        let kb = table2_example_kb();
        let docs = Docs::publish(&kb, example_tasks(6), small_config()).unwrap();
        assert_eq!(docs.golden_ids().len(), 2);
        for t in docs.tasks() {
            let r = t.domain_vector.as_ref().expect("DVE ran");
            assert!(docs_types::prob::is_distribution(r.as_slice()));
            // Kobe Bryant is a sports-only concept ⇒ sports-dominated
            // vector. ("Michael Jordan" alone legitimately leans films:
            // the player concept is multi-domain and the actor exists.)
            if t.text.contains("Kobe") {
                assert_eq!(r.dominant_domain(), 1);
            }
        }
    }

    #[test]
    fn new_workers_get_golden_then_tasks() {
        let kb = table2_example_kb();
        let mut docs = Docs::publish(&kb, example_tasks(6), small_config()).unwrap();
        let w = WorkerId(0);
        let req = docs.request_tasks(w);
        let golden = match req {
            WorkRequest::Golden(g) => g,
            other => panic!("expected golden request, got {other:?}"),
        };
        let answers: Vec<(TaskId, ChoiceIndex)> = golden
            .iter()
            .map(|&g| (g, docs.tasks()[g.index()].ground_truth.unwrap()))
            .collect();
        docs.submit_golden(w, &answers).unwrap();
        match docs.request_tasks(w) {
            WorkRequest::Tasks(tasks) => assert_eq!(tasks.len(), 3),
            other => panic!("expected tasks, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_stops_assignment() {
        let kb = table2_example_kb();
        let mut docs = Docs::publish(&kb, example_tasks(2), small_config()).unwrap();
        // Budget = 2 tasks × 3 answers = 6.
        let mut served = 0;
        'outer: for w in 0..10u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = docs.request_tasks(w) {
                let answers: Vec<_> = g
                    .iter()
                    .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                    .collect();
                docs.submit_golden(w, &answers).unwrap();
            }
            loop {
                match docs.request_tasks(w) {
                    WorkRequest::Tasks(tasks) => {
                        for t in tasks {
                            docs.submit_answer(Answer {
                                task: t,
                                worker: w,
                                choice: 0,
                            })
                            .unwrap();
                            served += 1;
                            if served > 100 {
                                panic!("budget never exhausted");
                            }
                        }
                    }
                    _ => continue 'outer,
                }
            }
        }
        assert!(docs.budget_exhausted());
        assert_eq!(docs.answers_collected(), 6);
        match docs.request_tasks(WorkerId(99)) {
            WorkRequest::Done => {}
            other => panic!("expected Done after budget, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_stopping_excludes_confident_tasks() {
        use docs_core::ti::{StoppingPolicy, StoppingRule};
        let kb = table2_example_kb();
        let config = DocsConfig {
            num_golden: 2,
            k_per_hit: 4,
            answers_per_task: 10,
            z: 1, // full inference after every answer, deterministic states
            stopping: Some(StoppingPolicy {
                rule: StoppingRule::ConfidenceAbove(0.95),
                min_answers: 2,
                max_answers: 10,
            }),
            ..Default::default()
        };
        let mut docs = Docs::publish(&kb, example_tasks(4), config).unwrap();
        // Three golden-perfect workers agree on task 0's truth.
        for w in 0..3u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = docs.request_tasks(w) {
                let answers: Vec<_> = g
                    .iter()
                    .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                    .collect();
                docs.submit_golden(w, &answers).unwrap();
            }
            docs.submit_answer(Answer {
                task: TaskId(0),
                worker: w,
                choice: docs.tasks()[0].ground_truth.unwrap(),
            })
            .unwrap();
        }
        // Task 0 is now confident; a fresh (golden-initialized) worker's
        // HIT must not contain it, even though its flat cap (10) is far off.
        let w = WorkerId(7);
        if let WorkRequest::Golden(g) = docs.request_tasks(w) {
            let answers: Vec<_> = g
                .iter()
                .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                .collect();
            docs.submit_golden(w, &answers).unwrap();
        }
        match docs.request_tasks(w) {
            WorkRequest::Tasks(tasks) => {
                assert!(
                    !tasks.contains(&TaskId(0)),
                    "confident task assigned anyway: {tasks:?}"
                );
                assert!(!tasks.is_empty());
            }
            other => panic!("expected tasks, got {other:?}"),
        }
    }

    #[test]
    fn all_tasks_stopped_exhausts_the_budget() {
        use docs_core::ti::{StoppingPolicy, StoppingRule};
        let kb = table2_example_kb();
        let config = DocsConfig {
            num_golden: 2,
            k_per_hit: 4,
            answers_per_task: 10,
            z: 1,
            stopping: Some(StoppingPolicy {
                rule: StoppingRule::ConfidenceAbove(0.9),
                min_answers: 2,
                max_answers: 10,
            }),
            ..Default::default()
        };
        let mut docs = Docs::publish(&kb, example_tasks(2), config).unwrap();
        for w in 0..3u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = docs.request_tasks(w) {
                let answers: Vec<_> = g
                    .iter()
                    .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                    .collect();
                docs.submit_golden(w, &answers).unwrap();
            }
            for t in 0..2usize {
                docs.submit_answer(Answer {
                    task: TaskId::from(t),
                    worker: w,
                    choice: docs.tasks()[t].ground_truth.unwrap(),
                })
                .unwrap();
            }
        }
        // 3 unanimous expert answers per task: both tasks stop well short
        // of the 10-answer flat budget (6 of 20 answers spent).
        assert!(docs.budget_exhausted());
        assert_eq!(docs.answers_collected(), 6);
        assert!(matches!(docs.request_tasks(WorkerId(9)), WorkRequest::Done));
    }

    #[test]
    fn shard_ingestion_accounts_for_every_answer() {
        let kb = table2_example_kb();
        let config = DocsConfig {
            task_shards: 3,
            ..small_config()
        };
        let mut docs = Docs::publish(&kb, example_tasks(6), config).unwrap();
        assert_eq!(docs.shard_ingestion(), vec![0, 0, 0]);
        for t in 0..6usize {
            docs.submit_answer(Answer {
                task: TaskId::from(t),
                worker: WorkerId(0),
                choice: 0,
            })
            .unwrap();
        }
        let ingestion = docs.shard_ingestion();
        assert_eq!(ingestion.len(), 3);
        assert_eq!(ingestion.iter().sum::<u64>(), 6);
    }

    #[test]
    fn finish_reports_truths() {
        let kb = table2_example_kb();
        let mut docs = Docs::publish(&kb, example_tasks(4), small_config()).unwrap();
        for w in 0..3u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = docs.request_tasks(w) {
                let answers: Vec<_> = g
                    .iter()
                    .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                    .collect();
                docs.submit_golden(w, &answers).unwrap();
            }
            for t in 0..4usize {
                let tid = TaskId::from(t);
                if !docs.engine().log().has_answered(w, tid) {
                    docs.submit_answer(Answer {
                        task: tid,
                        worker: w,
                        choice: docs.tasks()[t].ground_truth.unwrap(),
                    })
                    .unwrap();
                }
            }
        }
        let report = docs.finish().unwrap();
        assert_eq!(report.truths.len(), 4);
        assert_eq!(report.accuracy, 1.0);
        assert_eq!(report.answers_collected, 12);
    }

    #[test]
    fn returning_workers_recover_history_from_storage() {
        let dir =
            std::env::temp_dir().join(format!("docs-system-test-{}-history", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let kb = table2_example_kb();
        let config = DocsConfig {
            storage_dir: Some(dir.clone()),
            ..small_config()
        };
        // First requester: worker 0 answers golden + tasks, state persisted.
        {
            let mut docs = Docs::publish(&kb, example_tasks(4), config.clone()).unwrap();
            let w = WorkerId(0);
            if let WorkRequest::Golden(g) = docs.request_tasks(w) {
                let answers: Vec<_> = g
                    .iter()
                    .map(|&gid| (gid, docs.tasks()[gid.index()].ground_truth.unwrap()))
                    .collect();
                docs.submit_golden(w, &answers).unwrap();
            }
            docs.submit_answer(Answer {
                task: TaskId(0),
                worker: w,
                choice: 0,
            })
            .unwrap();
            docs.finish().unwrap();
        }
        // Second requester: the same worker is recognized — no golden HIT.
        {
            let mut docs = Docs::publish(&kb, example_tasks(4), config).unwrap();
            match docs.request_tasks(WorkerId(0)) {
                WorkRequest::Tasks(_) => {}
                other => panic!("returning worker should skip golden, got {other:?}"),
            }
            // A brand-new worker still gets golden tasks.
            match docs.request_tasks(WorkerId(5)) {
                WorkRequest::Golden(_) => {}
                other => panic!("new worker should get golden, got {other:?}"),
            }
        }
    }
}
