//! Per-campaign replication watermarks — the sequence-number accounting a
//! follower keeps (and acks back to the primary) while applying the
//! shipped log.
//!
//! Every durable campaign event carries the per-campaign sequence number
//! the primary's log assigned it. A follower's **watermark** for a
//! campaign is the highest sequence it has fully applied; the replication
//! invariant is that the follower's state at watermark `w` serializes to
//! exactly the bytes the primary's state had after its `w`-th event. The
//! stream may resend (a bootstrap scan overlapping the live subscription)
//! but must never skip: resends are classified [`WatermarkAdmission::Stale`]
//! and dropped, the next expected sequence applies, and anything beyond it
//! is a [`WatermarkAdmission::Gap`] — a protocol error the applier
//! surfaces instead of serving wrong state.

use docs_types::CampaignId;
use std::collections::BTreeMap;

/// How an incoming sequence number relates to a campaign's watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatermarkAdmission {
    /// At or below the watermark: already applied (a resend) — skip it.
    Stale,
    /// Exactly `watermark + 1`: apply it and advance.
    Next,
    /// Beyond `watermark + 1`: events are missing — refuse to apply.
    Gap {
        /// The sequence number the stream was expected to carry.
        expected: u64,
    },
}

/// The per-campaign applied-sequence table of one follower (`BTreeMap`
/// keeps reports deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaWatermarks {
    applied: BTreeMap<CampaignId, u64>,
}

impl ReplicaWatermarks {
    /// An empty table (no campaign applied anything yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// The highest sequence applied for a campaign (`0` = nothing, not
    /// even a snapshot).
    pub fn get(&self, campaign: CampaignId) -> u64 {
        self.applied.get(&campaign).copied().unwrap_or(0)
    }

    /// Whether the campaign has a watermark at all. Distinguishes "never
    /// bootstrapped" from "bootstrapped at sequence 0": a creation
    /// baseline snapshot covers sequence 0, so its install must key on
    /// *presence*, not on `get() == 0`.
    pub fn contains(&self, campaign: CampaignId) -> bool {
        self.applied.contains_key(&campaign)
    }

    /// Classifies an incoming event sequence against the campaign's
    /// watermark. A campaign with no watermark expects sequence 1 — unless
    /// a snapshot [`ReplicaWatermarks::advance_to`]d it first.
    pub fn classify(&self, campaign: CampaignId, seq: u64) -> WatermarkAdmission {
        let watermark = self.get(campaign);
        if seq <= watermark {
            WatermarkAdmission::Stale
        } else if seq == watermark + 1 {
            WatermarkAdmission::Next
        } else {
            WatermarkAdmission::Gap {
                expected: watermark + 1,
            }
        }
    }

    /// Moves a campaign's watermark forward to `seq` (event applied, or
    /// snapshot installed at `seq`). Never moves backward — a stale
    /// snapshot cannot roll back an already-applied suffix.
    pub fn advance_to(&mut self, campaign: CampaignId, seq: u64) {
        let slot = self.applied.entry(campaign).or_insert(0);
        *slot = (*slot).max(seq);
    }

    /// Every campaign's watermark, ascending by campaign id.
    pub fn all(&self) -> Vec<(CampaignId, u64)> {
        self.applied.iter().map(|(c, s)| (*c, *s)).collect()
    }

    /// Number of campaigns with a watermark.
    pub fn len(&self) -> usize {
        self.applied.len()
    }

    /// True when no campaign has applied anything.
    pub fn is_empty(&self) -> bool {
        self.applied.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CampaignId = CampaignId(0);
    const C1: CampaignId = CampaignId(1);

    #[test]
    fn classification_covers_stale_next_and_gap() {
        let mut wm = ReplicaWatermarks::new();
        assert!(wm.is_empty());
        assert!(!wm.contains(C0));
        // A baseline snapshot at sequence 0 still registers presence.
        wm.advance_to(C0, 0);
        assert!(wm.contains(C0));
        assert_eq!(wm.get(C0), 0);
        // A fresh campaign expects sequence 1.
        assert_eq!(wm.classify(C0, 1), WatermarkAdmission::Next);
        assert_eq!(wm.classify(C0, 3), WatermarkAdmission::Gap { expected: 1 });
        wm.advance_to(C0, 1);
        assert_eq!(wm.get(C0), 1);
        assert_eq!(wm.classify(C0, 1), WatermarkAdmission::Stale);
        assert_eq!(wm.classify(C0, 2), WatermarkAdmission::Next);
        // Campaigns are independent.
        assert_eq!(wm.classify(C1, 1), WatermarkAdmission::Next);
        assert_eq!(wm.len(), 1);
    }

    #[test]
    fn snapshots_fast_forward_but_never_roll_back() {
        let mut wm = ReplicaWatermarks::new();
        // Mid-campaign bootstrap: a snapshot at seq 7 skips the prefix.
        wm.advance_to(C0, 7);
        assert_eq!(wm.classify(C0, 7), WatermarkAdmission::Stale);
        assert_eq!(wm.classify(C0, 8), WatermarkAdmission::Next);
        // A stale snapshot resent later must not rewind the applied suffix.
        wm.advance_to(C0, 3);
        assert_eq!(wm.get(C0), 7);
        assert_eq!(wm.all(), vec![(C0, 7)]);
    }
}
