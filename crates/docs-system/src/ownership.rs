//! Campaign ownership accounting for multi-primary clusters — which
//! campaigns this node may mutate, which it has fenced away, and which it
//! is currently adopting through a live migration.
//!
//! Each shard of a primary pool keeps one [`OwnershipTable`]. The write
//! path consults [`OwnershipTable::admit_mutation`] before applying any
//! mutation; everything else (reads, the replication plane, cluster
//! control ops) bypasses it. Three facts can divert a mutation, checked in
//! this order:
//!
//! 1. **Intake** — the campaign is mid-migration *into* this node
//!    (`begin_intake`): the source still owns the write path, so mutations
//!    redirect there while the replication plane is admitted.
//! 2. **Fence** — the campaign was migrated *away* (`fence`): the log was
//!    hardened at a recorded watermark and every later mutation redirects
//!    to the new owner. The fence is the linearization point of a
//!    migration — nothing commits locally past the fenced sequence.
//! 3. **Directory** — an installed [`ClusterMap`] places the campaign on
//!    another node: redirect to that owner. Campaigns adopted by a
//!    completed migration are tracked locally and override a stale map
//!    until a fresher epoch arrives.
//!
//! A node with no installed map and no fences (every single-node
//! deployment) admits everything — the table is pay-for-what-you-use.

use docs_types::{CampaignId, ClusterMap, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// What [`OwnershipTable::admit_mutation`] decided for one mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationAdmission {
    /// This node owns the campaign's write path — apply the mutation.
    Allowed,
    /// Another node owns it — answer `WrongNode { owner }` so the client
    /// can retry there.
    Redirect {
        /// The node that owns the campaign's write path.
        owner: NodeId,
    },
}

/// A fence record: the campaign was handed to `owner`, with the local log
/// hardened through `watermark` at the moment of the fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fence {
    owner: NodeId,
    watermark: u64,
}

/// One shard's view of campaign ownership inside a cluster.
#[derive(Debug, Clone)]
pub struct OwnershipTable {
    node: NodeId,
    fences: BTreeMap<CampaignId, Fence>,
    intake: BTreeMap<CampaignId, NodeId>,
    adopted: BTreeSet<CampaignId>,
    map: Option<ClusterMap>,
}

impl OwnershipTable {
    /// A fresh table for a node that owns everything it hosts.
    pub fn new(node: NodeId) -> Self {
        OwnershipTable {
            node,
            fences: BTreeMap::new(),
            intake: BTreeMap::new(),
            adopted: BTreeSet::new(),
            map: None,
        }
    }

    /// The node this table accounts for.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Decides whether a mutation of `campaign` may apply here, or names
    /// the owner it must be redirected to.
    pub fn admit_mutation(&self, campaign: CampaignId) -> MutationAdmission {
        if let Some(&src) = self.intake.get(&campaign) {
            return MutationAdmission::Redirect { owner: src };
        }
        if let Some(fence) = self.fences.get(&campaign) {
            return MutationAdmission::Redirect { owner: fence.owner };
        }
        if self.adopted.contains(&campaign) {
            return MutationAdmission::Allowed;
        }
        if let Some(map) = &self.map {
            let owner = map.owner(campaign);
            if owner != self.node {
                return MutationAdmission::Redirect { owner };
            }
        }
        MutationAdmission::Allowed
    }

    /// Whether the replication plane may feed `campaign` on this node
    /// even though it runs as a primary — true exactly while the campaign
    /// is in migration intake.
    pub fn accepts_replication(&self, campaign: CampaignId) -> bool {
        self.intake.contains_key(&campaign)
    }

    /// Fences `campaign` away to `owner`: the local log is hardened
    /// through `watermark` and every later mutation redirects. Revokes any
    /// local adoption — ownership moved on.
    pub fn fence(&mut self, campaign: CampaignId, owner: NodeId, watermark: u64) {
        self.adopted.remove(&campaign);
        self.fences.insert(campaign, Fence { owner, watermark });
    }

    /// The hardened watermark recorded when `campaign` was fenced, if it
    /// was.
    pub fn fence_watermark(&self, campaign: CampaignId) -> Option<u64> {
        self.fences.get(&campaign).map(|f| f.watermark)
    }

    /// Whether `campaign` is fenced away from this node.
    pub fn is_fenced(&self, campaign: CampaignId) -> bool {
        self.fences.contains_key(&campaign)
    }

    /// Starts migration intake: `campaign` is being shipped here from
    /// `src`, which keeps the write path until the hand-off completes.
    pub fn begin_intake(&mut self, campaign: CampaignId, src: NodeId) {
        self.intake.insert(campaign, src);
    }

    /// Completes migration intake: this node adopts the campaign's write
    /// path (clearing any old fence from a previous round-trip).
    pub fn complete_intake(&mut self, campaign: CampaignId) {
        self.intake.remove(&campaign);
        self.fences.remove(&campaign);
        self.adopted.insert(campaign);
    }

    /// Installs a routing directory if it is fresher than the current one.
    /// The newer map is authoritative: fences it contradicts and adoptions
    /// it covers are dropped. Returns whether the map was installed.
    pub fn install_map(&mut self, map: &ClusterMap) -> bool {
        if let Some(current) = &self.map {
            if map.epoch() <= current.epoch() {
                return false;
            }
        }
        let node = self.node;
        self.fences.retain(|c, f| map.owner(*c) == f.owner);
        self.adopted.retain(|c| map.owner(*c) != node);
        self.map = Some(map.clone());
        true
    }

    /// Epoch of the installed directory (`0` when none was installed —
    /// indistinguishable from a fresh epoch-0 map, and routed identically).
    pub fn map_epoch(&self) -> u64 {
        self.map.as_ref().map(ClusterMap::epoch).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: CampaignId = CampaignId(3);
    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    #[test]
    fn a_bare_table_admits_everything() {
        let table = OwnershipTable::new(N0);
        assert_eq!(table.admit_mutation(C), MutationAdmission::Allowed);
        assert!(!table.accepts_replication(C));
        assert_eq!(table.map_epoch(), 0);
    }

    #[test]
    fn fencing_redirects_mutations_and_records_the_watermark() {
        let mut table = OwnershipTable::new(N0);
        table.fence(C, N1, 17);
        assert_eq!(
            table.admit_mutation(C),
            MutationAdmission::Redirect { owner: N1 }
        );
        assert_eq!(table.fence_watermark(C), Some(17));
        assert!(table.is_fenced(C));
        // Other campaigns are untouched.
        assert_eq!(
            table.admit_mutation(CampaignId(4)),
            MutationAdmission::Allowed
        );
    }

    #[test]
    fn intake_redirects_to_the_source_but_admits_replication() {
        let mut table = OwnershipTable::new(N1);
        table.begin_intake(C, N0);
        assert_eq!(
            table.admit_mutation(C),
            MutationAdmission::Redirect { owner: N0 }
        );
        assert!(table.accepts_replication(C));
        table.complete_intake(C);
        assert_eq!(table.admit_mutation(C), MutationAdmission::Allowed);
        assert!(!table.accepts_replication(C));
    }

    #[test]
    fn adoption_overrides_a_stale_directory_until_a_fresher_epoch() {
        let mut table = OwnershipTable::new(N1);
        // Stale epoch-0 directory: everything lives on n0.
        let stale = ClusterMap::new(N0);
        assert!(table.install_map(&stale));
        assert_eq!(
            table.admit_mutation(C),
            MutationAdmission::Redirect { owner: N0 }
        );
        // Migration completes before the flipped map arrives: the adoption
        // must win over the stale directory.
        table.begin_intake(C, N0);
        table.complete_intake(C);
        assert_eq!(table.admit_mutation(C), MutationAdmission::Allowed);
        // The flipped map confirms the adoption and supersedes it.
        let mut flipped = ClusterMap::new(N0);
        flipped.assign(C, N1);
        assert!(table.install_map(&flipped));
        assert_eq!(table.map_epoch(), 1);
        assert_eq!(table.admit_mutation(C), MutationAdmission::Allowed);
        // Re-installing the same epoch is refused.
        assert!(!table.install_map(&flipped));
    }

    #[test]
    fn a_fresher_map_clears_fences_it_contradicts() {
        let mut table = OwnershipTable::new(N0);
        let base = ClusterMap::new(N0);
        assert!(table.install_map(&base));
        table.fence(C, N1, 9);
        // A fresher map that moves the campaign *back* to n0 revokes the
        // fence (the round-trip migration's intake already cleared it in
        // practice; the directory install is the belt to that suspender).
        let mut back = ClusterMap::new(N0);
        back.assign(C, N0);
        assert!(table.install_map(&back));
        assert_eq!(table.admit_mutation(C), MutationAdmission::Allowed);
        assert_eq!(table.fence_watermark(C), None);
    }
}
