//! Campaigns: the multi-requester registry plus the single-campaign
//! simulation loop used by the examples and the end-to-end experiments.
//!
//! The paper's deployment serves exactly one requester batch; the service
//! runtime hosts many. [`CampaignRegistry`] owns the concurrent [`Docs`]
//! instances keyed by [`CampaignId`], allocates ids densely, and exposes the
//! deterministic campaign→shard mapping the service's shard pool routes by.
//! The registry itself is single-threaded state — the service runs one
//! registry per shard thread, so a campaign's state machine is only ever
//! touched by its owning shard (share-nothing, no locks).

use crate::{CampaignSnapshot, Docs, DocsConfig, WorkRequest};
use docs_crowd::{AnswerModel, WorkerPopulation};
use docs_kb::KnowledgeBase;
use docs_types::{codec, Answer, CampaignEvent, CampaignId, Error, Result, Task, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Outcome of replaying one campaign's snapshot + log suffix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Events applied to the restored state.
    pub applied: u64,
    /// Events whose application was rejected (deterministic rejections —
    /// e.g. a duplicate answer that was already rejected live; a healthy
    /// log contains none because commands are validated before logging).
    pub rejected: u64,
}

/// Owner of many concurrent campaigns, keyed by [`CampaignId`].
#[derive(Debug, Default)]
pub struct CampaignRegistry {
    campaigns: HashMap<CampaignId, Docs>,
    /// Next id to allocate (monotone; ids of removed campaigns are not
    /// reused, so routing stays stable for a campaign's whole life).
    next_id: u32,
}

impl CampaignRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a published system under a freshly allocated id.
    ///
    /// For *standalone* registries (one registry owning all campaigns).
    /// Inside the sharded service, ids must come from the service's
    /// central allocator and land on the shard `CampaignId::shard` names —
    /// shard loops therefore use [`CampaignRegistry::insert`] with the
    /// pre-routed id, never this method: an id allocated by one shard's
    /// local counter would generally hash to a *different* shard, making
    /// the campaign unroutable.
    pub fn create(&mut self, docs: Docs) -> CampaignId {
        let id = CampaignId(self.next_id);
        self.next_id += 1;
        self.campaigns.insert(id, docs);
        id
    }

    /// Registers a published system under a caller-chosen id (the service
    /// allocates ids centrally but shards insert locally). Fails on reuse.
    pub fn insert(&mut self, id: CampaignId, docs: Docs) -> Result<()> {
        if self.campaigns.contains_key(&id) {
            return Err(Error::Storage(format!("campaign {id} already exists")));
        }
        self.next_id = self.next_id.max(id.0 + 1);
        self.campaigns.insert(id, docs);
        Ok(())
    }

    /// Read access to one campaign.
    pub fn get(&self, id: CampaignId) -> Option<&Docs> {
        self.campaigns.get(&id)
    }

    /// Write access to one campaign (request handling mutates TI state).
    pub fn get_mut(&mut self, id: CampaignId) -> Option<&mut Docs> {
        self.campaigns.get_mut(&id)
    }

    /// Removes a finished campaign, returning its final state.
    pub fn remove(&mut self, id: CampaignId) -> Option<Docs> {
        self.campaigns.remove(&id)
    }

    /// Registered campaign ids, ascending.
    pub fn ids(&self) -> Vec<CampaignId> {
        let mut ids: Vec<CampaignId> = self.campaigns.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of live campaigns.
    pub fn len(&self) -> usize {
        self.campaigns.len()
    }

    /// True when no campaigns are registered.
    pub fn is_empty(&self) -> bool {
        self.campaigns.is_empty()
    }

    /// Rebuilds one campaign from its serialized snapshot plus the ordered
    /// event suffix the write-ahead log recovered after it, and registers
    /// the result under `id` — the recovery path of the durable service.
    ///
    /// Event payloads are the encoded [`CampaignEvent`]s the service logged
    /// — the compact binary codec records current builds write, or the JSON
    /// that older builds wrote (the codec sniffs the magic byte, so a log
    /// may freely mix both). Malformed bytes fail loudly
    /// ([`Error::Storage`]), while events whose *application* is rejected
    /// are counted and skipped (the same rejection happened live,
    /// deterministically).
    ///
    /// The events are generic over any borrowable byte container so the
    /// zero-copy recovery path can pass arena-backed views without first
    /// copying each payload into an owned `Vec<u8>`.
    pub fn replay(
        &mut self,
        id: CampaignId,
        snapshot: &[u8],
        events: &[impl AsRef<[u8]>],
    ) -> Result<ReplayStats> {
        let snapshot: CampaignSnapshot = codec::from_bytes(snapshot)
            .map_err(|e| Error::Storage(format!("campaign {id} snapshot: {e}")))?;
        let mut docs = Docs::restore(snapshot)?;
        let mut stats = ReplayStats::default();
        for (i, raw) in events.iter().enumerate() {
            let event: CampaignEvent = codec::decode_event(raw.as_ref())
                .map_err(|e| Error::Storage(format!("campaign {id} event {i}: {e}")))?;
            // A `Published` marker pins the shape the snapshot must
            // satisfy — a mismatch means the snapshot and log belong to
            // different campaigns (mispaired files, tampering).
            if let CampaignEvent::Published(p) = &event {
                if p.num_tasks as usize != docs.tasks().len() {
                    return Err(Error::Storage(format!(
                        "campaign {id} snapshot/log mismatch: log published {} tasks, \
                         snapshot holds {}",
                        p.num_tasks,
                        docs.tasks().len()
                    )));
                }
            }
            match docs.apply(&event) {
                Ok(()) => stats.applied += 1,
                Err(Error::Storage(msg)) => {
                    // A storage failure during replay (e.g. the campaign's
                    // parameter database is unwritable) is not deterministic
                    // rejection — surface it.
                    return Err(Error::Storage(format!("campaign {id} event {i}: {msg}")));
                }
                Err(_) => stats.rejected += 1,
            }
        }
        self.insert(id, docs)?;
        Ok(stats)
    }

    /// Installs a campaign from a serialized snapshot, replacing any
    /// existing registration under `id` — the follower-replica bootstrap
    /// (and fast-forward) path. Unlike [`CampaignRegistry::replay`], no
    /// event suffix is applied here: a follower's events arrive as a live
    /// stream after the snapshot, each applied through the same
    /// deterministic `validate_event`/`apply` transition the primary used.
    pub fn install_snapshot(&mut self, id: CampaignId, snapshot: &[u8]) -> Result<()> {
        let snapshot: CampaignSnapshot = codec::from_bytes(snapshot)
            .map_err(|e| Error::Storage(format!("campaign {id} snapshot: {e}")))?;
        let docs = Docs::restore(snapshot)?;
        self.next_id = self.next_id.max(id.0 + 1);
        self.campaigns.insert(id, docs);
        Ok(())
    }

    /// Drains the registry into `(id, state)` pairs, ascending by id.
    pub fn into_campaigns(mut self) -> Vec<(CampaignId, Docs)> {
        let mut out: Vec<(CampaignId, Docs)> = self.campaigns.drain().collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }
}

/// Outcome of a simulated campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Inferred truth per task.
    pub truths: Vec<usize>,
    /// Accuracy against the dataset's ground truth.
    pub accuracy: f64,
    /// Answers collected (excluding golden answers).
    pub answers_collected: usize,
    /// Number of distinct workers that participated.
    pub workers_used: usize,
}

/// Publishes `tasks` through [`Docs`] and drives a simulated worker
/// population against it until the collection budget is consumed: workers
/// arrive at random, answer the golden HIT on first contact, then receive
/// OTA assignments and submit simulated answers.
pub fn run_campaign(
    kb: &KnowledgeBase,
    tasks: Vec<Task>,
    population: &WorkerPopulation,
    config: DocsConfig,
    seed: u64,
) -> Result<CampaignReport> {
    let mut docs = Docs::publish(kb, tasks, config)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut participated = std::collections::HashSet::new();

    let budget_guard = docs.tasks().len() * 200;
    let mut arrivals = 0usize;
    while !docs.budget_exhausted() && arrivals < budget_guard {
        arrivals += 1;
        let w = WorkerId::from(rng.gen_range(0..population.len()));
        match docs.request_tasks(w) {
            WorkRequest::Golden(golden) => {
                let answers: Vec<_> = golden
                    .iter()
                    .map(|&gid| {
                        let task = &docs.tasks()[gid.index()];
                        let choice =
                            population
                                .worker(w)
                                .answer(task, AnswerModel::DomainUniform, &mut rng);
                        (gid, choice)
                    })
                    .collect();
                docs.submit_golden(w, &answers)?;
                participated.insert(w);
            }
            WorkRequest::Tasks(assigned) => {
                participated.insert(w);
                for tid in assigned {
                    let task = &docs.tasks()[tid.index()];
                    let choice =
                        population
                            .worker(w)
                            .answer(task, AnswerModel::DomainUniform, &mut rng);
                    docs.submit_answer(Answer {
                        task: tid,
                        worker: w,
                        choice,
                    })?;
                }
            }
            WorkRequest::Done => {
                // This worker has nothing left; another arrival may still
                // find work unless the global budget is done.
                if docs.budget_exhausted() {
                    break;
                }
            }
        }
    }

    let report = docs.finish()?;
    Ok(CampaignReport {
        truths: report.truths,
        accuracy: report.accuracy,
        answers_collected: report.answers_collected,
        workers_used: participated.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_datasets::pools::domains::SPORTS;
    use docs_types::TaskBuilder;

    fn tiny_docs() -> Docs {
        let kb = docs_kb::table2_example_kb();
        let tasks: Vec<Task> = (0..4)
            .map(|i| {
                TaskBuilder::new(i, format!("Is Kobe Bryant great? ({i})"))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(1)
                    .build()
                    .unwrap()
            })
            .collect();
        Docs::publish(
            &kb,
            tasks,
            DocsConfig {
                num_golden: 2,
                k_per_hit: 2,
                answers_per_task: 2,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn registry_allocates_dense_ids_and_owns_state() {
        let mut reg = CampaignRegistry::new();
        assert!(reg.is_empty());
        let a = reg.create(tiny_docs());
        let b = reg.create(tiny_docs());
        assert_eq!((a, b), (CampaignId(0), CampaignId(1)));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.ids(), vec![a, b]);
        // Request handling goes through get_mut.
        let req = reg.get_mut(a).unwrap().request_tasks(WorkerId(0));
        assert!(matches!(req, WorkRequest::Golden(_)));
        // Removal returns the state and frees the slot without id reuse.
        let docs = reg.remove(a).unwrap();
        assert_eq!(docs.tasks().len(), 4);
        assert!(reg.get(a).is_none());
        assert_eq!(reg.create(tiny_docs()), CampaignId(2));
    }

    #[test]
    fn insert_rejects_duplicate_ids_and_advances_allocation() {
        let mut reg = CampaignRegistry::new();
        reg.insert(CampaignId(7), tiny_docs()).unwrap();
        assert!(reg.insert(CampaignId(7), tiny_docs()).is_err());
        // Central allocation continues past explicitly inserted ids.
        assert_eq!(reg.create(tiny_docs()), CampaignId(8));
        let drained = reg.into_campaigns();
        assert_eq!(
            drained.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![CampaignId(7), CampaignId(8)]
        );
    }

    #[test]
    fn campaign_truths_are_identical_for_every_task_shard_count() {
        // The acceptance bar of the sharded runtime: same seeded workload,
        // byte-identical truths regardless of how the scan is partitioned.
        let kb = docs_datasets::curated_kb();
        let players = ["Michael Jordan", "Kobe Bryant", "Stephen Curry"];
        let tasks: Vec<Task> = (0..30)
            .map(|i| {
                TaskBuilder::new(i, format!("Is {} a great player?", players[i % 3]))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(SPORTS)
                    .build()
                    .unwrap()
            })
            .collect();
        let population = WorkerPopulation::from_qualities(
            (0..12)
                .map(|i| {
                    let mut q = vec![0.6; 26];
                    q[SPORTS] = [0.95, 0.9, 0.6, 0.55][i % 4];
                    q
                })
                .collect(),
        );
        let base = DocsConfig {
            num_golden: 4,
            k_per_hit: 4,
            answers_per_task: 5,
            ..Default::default()
        };
        let report_for = |task_shards: usize| {
            run_campaign(
                &kb,
                tasks.clone(),
                &population,
                DocsConfig {
                    task_shards,
                    ..base.clone()
                },
                0xC0FFEE,
            )
            .unwrap()
        };
        let flat = report_for(1);
        for shards in [2, 4, 8] {
            let sharded = report_for(shards);
            assert_eq!(sharded.truths, flat.truths, "task_shards = {shards}");
            assert_eq!(sharded.answers_collected, flat.answers_collected);
        }
    }

    #[test]
    fn campaign_on_curated_kb_reaches_high_accuracy() {
        let kb = docs_datasets::curated_kb();
        // 30 sports yes/no tasks over the curated KB.
        let players = [
            "Michael Jordan",
            "Kobe Bryant",
            "Stephen Curry",
            "LeBron James",
            "Tim Duncan",
            "Magic Johnson",
        ];
        let tasks: Vec<Task> = (0..60)
            .map(|i| {
                TaskBuilder::new(
                    i,
                    format!("Is {} a great player?", players[i % players.len()]),
                )
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(SPORTS)
                .build()
                .unwrap()
            })
            .collect();
        // Mixed population with real sports expertise (index 23 = Sports):
        // a few experts, several mediocre workers, one spammer. OTA should
        // route tasks toward the experts.
        let sports_quality = [0.95, 0.92, 0.9, 0.65, 0.6, 0.6, 0.55, 0.5];
        let population = WorkerPopulation::from_qualities(
            (0..24)
                .map(|i| {
                    let mut q = vec![0.6; 26];
                    q[SPORTS] = sports_quality[i % sports_quality.len()];
                    q
                })
                .collect(),
        );
        let config = DocsConfig {
            num_golden: 10,
            k_per_hit: 5,
            answers_per_task: 8,
            ..Default::default()
        };
        let report = run_campaign(&kb, tasks, &population, config, 0xBEEF).unwrap();
        assert_eq!(report.answers_collected, 480);
        assert!(report.accuracy >= 0.85, "accuracy {}", report.accuracy);
        assert!(report.workers_used > 1);
    }
}
