//! Running a full simulated crowdsourcing campaign through the system —
//! the glue used by the examples and the end-to-end experiments.

use crate::{Docs, DocsConfig, WorkRequest};
use docs_crowd::{AnswerModel, WorkerPopulation};
use docs_kb::KnowledgeBase;
use docs_types::{Answer, Result, Task, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome of a simulated campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Inferred truth per task.
    pub truths: Vec<usize>,
    /// Accuracy against the dataset's ground truth.
    pub accuracy: f64,
    /// Answers collected (excluding golden answers).
    pub answers_collected: usize,
    /// Number of distinct workers that participated.
    pub workers_used: usize,
}

/// Publishes `tasks` through [`Docs`] and drives a simulated worker
/// population against it until the collection budget is consumed: workers
/// arrive at random, answer the golden HIT on first contact, then receive
/// OTA assignments and submit simulated answers.
pub fn run_campaign(
    kb: &KnowledgeBase,
    tasks: Vec<Task>,
    population: &WorkerPopulation,
    config: DocsConfig,
    seed: u64,
) -> Result<CampaignReport> {
    let mut docs = Docs::publish(kb, tasks, config)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut participated = std::collections::HashSet::new();

    let budget_guard = docs.tasks().len() * 200;
    let mut arrivals = 0usize;
    while !docs.budget_exhausted() && arrivals < budget_guard {
        arrivals += 1;
        let w = WorkerId::from(rng.gen_range(0..population.len()));
        match docs.request_tasks(w) {
            WorkRequest::Golden(golden) => {
                let answers: Vec<_> = golden
                    .iter()
                    .map(|&gid| {
                        let task = &docs.tasks()[gid.index()];
                        let choice =
                            population
                                .worker(w)
                                .answer(task, AnswerModel::DomainUniform, &mut rng);
                        (gid, choice)
                    })
                    .collect();
                docs.submit_golden(w, &answers)?;
                participated.insert(w);
            }
            WorkRequest::Tasks(assigned) => {
                participated.insert(w);
                for tid in assigned {
                    let task = &docs.tasks()[tid.index()];
                    let choice =
                        population
                            .worker(w)
                            .answer(task, AnswerModel::DomainUniform, &mut rng);
                    docs.submit_answer(Answer {
                        task: tid,
                        worker: w,
                        choice,
                    })?;
                }
            }
            WorkRequest::Done => {
                // This worker has nothing left; another arrival may still
                // find work unless the global budget is done.
                if docs.budget_exhausted() {
                    break;
                }
            }
        }
    }

    let report = docs.finish()?;
    Ok(CampaignReport {
        truths: report.truths,
        accuracy: report.accuracy,
        answers_collected: report.answers_collected,
        workers_used: participated.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_datasets::pools::domains::SPORTS;
    use docs_types::TaskBuilder;

    #[test]
    fn campaign_on_curated_kb_reaches_high_accuracy() {
        let kb = docs_datasets::curated_kb();
        // 30 sports yes/no tasks over the curated KB.
        let players = [
            "Michael Jordan",
            "Kobe Bryant",
            "Stephen Curry",
            "LeBron James",
            "Tim Duncan",
            "Magic Johnson",
        ];
        let tasks: Vec<Task> = (0..60)
            .map(|i| {
                TaskBuilder::new(
                    i,
                    format!("Is {} a great player?", players[i % players.len()]),
                )
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(SPORTS)
                .build()
                .unwrap()
            })
            .collect();
        // Mixed population with real sports expertise (index 23 = Sports):
        // a few experts, several mediocre workers, one spammer. OTA should
        // route tasks toward the experts.
        let sports_quality = [0.95, 0.92, 0.9, 0.65, 0.6, 0.6, 0.55, 0.5];
        let population = WorkerPopulation::from_qualities(
            (0..24)
                .map(|i| {
                    let mut q = vec![0.6; 26];
                    q[SPORTS] = sports_quality[i % sports_quality.len()];
                    q
                })
                .collect(),
        );
        let config = DocsConfig {
            num_golden: 10,
            k_per_hit: 5,
            answers_per_task: 8,
            ..Default::default()
        };
        let report = run_campaign(&kb, tasks, &population, config, 0xBEEF).unwrap();
        assert_eq!(report.answers_collected, 480);
        assert!(report.accuracy >= 0.85, "accuracy {}", report.accuracy);
        assert!(report.workers_used > 1);
    }
}
