//! System configuration.

use docs_core::ti::StoppingPolicy;
use docs_kb::LinkerConfig;
use docs_storage::FlushPolicy;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Deployment knobs of the DOCS system, defaulting to the paper's values.
///
/// The config is serializable because it is part of a campaign's snapshot:
/// a recovered campaign must resume with the exact knobs (budget, stopping
/// policy, shard geometry, …) it was published with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DocsConfig {
    /// Entity-linker configuration for DVE (top-20 concepts by default).
    pub linker: LinkerConfig,
    /// Context-coherence weight used by the linker.
    pub context_weight: f64,
    /// Number of golden tasks (`n′ = 20` in the deployment).
    pub num_golden: usize,
    /// Golden-initialization smoothing pseudo-weight.
    pub golden_smoothing: f64,
    /// Full iterative inference every `z` submissions (`z = 100`).
    pub z: usize,
    /// Tasks per HIT (`k = 20` on AMT).
    pub k_per_hit: usize,
    /// Collection budget: answers per task (10 in Section 6.1). `0` means
    /// unlimited.
    pub answers_per_task: usize,
    /// Optional parameter-database directory; `None` keeps state in memory
    /// only.
    pub storage_dir: Option<PathBuf>,
    /// Optional per-task adaptive stopping (the Figure 4(c) stable-point
    /// extension): tasks whose truth satisfies the policy stop receiving
    /// assignments even before the `answers_per_task` cap, releasing budget
    /// for harder tasks. `None` reproduces the paper's uniform protocol.
    pub stopping: Option<StoppingPolicy>,
    /// Number of shards the per-campaign task state is hash-partitioned
    /// into for the OTA benefit scan and TI ingestion accounting. Purely a
    /// walk-order/parallelism knob: truths are byte-identical for every
    /// value. `1` reproduces the paper's flat scan.
    pub task_shards: usize,
    /// Serve `request_tasks` from the incremental benefit index (a
    /// per-task-shard entropy-bounded max-heap, maintained at
    /// answer-ingestion time) instead of rescanning every task's benefit
    /// per request. Like `task_shards`, purely a how-candidates-are-found
    /// knob: picks, truths, and reports are byte-identical either way —
    /// only the request latency changes (O(k log n) pop-and-revalidate on
    /// a warm pool vs the paper's O(n) scan). `false` reproduces the
    /// paper's scan.
    pub use_benefit_index: bool,
    /// Strict budget admission: when `true`, answers arriving after the
    /// collection budget is consumed are rejected
    /// ([`docs_types::Error::BudgetExhausted`]) instead of absorbed. The
    /// paper's deployment absorbs late answers (workers who raced on the
    /// final HITs still get paid), so the default is `false`; a
    /// cost-strict requester flips it on and the service surfaces the
    /// refusal as a matchable `RejectReason::BudgetExhausted`.
    ///
    /// Within one batch, admission is per answer against the **flat cap**
    /// (a straddling batch truncates exactly where sequential submission
    /// would). When combined with an adaptive [`StoppingPolicy`], the
    /// stopping condition is evaluated against the state *before* the
    /// batch — a batch whose earlier answers would tip every task into
    /// its stopping condition does not refuse its own tail.
    pub strict_budget: bool,
    /// Per-campaign opt-in to the service's event-sourced durability:
    /// `Some(policy)` makes the owning shard write this campaign's events
    /// to its write-ahead log (group-committed per `policy`) so the
    /// campaign survives a service crash. `None` keeps the campaign
    /// memory-only (the paper's deployment). Orthogonal to `storage_dir`,
    /// which persists *cross-requester* worker statistics.
    pub durable_flush: Option<FlushPolicy>,
}

impl Default for DocsConfig {
    fn default() -> Self {
        DocsConfig {
            linker: LinkerConfig {
                top_c: 20,
                context_weight: 0.5,
            },
            context_weight: 0.5,
            num_golden: 20,
            golden_smoothing: 1.0,
            z: 100,
            k_per_hit: 20,
            answers_per_task: 10,
            storage_dir: None,
            stopping: None,
            task_shards: 1,
            use_benefit_index: false,
            strict_budget: false,
            durable_flush: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DocsConfig::default();
        assert_eq!(c.linker.top_c, 20);
        assert_eq!(c.num_golden, 20);
        assert_eq!(c.z, 100);
        assert_eq!(c.k_per_hit, 20);
        assert_eq!(c.answers_per_task, 10);
        assert!(c.storage_dir.is_none());
        assert!(c.stopping.is_none(), "uniform protocol by default");
        assert_eq!(c.task_shards, 1, "flat scan by default");
        assert!(!c.use_benefit_index, "paper's rescan by default");
        assert!(!c.strict_budget, "late answers absorbed by default");
        assert!(c.durable_flush.is_none(), "memory-only by default");
    }
}
