//! Dawid & Skene [15]: per-worker confusion matrices estimated with EM.

use super::TruthMethod;
use docs_types::{prob, AnswerLog, ChoiceIndex, Task, WorkerId};
use std::collections::HashMap;

/// Per-worker confusion matrices `π_w[j][l] = Pr(answer l | truth j)`.
pub type ConfusionMatrices = HashMap<WorkerId, Vec<Vec<f64>>>;

/// The classic observer-error-rate model: worker `w` has a confusion matrix
/// `π_w[j][l] = Pr(answer l | truth j)`. Richer than ZenCrowd's scalar but
/// still domain-blind: one matrix describes the worker on every topic.
#[derive(Debug, Clone)]
pub struct DawidSkene {
    /// EM iterations.
    pub iterations: usize,
    /// Initial diagonal mass (probability of answering correctly) for
    /// workers without golden statistics.
    pub prior_diag: f64,
    /// Golden-task scalar initialization per worker: used as the initial
    /// diagonal of the confusion matrix.
    pub init: HashMap<WorkerId, f64>,
    /// Smoothing pseudo-count in the M-step (avoids zero-probability locks).
    pub smoothing: f64,
}

impl Default for DawidSkene {
    fn default() -> Self {
        DawidSkene {
            iterations: 20,
            prior_diag: 0.7,
            init: HashMap::new(),
            smoothing: 0.01,
        }
    }
}

impl DawidSkene {
    /// Sets the golden-task initialization.
    pub fn with_init(mut self, init: HashMap<WorkerId, f64>) -> Self {
        self.init = init;
        self
    }

    /// Runs EM; returns truth distributions and confusion matrices (size
    /// `L × L` with `L = max ℓ`).
    pub fn run(&self, tasks: &[Task], answers: &AnswerLog) -> (Vec<Vec<f64>>, ConfusionMatrices) {
        let l_max = tasks.iter().map(|t| t.num_choices()).max().unwrap_or(2);

        let mut confusion: HashMap<WorkerId, Vec<Vec<f64>>> = answers
            .workers()
            .map(|w| {
                let diag = *self.init.get(&w).unwrap_or(&self.prior_diag);
                let mut mat = vec![vec![0.0; l_max]; l_max];
                for (j, row) in mat.iter_mut().enumerate() {
                    for (l, slot) in row.iter_mut().enumerate() {
                        *slot = if j == l {
                            diag
                        } else {
                            (1.0 - diag) / (l_max as f64 - 1.0).max(1.0)
                        };
                    }
                }
                (w, mat)
            })
            .collect();

        let mut s: Vec<Vec<f64>> = tasks
            .iter()
            .map(|t| prob::uniform(t.num_choices()))
            .collect();

        for _ in 0..self.iterations {
            // E-step.
            for (task, si) in tasks.iter().zip(s.iter_mut()) {
                si.iter_mut().for_each(|x| *x = 1.0);
                for &(w, v) in answers.task_answers(task.id) {
                    let mat = &confusion[&w];
                    for (j, slot) in si.iter_mut().enumerate() {
                        *slot *= mat[j][v].max(1e-12);
                    }
                }
                prob::normalize_in_place(si);
            }
            // M-step.
            for (w, mat) in confusion.iter_mut() {
                let mut counts = vec![vec![self.smoothing; l_max]; l_max];
                for &(t, v) in answers.worker_answers(*w) {
                    let si = &s[t.index()];
                    for (j, &sij) in si.iter().enumerate() {
                        counts[j][v] += sij;
                    }
                }
                for (j, row) in counts.iter().enumerate() {
                    let total: f64 = row.iter().sum();
                    if total > 0.0 {
                        for (l, slot) in mat[j].iter_mut().enumerate() {
                            *slot = row[l] / total;
                        }
                    }
                }
            }
        }
        (s, confusion)
    }
}

impl TruthMethod for DawidSkene {
    fn name(&self) -> &'static str {
        "DS"
    }

    fn infer(&self, tasks: &[Task], answers: &AnswerLog) -> Vec<ChoiceIndex> {
        let (s, _) = self.run(tasks, answers);
        s.iter().map(|si| prob::argmax(si)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{standard_population, world, Lcg};
    use super::super::{accuracy, MajorityVote, TruthMethod};
    use super::*;
    use docs_types::{Answer, TaskBuilder, TaskId};

    #[test]
    fn beats_or_matches_majority_vote_on_average() {
        // EM can lose to MV on an unlucky draw; average over seeds like the
        // paper's aggregated comparison.
        let mut mv_total = 0.0;
        let mut ds_total = 0.0;
        for seed in 0..8u64 {
            let (tasks, log) = world(60, &standard_population(), 0xD5 + seed);
            mv_total += accuracy(&MajorityVote.infer(&tasks, &log), &tasks);
            ds_total += accuracy(&DawidSkene::default().infer(&tasks, &log), &tasks);
        }
        assert!(
            ds_total + 0.08 * 8.0 >= mv_total,
            "DS mean {} vs MV mean {}",
            ds_total / 8.0,
            mv_total / 8.0
        );
    }

    #[test]
    fn learns_systematic_confusion() {
        // A worker who *always* answers the opposite of the truth is
        // perfectly informative to DS (anti-correlated), while MV treats
        // them as noise. Build 3 inverters + 2 honest workers: majority is
        // wrong everywhere, DS should recover the truth.
        let n = 40;
        let mut tasks = Vec::new();
        for i in 0..n {
            tasks.push(
                TaskBuilder::new(i, "t")
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .build()
                    .unwrap(),
            );
        }
        let mut rng = Lcg(0x77);
        let mut log = AnswerLog::new(n);
        for i in 0..n {
            let truth = i % 2;
            for w in 0..3usize {
                log.record(Answer {
                    task: TaskId::from(i),
                    worker: docs_types::WorkerId::from(w),
                    choice: 1 - truth, // inverters
                })
                .unwrap();
            }
            for w in 3..5usize {
                let correct = rng.next_f64() < 0.9;
                log.record(Answer {
                    task: TaskId::from(i),
                    worker: docs_types::WorkerId::from(w),
                    choice: if correct { truth } else { 1 - truth },
                })
                .unwrap();
            }
        }
        // Golden init tells DS the inverters are bad and honest are good —
        // the EM can then flip the inverters' matrices.
        let mut init = HashMap::new();
        for w in 0..3usize {
            init.insert(docs_types::WorkerId::from(w), 0.1);
        }
        for w in 3..5usize {
            init.insert(docs_types::WorkerId::from(w), 0.9);
        }
        let ds = DawidSkene::default().with_init(init);
        let acc = accuracy(&ds.infer(&tasks, &log), &tasks);
        let mv = accuracy(&MajorityVote.infer(&tasks, &log), &tasks);
        assert!(acc > 0.9, "DS should exploit inverters, got {acc}");
        assert!(mv < 0.5, "MV should be fooled, got {mv}");
    }

    #[test]
    fn handles_mixed_choice_counts() {
        // ℓ = 2 and ℓ = 4 tasks in one run.
        let mut tasks = vec![
            TaskBuilder::new(0usize, "t")
                .yes_no()
                .with_ground_truth(0)
                .build()
                .unwrap(),
            TaskBuilder::new(1usize, "t")
                .with_choices(["a", "b", "c", "d"])
                .with_ground_truth(2)
                .build()
                .unwrap(),
        ];
        tasks[0].true_domain = Some(0);
        let mut log = AnswerLog::new(2);
        for w in 0..5usize {
            log.record(Answer {
                task: TaskId(0),
                worker: docs_types::WorkerId::from(w),
                choice: 0,
            })
            .unwrap();
            log.record(Answer {
                task: TaskId(1),
                worker: docs_types::WorkerId::from(w),
                choice: 2,
            })
            .unwrap();
        }
        let truths = DawidSkene::default().infer(&tasks, &log);
        assert_eq!(truths, vec![0, 2]);
    }

    #[test]
    fn confusion_matrices_are_row_stochastic() {
        let (tasks, log) = world(30, &standard_population(), 0x99);
        let (_, confusion) = DawidSkene::default().run(&tasks, &log);
        for mat in confusion.values() {
            for row in mat {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "row sums to {sum}");
            }
        }
    }
}
