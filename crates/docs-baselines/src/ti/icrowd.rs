//! iCrowd [18]: per-domain worker accuracy + weighted majority voting.

use super::TruthMethod;
use docs_types::{AnswerLog, ChoiceIndex, Task};

/// iCrowd estimates, for every worker, an accuracy on each task *domain*
/// (learned from LDA topics in the original; the Section 6.3 protocol hands
/// it the ground-truth domains) and derives each task's truth by **weighted
/// majority voting** — the property the paper criticizes: a handful of
/// low-quality workers can still outvote one expert because votes are
/// summed, not multiplied as likelihoods.
#[derive(Debug, Clone)]
pub struct ICrowd {
    /// Estimation–voting rounds.
    pub iterations: usize,
    /// Prior accuracy (smoothing pseudo-observation) per worker/domain.
    pub prior: f64,
    /// Smoothing weight of the prior.
    pub smoothing: f64,
    /// Hard domain per task. When `None`, falls back to each task's
    /// `true_domain` (the handicap protocol).
    pub task_domains: Option<Vec<usize>>,
}

impl Default for ICrowd {
    fn default() -> Self {
        ICrowd {
            iterations: 10,
            prior: 0.7,
            smoothing: 1.0,
            task_domains: None,
        }
    }
}

impl ICrowd {
    /// Uses explicit task domains (e.g. LDA-detected) instead of ground
    /// truth.
    pub fn with_task_domains(mut self, domains: Vec<usize>) -> Self {
        self.task_domains = Some(domains);
        self
    }

    fn domain_of(&self, task: &Task) -> usize {
        match &self.task_domains {
            Some(d) => d[task.id.index()],
            None => task
                .true_domain
                .expect("ICrowd needs task domains (set task_domains or true_domain)"),
        }
    }
}

impl TruthMethod for ICrowd {
    fn name(&self) -> &'static str {
        "IC"
    }

    fn infer(&self, tasks: &[Task], answers: &AnswerLog) -> Vec<ChoiceIndex> {
        let m = 1 + tasks.iter().map(|t| self.domain_of(t)).max().unwrap_or(0);
        let num_workers = answers.workers().map(|w| w.index() + 1).max().unwrap_or(0);

        // Start from plain majority voting.
        let mut truths = super::MajorityVote.infer(tasks, answers);
        // accuracy[w][k], dense over worker ids.
        let mut acc = vec![vec![self.prior; m]; num_workers];

        for _ in 0..self.iterations {
            // Estimate per-domain accuracy against current truths.
            let mut correct = vec![vec![self.prior * self.smoothing; m]; num_workers];
            let mut total = vec![vec![self.smoothing; m]; num_workers];
            for (task, &truth) in tasks.iter().zip(&truths) {
                let k = self.domain_of(task);
                for &(w, v) in answers.task_answers(task.id) {
                    total[w.index()][k] += 1.0;
                    if v == truth {
                        correct[w.index()][k] += 1.0;
                    }
                }
            }
            for w in 0..num_workers {
                for k in 0..m {
                    acc[w][k] = correct[w][k] / total[w][k];
                }
            }

            // Weighted majority voting with the domain-specific accuracies.
            let mut changed = false;
            for (i, task) in tasks.iter().enumerate() {
                let k = self.domain_of(task);
                let mut votes = vec![0.0; task.num_choices()];
                for &(w, v) in answers.task_answers(task.id) {
                    votes[v] += acc[w.index()][k];
                }
                let new = docs_types::prob::argmax(&votes);
                if new != truths[i] {
                    truths[i] = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        truths
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{standard_population, world};
    use super::super::{accuracy, MajorityVote, TruthMethod};
    use super::*;

    #[test]
    fn beats_or_matches_majority_vote_with_true_domains() {
        let (tasks, log) = world(60, &standard_population(), 0x1C);
        let mv = accuracy(&MajorityVote.infer(&tasks, &log), &tasks);
        let ic = accuracy(&ICrowd::default().infer(&tasks, &log), &tasks);
        assert!(ic + 1e-9 >= mv, "IC {ic} vs MV {mv}");
    }

    #[test]
    fn wrong_domains_hurt() {
        let (tasks, log) = world(60, &standard_population(), 0x1D);
        let good = accuracy(&ICrowd::default().infer(&tasks, &log), &tasks);
        // Scramble domains: everything assigned to one domain removes the
        // per-domain signal.
        let scrambled = ICrowd::default().with_task_domains(vec![0; tasks.len()]);
        let bad = accuracy(&scrambled.infer(&tasks, &log), &tasks);
        assert!(good + 1e-9 >= bad, "true domains {good} vs scrambled {bad}");
    }

    #[test]
    fn weighted_voting_can_be_misled_by_many_low_quality_workers() {
        // One perfect domain expert vs four mediocre workers who happen to
        // agree on the wrong answer: weighted majority voting follows the
        // crowd — the failure mode Section 1 describes.
        use docs_types::{Answer, DomainVector, TaskBuilder, TaskId, WorkerId};
        let tasks = vec![TaskBuilder::new(0usize, "t")
            .yes_no()
            .with_ground_truth(0)
            .with_true_domain(0)
            .with_domain_vector(DomainVector::one_hot(1, 0))
            .build()
            .unwrap()];
        let mut log = AnswerLog::new(1);
        log.record(Answer {
            task: TaskId(0),
            worker: WorkerId(0),
            choice: 0,
        })
        .unwrap();
        for w in 1..5 {
            log.record(Answer {
                task: TaskId(0),
                worker: WorkerId(w),
                choice: 1,
            })
            .unwrap();
        }
        let truths = ICrowd::default().infer(&tasks, &log);
        assert_eq!(truths, vec![1], "weighted MV follows the 4-worker bloc");
    }

    #[test]
    fn converges_and_stops_early() {
        let (tasks, log) = world(20, &standard_population(), 0x1E);
        // Large iteration budget must still terminate fast (break on no
        // change); just assert it runs and produces sane output.
        let ic = ICrowd {
            iterations: 1000,
            ..Default::default()
        };
        let truths = ic.infer(&tasks, &log);
        assert_eq!(truths.len(), 20);
    }
}
