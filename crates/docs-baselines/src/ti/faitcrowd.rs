//! FaitCrowd [30]: per-latent-topic worker quality with a hard topic per
//! task, estimated with EM.

use super::TruthMethod;
use docs_types::{prob, AnswerLog, ChoiceIndex, Task, WorkerId};
use std::collections::HashMap;

/// FaitCrowd assigns each task one latent topic (TwitterLDA in the original;
/// the Section 6.3 protocol hands it ground-truth domains) and models each
/// worker as a quality vector over those topics. Estimation alternates
/// truth and quality like DOCS's TI, but with two structural deficits the
/// paper calls out: the topic assignment is *hard* (a task is exactly one
/// topic, so multi-domain tasks like "Michael Jordan" lose information) and
/// topic and quality estimation errors feed each other.
#[derive(Debug, Clone)]
pub struct FaitCrowd {
    /// EM iterations.
    pub iterations: usize,
    /// Prior topic quality for unseen workers/topics.
    pub prior: f64,
    /// Golden-task scalar initialization per worker (applied to all topics).
    pub init: HashMap<WorkerId, f64>,
    /// Hard topic per task. When `None`, falls back to `true_domain`.
    pub task_topics: Option<Vec<usize>>,
}

impl Default for FaitCrowd {
    fn default() -> Self {
        FaitCrowd {
            iterations: 20,
            prior: 0.7,
            init: HashMap::new(),
            task_topics: None,
        }
    }
}

impl FaitCrowd {
    /// Uses explicit task topics (e.g. TwitterLDA-detected).
    pub fn with_task_topics(mut self, topics: Vec<usize>) -> Self {
        self.task_topics = Some(topics);
        self
    }

    /// Sets the golden-task initialization.
    pub fn with_init(mut self, init: HashMap<WorkerId, f64>) -> Self {
        self.init = init;
        self
    }

    fn topic_of(&self, task: &Task) -> usize {
        match &self.task_topics {
            Some(t) => t[task.id.index()],
            None => task
                .true_domain
                .expect("FaitCrowd needs task topics (set task_topics or true_domain)"),
        }
    }

    /// Runs EM; returns truth distributions and per-worker topic qualities.
    pub fn run(
        &self,
        tasks: &[Task],
        answers: &AnswerLog,
    ) -> (Vec<Vec<f64>>, HashMap<WorkerId, Vec<f64>>) {
        let m = 1 + tasks.iter().map(|t| self.topic_of(t)).max().unwrap_or(0);
        let mut quality: HashMap<WorkerId, Vec<f64>> = answers
            .workers()
            .map(|w| {
                let q0 = *self.init.get(&w).unwrap_or(&self.prior);
                (w, vec![q0; m])
            })
            .collect();
        let init_quality = quality.clone();
        let mut s: Vec<Vec<f64>> = tasks
            .iter()
            .map(|t| prob::uniform(t.num_choices()))
            .collect();

        for _ in 0..self.iterations {
            // E-step: per-task truth under the task's hard topic.
            for (task, si) in tasks.iter().zip(s.iter_mut()) {
                let k = self.topic_of(task);
                let l = task.num_choices();
                si.iter_mut().for_each(|x| *x = 1.0);
                for &(w, v) in answers.task_answers(task.id) {
                    let q = quality[&w][k].clamp(1e-6, 1.0 - 1e-6);
                    for (j, slot) in si.iter_mut().enumerate() {
                        *slot *= if v == j {
                            q
                        } else {
                            (1.0 - q) / (l as f64 - 1.0)
                        };
                    }
                }
                prob::normalize_in_place(si);
            }
            // M-step: per-topic quality.
            for (w, q) in quality.iter_mut() {
                let mut num = vec![0.0; m];
                let mut den = vec![0.0; m];
                for &(t, v) in answers.worker_answers(*w) {
                    let k = self.topic_of(&tasks[t.index()]);
                    num[k] += s[t.index()][v];
                    den[k] += 1.0;
                }
                for k in 0..m {
                    q[k] = if den[k] > 0.0 {
                        num[k] / den[k]
                    } else {
                        init_quality[w][k]
                    };
                }
            }
        }
        (s, quality)
    }
}

impl TruthMethod for FaitCrowd {
    fn name(&self) -> &'static str {
        "FC"
    }

    fn infer(&self, tasks: &[Task], answers: &AnswerLog) -> Vec<ChoiceIndex> {
        let (s, _) = self.run(tasks, answers);
        s.iter().map(|si| prob::argmax(si)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{standard_population, world};
    use super::super::{accuracy, MajorityVote, TruthMethod, ZenCrowd};
    use super::*;

    #[test]
    fn beats_majority_vote_and_domainless_zc() {
        let (tasks, log) = world(80, &standard_population(), 0xFC);
        let mv = accuracy(&MajorityVote.infer(&tasks, &log), &tasks);
        let zc = accuracy(&ZenCrowd::default().infer(&tasks, &log), &tasks);
        let fc = accuracy(&FaitCrowd::default().infer(&tasks, &log), &tasks);
        assert!(fc + 1e-9 >= mv, "FC {fc} vs MV {mv}");
        assert!(fc + 1e-9 >= zc, "FC {fc} vs ZC {zc}");
    }

    #[test]
    fn learns_per_topic_quality() {
        let (tasks, log) = world(80, &standard_population(), 0xFD);
        let (_, quality) = FaitCrowd::default().run(&tasks, &log);
        // Worker 0 is a domain-0 expert (true q = [0.95, 0.55]).
        let q0 = &quality[&WorkerId(0)];
        assert!(q0[0] > q0[1], "expected topic-0 expertise: {q0:?}");
    }

    #[test]
    fn wrong_topics_hurt() {
        let (tasks, log) = world(80, &standard_population(), 0xFE);
        let good = accuracy(&FaitCrowd::default().infer(&tasks, &log), &tasks);
        // Collapse all tasks into one topic: domain signal gone.
        let collapsed = FaitCrowd::default().with_task_topics(vec![0; tasks.len()]);
        let bad = accuracy(&collapsed.infer(&tasks, &log), &tasks);
        assert!(good + 1e-9 >= bad, "true topics {good} vs collapsed {bad}");
    }

    #[test]
    fn truth_distributions_valid() {
        let (tasks, log) = world(20, &standard_population(), 0xFF);
        let (s, _) = FaitCrowd::default().run(&tasks, &log);
        for si in &s {
            assert!(prob::is_distribution(si));
        }
    }
}
