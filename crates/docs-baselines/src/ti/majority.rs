//! Majority Voting — the domainless, qualityless baseline.

use super::TruthMethod;
use docs_types::{AnswerLog, ChoiceIndex, Task};

/// Majority vote: the truth of a task is the choice given by the largest
/// number of workers (ties toward the smaller choice index; unanswered tasks
/// default to choice 0).
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl MajorityVote {
    /// Vote counts per choice for one task.
    pub fn counts(task: &Task, answers: &AnswerLog) -> Vec<usize> {
        let mut counts = vec![0usize; task.num_choices()];
        for &(_, c) in answers.task_answers(task.id) {
            if c < counts.len() {
                counts[c] += 1;
            }
        }
        counts
    }
}

impl TruthMethod for MajorityVote {
    fn name(&self) -> &'static str {
        "MV"
    }

    fn infer(&self, tasks: &[Task], answers: &AnswerLog) -> Vec<ChoiceIndex> {
        tasks
            .iter()
            .map(|t| {
                let counts = Self::counts(t, answers);
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &c)| (c, usize::MAX - i))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{standard_population, world};
    use super::*;
    use docs_types::{Answer, TaskBuilder, TaskId, WorkerId};

    #[test]
    fn majority_wins() {
        let tasks = vec![TaskBuilder::new(0usize, "t").yes_no().build().unwrap()];
        let mut log = AnswerLog::new(1);
        for (w, c) in [(0, 1), (1, 1), (2, 0)] {
            log.record(Answer {
                task: TaskId(0),
                worker: WorkerId(w),
                choice: c,
            })
            .unwrap();
        }
        assert_eq!(MajorityVote.infer(&tasks, &log), vec![1]);
    }

    #[test]
    fn tie_breaks_low_and_empty_defaults_zero() {
        let tasks = vec![
            TaskBuilder::new(0usize, "t").yes_no().build().unwrap(),
            TaskBuilder::new(1usize, "t").yes_no().build().unwrap(),
        ];
        let mut log = AnswerLog::new(2);
        log.record(Answer {
            task: TaskId(0),
            worker: WorkerId(0),
            choice: 0,
        })
        .unwrap();
        log.record(Answer {
            task: TaskId(0),
            worker: WorkerId(1),
            choice: 1,
        })
        .unwrap();
        assert_eq!(MajorityVote.infer(&tasks, &log), vec![0, 0]);
    }

    #[test]
    fn reasonable_on_mixed_population() {
        let (tasks, log) = world(40, &standard_population(), 0xABCD);
        let truths = MajorityVote.infer(&tasks, &log);
        let acc = super::super::accuracy(&truths, &tasks);
        assert!(acc > 0.7, "MV accuracy {acc}");
    }
}
