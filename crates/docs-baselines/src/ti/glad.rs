//! GLAD [46]: joint worker-ability / task-difficulty model ("Whose vote
//! should count more", Whitehill et al., NIPS 2009).
//!
//! The paper's related work cites [46] as the line that "models the
//! difficulty in tasks". GLAD parameterizes
//!
//! ```text
//! Pr(v^w_i = v*_i) = σ(α_w · β_i),   σ(x) = 1 / (1 + e^{-x})
//! ```
//!
//! with worker ability `α_w ∈ ℝ` (negative = adversarial) and task easiness
//! `β_i > 0` (`1/β_i` is the difficulty). Like ZenCrowd and Dawid-Skene it
//! is *domain-blind* — one scalar describes a worker on every topic — which
//! is exactly the gap DOCS's quality vectors close; but unlike them it can
//! discount hard tasks instead of blaming the workers who answered them.
//!
//! Inference is EM: the E-step computes truth posteriors from the current
//! `(α, β)`; the M-step runs a few steps of gradient ascent on the expected
//! complete-data log-likelihood (multiclass extension: wrong answers
//! uniform over the `ℓ − 1` distractors, the same Eq. 4 convention DOCS
//! uses). `β` is optimized through `λ = ln β` to stay positive.

use super::TruthMethod;
use docs_types::{prob, AnswerLog, ChoiceIndex, Task, WorkerId};
use std::collections::HashMap;

/// Logistic worker-ability / task-difficulty truth inference.
#[derive(Debug, Clone)]
pub struct Glad {
    /// EM iterations.
    pub iterations: usize,
    /// Gradient-ascent steps per M-step.
    pub gradient_steps: usize,
    /// Gradient-ascent learning rate.
    pub learning_rate: f64,
    /// Initial ability for workers without golden statistics; `1.0`
    /// corresponds to σ(β) ≈ 0.73 on a unit-easiness task.
    pub prior_ability: f64,
    /// Golden-task scalar accuracies (Section 6.3 protocol); mapped to an
    /// initial ability via the logit at unit easiness.
    pub init: HashMap<WorkerId, f64>,
}

impl Default for Glad {
    fn default() -> Self {
        Glad {
            iterations: 30,
            gradient_steps: 3,
            learning_rate: 0.1,
            prior_ability: 1.0,
            init: HashMap::new(),
        }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Clamp probabilities used inside likelihood products away from {0, 1}.
#[inline]
fn clamp_p(p: f64) -> f64 {
    p.clamp(1e-6, 1.0 - 1e-6)
}

impl Glad {
    /// Sets the golden-task initialization: a worker with golden accuracy
    /// `q` starts at ability `logit(q)` (her σ(α·1) equals `q` on a
    /// unit-easiness task).
    pub fn with_init(mut self, init: HashMap<WorkerId, f64>) -> Self {
        self.init = init;
        self
    }

    /// Runs EM; returns per-task truth distributions, per-worker abilities
    /// `α_w`, and per-task easiness values `β_i`.
    pub fn run(
        &self,
        tasks: &[Task],
        answers: &AnswerLog,
    ) -> (Vec<Vec<f64>>, HashMap<WorkerId, f64>, Vec<f64>) {
        let mut alpha: HashMap<WorkerId, f64> = answers
            .workers()
            .map(|w| {
                let a = match self.init.get(&w) {
                    Some(&q) => {
                        let q = clamp_p(q);
                        (q / (1.0 - q)).ln()
                    }
                    None => self.prior_ability,
                };
                (w, a)
            })
            .collect();
        let mut log_beta = vec![0.0f64; tasks.len()]; // β = 1 everywhere
        let mut s: Vec<Vec<f64>> = tasks
            .iter()
            .map(|t| prob::uniform(t.num_choices()))
            .collect();

        for _ in 0..self.iterations {
            // E-step: truth posterior per task under the logistic model.
            for (i, task) in tasks.iter().enumerate() {
                let l = task.num_choices();
                let beta = log_beta[i].exp();
                let si = &mut s[i];
                si.iter_mut().for_each(|x| *x = 1.0);
                for &(w, v) in answers.task_answers(task.id) {
                    let p = clamp_p(sigmoid(alpha[&w] * beta));
                    let wrong = (1.0 - p) / (l as f64 - 1.0);
                    for (j, slot) in si.iter_mut().enumerate() {
                        *slot *= if v == j { p } else { wrong };
                    }
                }
                prob::normalize_in_place(si);
            }

            // M-step: gradient ascent on E[log likelihood] w.r.t. α and
            // λ = ln β. For each answer, the expected gradient contribution
            // is (z − σ(αβ)) scaled by β (for α) or αβ (for λ), where
            // z = Pr(answer correct | posterior) = s_{i, v}.
            for _ in 0..self.gradient_steps {
                let mut grad_alpha: HashMap<WorkerId, f64> =
                    alpha.keys().map(|&w| (w, 0.0)).collect();
                let mut grad_lambda = vec![0.0f64; tasks.len()];
                for (i, task) in tasks.iter().enumerate() {
                    let beta = log_beta[i].exp();
                    for &(w, v) in answers.task_answers(task.id) {
                        let z = s[i][v];
                        let residual = z - sigmoid(alpha[&w] * beta);
                        *grad_alpha.get_mut(&w).expect("worker present") += residual * beta;
                        grad_lambda[i] += residual * alpha[&w] * beta;
                    }
                }
                for (w, g) in grad_alpha {
                    *alpha.get_mut(&w).expect("worker present") += self.learning_rate * g;
                }
                for (lb, g) in log_beta.iter_mut().zip(&grad_lambda) {
                    *lb = (*lb + self.learning_rate * g).clamp(-3.0, 3.0);
                }
            }
        }

        let beta = log_beta.iter().map(|lb| lb.exp()).collect();
        (s, alpha, beta)
    }
}

impl TruthMethod for Glad {
    fn name(&self) -> &'static str {
        "GLAD"
    }

    fn infer(&self, tasks: &[Task], answers: &AnswerLog) -> Vec<ChoiceIndex> {
        let (s, _, _) = self.run(tasks, answers);
        s.iter().map(|si| prob::argmax(si)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ti::testutil::{simulated_log, Lcg};
    use crate::ti::MajorityVote;

    #[test]
    fn sigmoid_sanity() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(5.0) > 0.99);
        assert!(sigmoid(-5.0) < 0.01);
    }

    #[test]
    fn recovers_truth_with_able_workers() {
        let (tasks, log) = simulated_log(40, 2, 9, 0.85, &mut Lcg(7));
        let truths = Glad::default().infer(&tasks, &log);
        let acc = crate::ti::accuracy(&truths, &tasks);
        assert!(acc > 0.85, "GLAD accuracy {acc}");
    }

    #[test]
    fn beats_majority_vote_with_mixed_crowd() {
        // Half the crowd answers at 0.9, half at 0.45 (near-spam). A
        // worker-aware model must beat unweighted MV.
        let mut rng = Lcg(11);
        let (tasks, log) = crate::ti::testutil::mixed_quality_log(60, 2, 10, 0.9, 0.45, &mut rng);
        let glad = crate::ti::accuracy(&Glad::default().infer(&tasks, &log), &tasks);
        let mv = crate::ti::accuracy(&MajorityVote.infer(&tasks, &log), &tasks);
        assert!(
            glad >= mv,
            "GLAD {glad} should not lose to MV {mv} on a mixed crowd"
        );
    }

    #[test]
    fn abilities_separate_good_from_bad_workers() {
        let mut rng = Lcg(13);
        let (tasks, log) = crate::ti::testutil::mixed_quality_log(80, 2, 10, 0.95, 0.4, &mut rng);
        let (_, alpha, _) = Glad::default().run(&tasks, &log);
        // Workers 0..5 are the good half in mixed_quality_log; 5..10 bad.
        let good: f64 = (0..5).map(|w| alpha[&WorkerId(w)]).sum::<f64>() / 5.0;
        let bad: f64 = (5..10).map(|w| alpha[&WorkerId(w)]).sum::<f64>() / 5.0;
        assert!(
            good > bad + 0.5,
            "mean ability good {good:.2} vs bad {bad:.2}"
        );
    }

    #[test]
    fn golden_init_maps_through_logit() {
        let init: HashMap<WorkerId, f64> = [(WorkerId(0), 0.9)].into();
        let glad = Glad::default().with_init(init);
        let (tasks, log) = simulated_log(10, 2, 3, 0.8, &mut Lcg(17));
        // Smoke: runs and returns one truth per task.
        let truths = glad.infer(&tasks, &log);
        assert_eq!(truths.len(), 10);
    }

    #[test]
    fn easiness_stays_positive_and_bounded() {
        let (tasks, log) = simulated_log(30, 3, 8, 0.75, &mut Lcg(19));
        let (_, _, beta) = Glad::default().run(&tasks, &log);
        for b in beta {
            assert!(b > 0.0 && b.is_finite());
            assert!((-3.0..=3.0).contains(&b.ln()));
        }
    }
}
