//! CRH-style truth discovery: iterative weighted voting with
//! loss-derived source weights (Li et al.'s framework from the truth
//! discovery survey [28] the paper cites).
//!
//! The truth-discovery family treats workers as *sources* and alternates:
//!
//! 1. **Truth update** — each task's truth is the weighted vote of its
//!    answers, `s_{i,j} ∝ Σ_{w: v^w_i = j} weight_w`;
//! 2. **Weight update** — each worker's weight falls with her total loss
//!    against the current truths,
//!    `weight_w = −ln( (loss_w + ε) / Σ_{w'} (loss_{w'} + ε) )`,
//!    where `loss_w` counts her expected disagreements.
//!
//! Unlike the EM methods (ZenCrowd, Dawid-Skene, GLAD) there is no
//! probabilistic answer model — just the conflict-resolution objective —
//! which makes CRH a useful *model-free but worker-aware* midpoint between
//! majority voting and the EM family in the comparison suite. Like all of
//! them it is domain-blind, the gap DOCS targets.

use super::TruthMethod;
use docs_types::{prob, AnswerLog, ChoiceIndex, Task, WorkerId};
use std::collections::HashMap;

/// Iterative conflict-resolution truth discovery.
#[derive(Debug, Clone)]
pub struct Crh {
    /// Alternation rounds.
    pub iterations: usize,
    /// Loss smoothing `ε` (keeps weights finite for perfect workers).
    pub epsilon: f64,
    /// Golden-task scalar accuracies: mapped to initial losses so a golden
    /// expert starts with more voting weight.
    pub init: HashMap<WorkerId, f64>,
}

impl Default for Crh {
    fn default() -> Self {
        Crh {
            iterations: 20,
            epsilon: 0.01,
            init: HashMap::new(),
        }
    }
}

impl Crh {
    /// Sets the golden-task initialization.
    pub fn with_init(mut self, init: HashMap<WorkerId, f64>) -> Self {
        self.init = init;
        self
    }

    /// Runs the alternation; returns per-task truth distributions and
    /// per-worker weights (normalized to mean 1 for interpretability).
    pub fn run(
        &self,
        tasks: &[Task],
        answers: &AnswerLog,
    ) -> (Vec<Vec<f64>>, HashMap<WorkerId, f64>) {
        // Initial weights from golden accuracies (default: accuracy 0.7).
        let mut weight: HashMap<WorkerId, f64> = answers
            .workers()
            .map(|w| {
                let q = self.init.get(&w).copied().unwrap_or(0.7).clamp(0.05, 0.95);
                // A worker with golden accuracy q has expected loss (1-q)
                // per answer; seed weights with the same -ln shape the
                // iteration produces.
                (w, -(1.0 - q).ln())
            })
            .collect();
        let mut s: Vec<Vec<f64>> = tasks
            .iter()
            .map(|t| prob::uniform(t.num_choices()))
            .collect();

        for _ in 0..self.iterations {
            // Truth update: weighted votes.
            for (task, si) in tasks.iter().zip(s.iter_mut()) {
                si.iter_mut().for_each(|x| *x = 0.0);
                for &(w, v) in answers.task_answers(task.id) {
                    si[v] += weight[&w].max(0.0);
                }
                prob::normalize_in_place(si);
            }
            // Weight update: loss against current truths.
            let mut losses: HashMap<WorkerId, f64> = HashMap::new();
            for (i, task) in tasks.iter().enumerate() {
                for &(w, v) in answers.task_answers(task.id) {
                    // Expected disagreement: 1 − s_{i,v}.
                    *losses.entry(w).or_insert(0.0) += 1.0 - s[i][v];
                }
            }
            let total: f64 = losses.values().map(|l| l + self.epsilon).sum();
            for (w, loss) in losses {
                weight.insert(w, -((loss + self.epsilon) / total).ln());
            }
        }

        // Normalize weights to mean 1.
        let mean = weight.values().sum::<f64>() / weight.len().max(1) as f64;
        if mean > 0.0 {
            weight.values_mut().for_each(|v| *v /= mean);
        }
        (s, weight)
    }
}

impl TruthMethod for Crh {
    fn name(&self) -> &'static str {
        "CRH"
    }

    fn infer(&self, tasks: &[Task], answers: &AnswerLog) -> Vec<ChoiceIndex> {
        let (s, _) = self.run(tasks, answers);
        s.iter().map(|si| prob::argmax(si)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ti::testutil::{mixed_quality_log, simulated_log, Lcg};
    use crate::ti::MajorityVote;

    #[test]
    fn recovers_truth_with_able_workers() {
        let (tasks, log) = simulated_log(40, 2, 9, 0.85, &mut Lcg(23));
        let truths = Crh::default().infer(&tasks, &log);
        let acc = crate::ti::accuracy(&truths, &tasks);
        assert!(acc > 0.85, "CRH accuracy {acc}");
    }

    #[test]
    fn outweighs_spammers() {
        let mut rng = Lcg(29);
        let (tasks, log) = mixed_quality_log(80, 2, 10, 0.95, 0.5, &mut rng);
        let (_, weights) = Crh::default().run(&tasks, &log);
        let good: f64 = (0..5).map(|w| weights[&WorkerId(w)]).sum::<f64>() / 5.0;
        let bad: f64 = (5..10).map(|w| weights[&WorkerId(w)]).sum::<f64>() / 5.0;
        assert!(good > bad, "good weight {good:.3} vs bad {bad:.3}");
    }

    #[test]
    fn at_least_matches_majority_vote_on_mixed_crowds() {
        let mut rng = Lcg(31);
        let (tasks, log) = mixed_quality_log(60, 3, 10, 0.9, 0.4, &mut rng);
        let crh = crate::ti::accuracy(&Crh::default().infer(&tasks, &log), &tasks);
        let mv = crate::ti::accuracy(&MajorityVote.infer(&tasks, &log), &tasks);
        assert!(crh >= mv, "CRH {crh} vs MV {mv}");
    }

    #[test]
    fn truth_distributions_are_valid() {
        let (tasks, log) = simulated_log(25, 4, 7, 0.7, &mut Lcg(37));
        let (s, weights) = Crh::default().run(&tasks, &log);
        for si in &s {
            assert!(prob::is_distribution(si));
        }
        for w in weights.values() {
            assert!(w.is_finite() && *w >= 0.0);
        }
    }

    #[test]
    fn golden_init_raises_expert_weight_immediately() {
        let init: HashMap<WorkerId, f64> = [(WorkerId(0), 0.95), (WorkerId(1), 0.3)].into();
        let crh = Crh {
            iterations: 0, // inspect the pure initialization
            ..Default::default()
        }
        .with_init(init);
        let (tasks, log) = simulated_log(10, 2, 2, 0.8, &mut Lcg(41));
        let (_, weights) = crh.run(&tasks, &log);
        assert!(weights[&WorkerId(0)] > weights[&WorkerId(1)]);
    }
}
