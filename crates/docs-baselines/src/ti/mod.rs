//! Truth-inference baselines (Section 6.3).

mod crh;
mod dawid_skene;
mod faitcrowd;
mod glad;
mod icrowd;
mod majority;
mod zencrowd;

pub use crh::Crh;
pub use dawid_skene::{ConfusionMatrices, DawidSkene};
pub use faitcrowd::FaitCrowd;
pub use glad::Glad;
pub use icrowd::ICrowd;
pub use majority::MajorityVote;
pub use zencrowd::ZenCrowd;

use docs_types::{AnswerLog, ChoiceIndex, Task, TaskId, WorkerId};
use std::collections::HashMap;

/// A truth-inference method under comparison.
pub trait TruthMethod {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Infers one truth per task from the collected answers.
    fn infer(&self, tasks: &[Task], answers: &AnswerLog) -> Vec<ChoiceIndex>;
}

/// Per-worker scalar accuracy on golden tasks — the initialization the
/// Section 6.3 protocol grants every competitor ("we initialize the workers'
/// qualities of all other competitors using the same golden tasks").
///
/// `golden` maps each worker to her (task, choice) golden answers;
/// `truth_of` returns a golden task's ground truth. Smoothed toward 0.7 with
/// one pseudo-observation so a single golden answer cannot saturate.
pub fn golden_scalar_quality(
    golden: &HashMap<WorkerId, Vec<(TaskId, ChoiceIndex)>>,
    truth_of: impl Fn(TaskId) -> ChoiceIndex,
) -> HashMap<WorkerId, f64> {
    golden
        .iter()
        .map(|(&w, answers)| {
            let correct = answers.iter().filter(|&&(t, c)| truth_of(t) == c).count() as f64;
            let q = (0.7 + correct) / (1.0 + answers.len() as f64);
            (w, q)
        })
        .collect()
}

/// Accuracy of inferred truths against ground truth (shared by tests and
/// experiment harnesses). NaN when no task carries a ground truth — see
/// [`docs_crowd::accuracy_of`] for the policy.
pub fn accuracy(truths: &[ChoiceIndex], tasks: &[Task]) -> f64 {
    docs_crowd::accuracy_of(truths, tasks)
}

/// Fallible accuracy: `None` when no task carries a ground truth.
/// Re-exported from `docs-crowd` so scoring harnesses comparing against
/// these baselines need only one import surface.
pub use docs_crowd::try_accuracy_of;

#[cfg(test)]
pub(crate) mod testutil {
    use docs_types::{Answer, AnswerLog, DomainVector, Task, TaskBuilder, TaskId, WorkerId};

    pub struct Lcg(pub u64);
    impl Lcg {
        pub fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// 2-domain world: `n` yes/no tasks split between domains; workers with
    /// given per-domain true qualities answer every task.
    pub fn world(n: usize, true_q: &[Vec<f64>], seed: u64) -> (Vec<Task>, AnswerLog) {
        let mut tasks = Vec::new();
        for i in 0..n {
            let domain = usize::from(i >= n / 2);
            tasks.push(
                TaskBuilder::new(i, format!("task {i}"))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(domain)
                    .with_domain_vector(DomainVector::one_hot(2, domain))
                    .build()
                    .unwrap(),
            );
        }
        let mut rng = Lcg(seed);
        let mut log = AnswerLog::new(n);
        for i in 0..n {
            let truth = i % 2;
            let domain = usize::from(i >= n / 2);
            for (w, q) in true_q.iter().enumerate() {
                let correct = rng.next_f64() < q[domain];
                log.record(Answer {
                    task: TaskId::from(i),
                    worker: WorkerId::from(w),
                    choice: if correct { truth } else { 1 - truth },
                })
                .unwrap();
            }
        }
        (tasks, log)
    }

    /// Single-domain world with `l`-choice tasks: `workers` workers answer
    /// every task, each correct with probability `q`, wrong answers uniform
    /// over the distractors.
    pub fn simulated_log(
        n: usize,
        l: usize,
        workers: usize,
        q: f64,
        rng: &mut Lcg,
    ) -> (Vec<Task>, AnswerLog) {
        let qualities = vec![q; workers];
        log_with_worker_qualities(n, l, &qualities, rng)
    }

    /// Like [`simulated_log`] but the first half of the crowd answers with
    /// `q_good` and the second half with `q_bad` — the canonical
    /// expert-vs-spammer separation test.
    pub fn mixed_quality_log(
        n: usize,
        l: usize,
        workers: usize,
        q_good: f64,
        q_bad: f64,
        rng: &mut Lcg,
    ) -> (Vec<Task>, AnswerLog) {
        let qualities: Vec<f64> = (0..workers)
            .map(|w| if w < workers / 2 { q_good } else { q_bad })
            .collect();
        log_with_worker_qualities(n, l, &qualities, rng)
    }

    fn log_with_worker_qualities(
        n: usize,
        l: usize,
        qualities: &[f64],
        rng: &mut Lcg,
    ) -> (Vec<Task>, AnswerLog) {
        assert!(l >= 2);
        let tasks: Vec<Task> = (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("task {i}"))
                    .with_choices((0..l).map(|c| format!("c{c}")))
                    .with_ground_truth(i % l)
                    .with_true_domain(0)
                    .with_domain_vector(DomainVector::one_hot(1, 0))
                    .build()
                    .unwrap()
            })
            .collect();
        let mut log = AnswerLog::new(n);
        for (i, task) in tasks.iter().enumerate() {
            let truth = task.ground_truth.unwrap();
            for (w, &q) in qualities.iter().enumerate() {
                let choice = if rng.next_f64() < q {
                    truth
                } else {
                    let mut c = (rng.next_f64() * (l - 1) as f64) as usize;
                    if c >= truth {
                        c += 1;
                    }
                    c.min(l - 1)
                };
                log.record(Answer {
                    task: TaskId::from(i),
                    worker: WorkerId::from(w),
                    choice,
                })
                .unwrap();
            }
        }
        (tasks, log)
    }

    /// The standard mixed population used across baseline tests.
    pub fn standard_population() -> Vec<Vec<f64>> {
        vec![
            vec![0.95, 0.55],
            vec![0.95, 0.55],
            vec![0.55, 0.95],
            vec![0.55, 0.95],
            vec![0.6, 0.6],
            vec![0.5, 0.5],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_scalar_quality_smoothing() {
        let mut golden = HashMap::new();
        golden.insert(WorkerId(0), vec![(TaskId(0), 0), (TaskId(1), 1)]);
        golden.insert(WorkerId(1), vec![(TaskId(0), 1), (TaskId(1), 0)]);
        let q = golden_scalar_quality(&golden, |t| t.index() % 2);
        // Worker 0: both correct → (0.7 + 2) / 3 = 0.9.
        assert!((q[&WorkerId(0)] - 0.9).abs() < 1e-12);
        // Worker 1: both wrong → 0.7 / 3 ≈ 0.233.
        assert!((q[&WorkerId(1)] - 0.7 / 3.0).abs() < 1e-12);
    }
}
