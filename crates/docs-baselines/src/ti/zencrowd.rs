//! ZenCrowd [16]: scalar worker reliability estimated with EM.

use super::TruthMethod;
use docs_types::{prob, AnswerLog, ChoiceIndex, Task, WorkerId};
use std::collections::HashMap;

/// ZenCrowd models each worker with a single reliability value `p_w` — the
/// probability of answering *any* task correctly, regardless of domain —
/// and alternates truth estimation and reliability estimation (an EM
/// adaptation). Its blind spot, per the paper, is exactly the missing
/// domain dimension.
#[derive(Debug, Clone)]
pub struct ZenCrowd {
    /// EM iterations.
    pub iterations: usize,
    /// Initial reliability for workers without golden statistics.
    pub prior: f64,
    /// Golden-task initialization per worker (Section 6.3 protocol).
    pub init: HashMap<WorkerId, f64>,
}

impl Default for ZenCrowd {
    fn default() -> Self {
        ZenCrowd {
            iterations: 20,
            prior: 0.7,
            init: HashMap::new(),
        }
    }
}

impl ZenCrowd {
    /// Sets the golden-task initialization.
    pub fn with_init(mut self, init: HashMap<WorkerId, f64>) -> Self {
        self.init = init;
        self
    }

    /// Runs EM and returns per-task truth distributions and per-worker
    /// reliabilities.
    pub fn run(
        &self,
        tasks: &[Task],
        answers: &AnswerLog,
    ) -> (Vec<Vec<f64>>, HashMap<WorkerId, f64>) {
        let mut reliability: HashMap<WorkerId, f64> = answers
            .workers()
            .map(|w| (w, *self.init.get(&w).unwrap_or(&self.prior)))
            .collect();
        let mut s: Vec<Vec<f64>> = tasks
            .iter()
            .map(|t| prob::uniform(t.num_choices()))
            .collect();

        for _ in 0..self.iterations {
            // E-step: truth distributions from reliabilities.
            for (task, si) in tasks.iter().zip(s.iter_mut()) {
                let l = task.num_choices();
                si.iter_mut().for_each(|x| *x = 1.0);
                for &(w, v) in answers.task_answers(task.id) {
                    let p = reliability[&w].clamp(1e-6, 1.0 - 1e-6);
                    for (j, slot) in si.iter_mut().enumerate() {
                        *slot *= if v == j {
                            p
                        } else {
                            (1.0 - p) / (l as f64 - 1.0)
                        };
                    }
                }
                prob::normalize_in_place(si);
            }
            // M-step: reliability = average probability of own answers.
            for (w, p) in reliability.iter_mut() {
                let ws = answers.worker_answers(*w);
                if ws.is_empty() {
                    continue;
                }
                let total: f64 = ws.iter().map(|&(t, v)| s[t.index()][v]).sum();
                *p = total / ws.len() as f64;
            }
        }
        (s, reliability)
    }
}

impl TruthMethod for ZenCrowd {
    fn name(&self) -> &'static str {
        "ZC"
    }

    fn infer(&self, tasks: &[Task], answers: &AnswerLog) -> Vec<ChoiceIndex> {
        let (s, _) = self.run(tasks, answers);
        s.iter().map(|si| prob::argmax(si)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{standard_population, world};
    use super::super::{accuracy, MajorityVote, TruthMethod};
    use super::*;

    #[test]
    fn beats_majority_vote_when_model_is_well_specified() {
        // ZenCrowd's scalar model fits populations whose quality does not
        // vary by domain; there it must beat MV on average (Figure 5's
        // MV < ZC ordering). On strongly domain-structured populations the
        // scalar model mis-weights experts — the paper's core observation —
        // so that case is *not* asserted here.
        let flat: Vec<Vec<f64>> = vec![
            vec![0.95, 0.95],
            vec![0.85, 0.85],
            vec![0.7, 0.7],
            vec![0.6, 0.6],
            vec![0.55, 0.55],
            vec![0.5, 0.5],
        ];
        let mut mv_total = 0.0;
        let mut zc_total = 0.0;
        for seed in 0..8u64 {
            let (tasks, log) = world(60, &flat, 0x2C2C + seed);
            mv_total += accuracy(&MajorityVote.infer(&tasks, &log), &tasks);
            zc_total += accuracy(&ZenCrowd::default().infer(&tasks, &log), &tasks);
        }
        assert!(
            zc_total > mv_total,
            "ZC mean {} vs MV mean {}",
            zc_total / 8.0,
            mv_total / 8.0
        );
    }

    #[test]
    fn reliability_separates_good_from_bad() {
        // Worker 0 flat-good, worker 5 flat-coin across both domains.
        let q = vec![
            vec![0.95, 0.95],
            vec![0.9, 0.9],
            vec![0.85, 0.85],
            vec![0.6, 0.6],
            vec![0.55, 0.55],
            vec![0.5, 0.5],
        ];
        let (tasks, log) = world(80, &q, 0x11);
        let (_, rel) = ZenCrowd::default().run(&tasks, &log);
        assert!(rel[&WorkerId(0)] > rel[&WorkerId(5)]);
        assert!(rel[&WorkerId(0)] > 0.8);
    }

    #[test]
    fn golden_init_is_respected_initially() {
        let (tasks, log) = world(10, &standard_population(), 0x22);
        let mut init = HashMap::new();
        init.insert(WorkerId(0), 0.99);
        let zc = ZenCrowd {
            iterations: 0,
            ..Default::default()
        }
        .with_init(init);
        let (_, rel) = zc.run(&tasks, &log);
        assert_eq!(rel[&WorkerId(0)], 0.99);
        assert_eq!(rel[&WorkerId(1)], 0.7);
    }

    #[test]
    fn truth_distributions_valid() {
        let (tasks, log) = world(20, &standard_population(), 0x33);
        let (s, _) = ZenCrowd::default().run(&tasks, &log);
        for si in &s {
            assert!(prob::is_distribution(si));
        }
    }
}
