//! The competitor methods DOCS is evaluated against (Section 6).
//!
//! Truth inference ([`ti`]):
//!
//! | Method | Worker model | Source |
//! |--------|--------------|--------|
//! | [`ti::MajorityVote`] | none (workers equal) | — |
//! | [`ti::ZenCrowd`]     | scalar reliability, EM | \[16\] |
//! | [`ti::DawidSkene`]   | confusion matrix, EM | \[15\] |
//! | [`ti::ICrowd`]       | per-domain accuracy + weighted majority vote | \[18\] |
//! | [`ti::FaitCrowd`]    | per-latent-topic quality vector, EM | \[30\] |
//!
//! Online task assignment ([`ota`]): `Baseline` (random + MV), `AskIt!`
//! (uncertainty + MV), `IC` (domain match + equal counts + weighted MV),
//! `QASCA` (expected accuracy gain + DS), `D-Max` (domain match + DOCS TI),
//! and the full `DOCS` strategy (benefit function + DOCS TI) — each paired
//! with the inference procedure the original paper used, as in Section 6.4.

pub mod ota;
pub mod ti;
