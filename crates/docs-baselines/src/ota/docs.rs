//! The full DOCS assignment strategy: benefit-function OTA over the DOCS
//! truth-inference engine.

use docs_core::ota::{Assigner, AssignerConfig};
use docs_core::ti::{IncrementalTi, WorkerRegistry};
use docs_crowd::AssignmentStrategy;
use docs_types::{Answer, ChoiceIndex, Task, TaskId, WorkerId};

/// DOCS online task assignment (Section 5.1): the worker gets the `k` tasks
/// with the highest expected entropy reduction `B(t_i)` under her quality
/// vector, with truth inference by the incremental DOCS TI (periodic full
/// re-inference every `z` answers).
#[derive(Debug)]
pub struct DocsAssign {
    engine: IncrementalTi,
    config: AssignerConfig,
}

impl DocsAssign {
    /// Creates the strategy with the paper's defaults (z = 100).
    pub fn new(tasks: Vec<Task>, m: usize) -> Self {
        Self::with_config(tasks, m, 100, AssignerConfig::default())
    }

    /// Full control over inference period and assigner configuration.
    pub fn with_config(tasks: Vec<Task>, m: usize, z: usize, config: AssignerConfig) -> Self {
        let registry = WorkerRegistry::new(m, 0.7);
        DocsAssign {
            engine: IncrementalTi::new(tasks, registry, z),
            config,
        }
    }

    /// Read access to the inference engine (for experiment harnesses).
    pub fn engine(&self) -> &IncrementalTi {
        &self.engine
    }
}

impl AssignmentStrategy for DocsAssign {
    fn name(&self) -> &'static str {
        "DOCS"
    }

    fn init_worker(&mut self, worker: WorkerId, golden: &[(TaskId, ChoiceIndex)]) {
        let infos: Vec<(TaskId, (docs_types::DomainVector, ChoiceIndex))> = golden
            .iter()
            .map(|&(tid, _)| {
                let t = &self.engine.tasks()[tid.index()];
                (
                    tid,
                    (
                        t.domain_vector().clone(),
                        t.ground_truth.expect("golden tasks have ground truth"),
                    ),
                )
            })
            .collect();
        let lookup = move |tid: TaskId| {
            infos
                .iter()
                .find(|(t, _)| *t == tid)
                .map(|(_, info)| info.clone())
                .expect("golden info present")
        };
        self.engine
            .init_worker_from_golden(worker, golden, &lookup, 1.0);
    }

    fn assign(&mut self, worker: WorkerId, k: usize) -> Vec<TaskId> {
        let quality = self.engine.registry().quality(worker);
        // The HIT size is platform-driven; override k per call.
        let assigner = Assigner::new(AssignerConfig { k, ..self.config });
        let log = self.engine.log();
        assigner.assign(
            &quality,
            self.engine.tasks(),
            self.engine.states(),
            |t| log.has_answered(worker, t),
            |t| log.answer_count(t),
        )
    }

    fn feedback(&mut self, answer: Answer) {
        self.engine
            .submit(answer)
            .expect("platform delivers valid answers");
    }

    fn truths(&self) -> Vec<ChoiceIndex> {
        self.engine.truths()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{make_tasks, run_alone};
    use super::*;

    #[test]
    fn skips_confident_tasks() {
        let tasks = make_tasks(4, 2);
        let mut s = DocsAssign::new(tasks.clone(), 2);
        // Saturate task 0 with confident consistent answers.
        for w in 10..16 {
            s.feedback(Answer {
                task: TaskId(0),
                worker: WorkerId(w),
                choice: tasks[0].ground_truth.unwrap(),
            });
        }
        let picks = s.assign(WorkerId(0), 3);
        assert_eq!(picks.len(), 3);
        assert!(
            !picks.contains(&TaskId(0)),
            "confident task should lose to fresh ones: {picks:?}"
        );
    }

    #[test]
    fn expert_gets_own_domain_first() {
        let tasks = make_tasks(10, 2);
        let mut s = DocsAssign::new(tasks.clone(), 2);
        let golden = [
            (TaskId(0), tasks[0].ground_truth.unwrap()),
            (TaskId(1), 1 - tasks[1].ground_truth.unwrap()),
        ];
        s.init_worker(WorkerId(0), &golden);
        let picks = s.assign(WorkerId(0), 3);
        for t in &picks {
            assert_eq!(
                t.index() % 2,
                0,
                "domain-0 expert should get domain-0 tasks: {picks:?}"
            );
        }
    }

    #[test]
    fn end_to_end_beats_chance() {
        let tasks = make_tasks(30, 2);
        let mut s = DocsAssign::new(tasks.clone(), 2);
        let acc = run_alone(&mut s, &tasks, 2, 300, 47);
        assert!(acc > 0.65, "DOCS accuracy {acc}");
    }
}
