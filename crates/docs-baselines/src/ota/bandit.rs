//! UCB bandit assignment — the multi-armed-bandit line of work the paper's
//! related work cites ([41], Tran-Thanh et al., "Efficient crowdsourcing of
//! unknown experts using bounded multi-armed bandits").
//!
//! The bandit framing balances *exploitation* (ask this worker the tasks
//! her estimated per-domain quality matches best — exactly D-Max's score)
//! against *exploration* (tasks with few collected answers carry an
//! optimism bonus). The per-task UCB index for the arriving worker is
//!
//! ```text
//! ucb(t) = q^w · r^t + c · sqrt( ln(N + 1) / (n_t + 1) )
//! ```
//!
//! with `n_t` the answers collected for `t`, `N` the total collected, and
//! `c` the exploration weight. At `c = 0` this *is* D-Max; as `c → ∞` it
//! approaches the uniform-coverage behaviour the paper's iCrowd baseline
//! hard-codes. Like D-Max it is paired with the DOCS TI engine so the
//! comparison isolates the assignment rule, not the inference.

use super::{top_k, unanswered};
use docs_core::ti::{IncrementalTi, WorkerRegistry};
use docs_crowd::AssignmentStrategy;
use docs_types::{Answer, ChoiceIndex, Task, TaskId, WorkerId};

/// UCB explore/exploit task assignment over the DOCS inference engine.
#[derive(Debug)]
pub struct Bandit {
    engine: IncrementalTi,
    exploration: f64,
}

impl Bandit {
    /// Creates the strategy; `m` is the number of domains, `z` the periodic
    /// full-inference interval, `exploration` the UCB weight `c`.
    pub fn new(tasks: Vec<Task>, m: usize, z: usize, exploration: f64) -> Self {
        assert!(
            exploration >= 0.0 && exploration.is_finite(),
            "exploration weight must be non-negative"
        );
        let registry = WorkerRegistry::new(m, 0.7);
        Bandit {
            engine: IncrementalTi::new(tasks, registry, z),
            exploration,
        }
    }

    fn golden_info(&self, tid: TaskId) -> (docs_types::DomainVector, ChoiceIndex) {
        let t = &self.engine.tasks()[tid.index()];
        (
            t.domain_vector().clone(),
            t.ground_truth.expect("golden tasks have ground truth"),
        )
    }
}

impl AssignmentStrategy for Bandit {
    fn name(&self) -> &'static str {
        "Bandit"
    }

    fn init_worker(&mut self, worker: WorkerId, golden: &[(TaskId, ChoiceIndex)]) {
        let infos: Vec<(TaskId, (docs_types::DomainVector, ChoiceIndex))> = golden
            .iter()
            .map(|&(tid, _)| (tid, self.golden_info(tid)))
            .collect();
        let lookup = move |tid: TaskId| {
            infos
                .iter()
                .find(|(t, _)| *t == tid)
                .map(|(_, info)| info.clone())
                .expect("golden info present")
        };
        self.engine
            .init_worker_from_golden(worker, golden, &lookup, 1.0);
    }

    fn assign(&mut self, worker: WorkerId, k: usize) -> Vec<TaskId> {
        let q = self.engine.registry().quality(worker);
        let log = self.engine.log();
        let total = log.len() as f64;
        let bonus_scale = self.exploration * (total + 1.0).ln().max(0.0);
        let scored: Vec<(f64, TaskId)> = unanswered(self.engine.tasks(), log, worker)
            .map(|t| {
                let r = t.domain_vector();
                let exploit: f64 = q.iter().zip(r.as_slice()).map(|(&qk, &rk)| qk * rk).sum();
                let n_t = log.answer_count(t.id) as f64;
                let explore = (bonus_scale / (n_t + 1.0)).sqrt();
                (exploit + explore, t.id)
            })
            .collect();
        top_k(scored, k)
    }

    fn feedback(&mut self, answer: Answer) {
        self.engine
            .submit(answer)
            .expect("platform delivers valid answers");
    }

    fn truths(&self) -> Vec<ChoiceIndex> {
        self.engine.truths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_types::{DomainVector, TaskBuilder};

    fn tasks(n: usize, m: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("t{i}"))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(i % m)
                    .with_domain_vector(DomainVector::one_hot(m, i % m))
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn zero_exploration_is_pure_domain_match() {
        let m = 2;
        let mut bandit = Bandit::new(tasks(4, m), m, 0, 0.0);
        // Init a worker who is a domain-0 expert via goldens in domain 0.
        bandit.init_worker(WorkerId(0), &[(TaskId(0), 0), (TaskId(2), 0)]);
        let picks = bandit.assign(WorkerId(0), 2);
        assert_eq!(picks.len(), 2);
        // With c = 0 the index is pure domain match: the domain-0 tasks
        // (even ids) rank first for the domain-0 expert. (Golden answers
        // initialize the registry only; they do not enter the task log.)
        assert!(
            picks.contains(&TaskId(0)) && picks.contains(&TaskId(2)),
            "picks: {picks:?}"
        );
    }

    #[test]
    fn exploration_prefers_uncovered_tasks() {
        let m = 1;
        let mut bandit = Bandit::new(tasks(3, m), m, 0, 2.0);
        bandit.init_worker(WorkerId(0), &[]);
        bandit.init_worker(WorkerId(1), &[]);
        // Workers 1-3 flood task 0 with answers.
        bandit.feedback(Answer::new(WorkerId(1), TaskId(0), 0));
        bandit.feedback(Answer::new(WorkerId(2), TaskId(0), 0));
        bandit.feedback(Answer::new(WorkerId(3), TaskId(0), 0));
        // Worker 0 asks for one task: the uncovered ones must outrank the
        // saturated task 0 (identical exploit term: single domain).
        let picks = bandit.assign(WorkerId(0), 1);
        assert_ne!(picks, vec![TaskId(0)]);
    }

    #[test]
    fn never_reassigns_answered_tasks() {
        let m = 1;
        let mut bandit = Bandit::new(tasks(3, m), m, 0, 1.0);
        bandit.init_worker(WorkerId(0), &[]);
        bandit.feedback(Answer::new(WorkerId(0), TaskId(1), 0));
        let picks = bandit.assign(WorkerId(0), 3);
        assert!(!picks.contains(&TaskId(1)));
        assert_eq!(picks.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_exploration_rejected() {
        let _ = Bandit::new(tasks(1, 1), 1, 0, -1.0);
    }
}
