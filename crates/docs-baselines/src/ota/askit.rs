//! AskIt! [8]: uncertainty-driven assignment, majority-vote inference.

use super::{top_k, unanswered};
use crate::ti::{MajorityVote, TruthMethod};
use docs_crowd::AssignmentStrategy;
use docs_types::{prob, Answer, AnswerLog, ChoiceIndex, Task, TaskId, WorkerId};

/// AskIt! assigns the `k` *most uncertain* tasks, measuring uncertainty as
/// the entropy of the (Laplace-smoothed) empirical answer distribution. It
/// considers the tasks' answer state but — the paper's criticism — not the
/// coming worker's quality.
#[derive(Debug)]
pub struct AskIt {
    tasks: Vec<Task>,
    log: AnswerLog,
}

impl AskIt {
    /// Creates the strategy over the published tasks.
    pub fn new(tasks: Vec<Task>) -> Self {
        let log = AnswerLog::new(tasks.len());
        AskIt { tasks, log }
    }

    fn uncertainty(&self, task: &Task) -> f64 {
        let mut counts: Vec<f64> = vec![1.0; task.num_choices()]; // Laplace
        for &(_, c) in self.log.task_answers(task.id) {
            counts[c] += 1.0;
        }
        prob::normalize_in_place(&mut counts);
        prob::entropy(&counts)
    }
}

impl AssignmentStrategy for AskIt {
    fn name(&self) -> &'static str {
        "AskIt!"
    }

    fn init_worker(&mut self, _worker: WorkerId, _golden: &[(TaskId, ChoiceIndex)]) {}

    fn assign(&mut self, worker: WorkerId, k: usize) -> Vec<TaskId> {
        let scored: Vec<(f64, TaskId)> = unanswered(&self.tasks, &self.log, worker)
            .map(|t| (self.uncertainty(t), t.id))
            .collect();
        top_k(scored, k)
    }

    fn feedback(&mut self, answer: Answer) {
        self.log
            .record(answer)
            .expect("platform delivers valid answers");
    }

    fn truths(&self) -> Vec<ChoiceIndex> {
        MajorityVote.infer(&self.tasks, &self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{make_tasks, run_alone};
    use super::*;

    #[test]
    fn prefers_contested_tasks() {
        let tasks = make_tasks(3, 2);
        let mut s = AskIt::new(tasks);
        // Task 0: 3-0 consensus; task 1: 1-1 split; task 2: fresh.
        for (t, w, c) in [(0, 1, 0), (0, 2, 0), (0, 3, 0), (1, 1, 0), (1, 2, 1)] {
            s.feedback(Answer {
                task: TaskId(t),
                worker: WorkerId(w),
                choice: c,
            });
        }
        let picks = s.assign(WorkerId(0), 2);
        // Split task 1 (max entropy) and fresh task 2 beat consensual task 0.
        assert!(picks.contains(&TaskId(1)));
        assert!(picks.contains(&TaskId(2)));
        assert!(!picks.contains(&TaskId(0)));
    }

    #[test]
    fn end_to_end_beats_chance() {
        let tasks = make_tasks(30, 2);
        let mut s = AskIt::new(tasks.clone());
        let acc = run_alone(&mut s, &tasks, 2, 300, 43);
        assert!(acc > 0.6, "AskIt accuracy {acc}");
    }
}
