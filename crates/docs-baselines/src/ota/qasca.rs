//! QASCA [54]: expected-accuracy-gain assignment, Dawid-Skene inference.

use super::{top_k, unanswered};
use crate::ti::{DawidSkene, TruthMethod};
use docs_core::ti::TaskState;
use docs_crowd::AssignmentStrategy;
use docs_types::{Answer, AnswerLog, ChoiceIndex, DomainVector, Task, TaskId, WorkerId};
use std::collections::HashMap;

/// QASCA assigns the `k` tasks whose answers are expected to improve the
/// *Accuracy* quality metric the most: for task `i` with posterior `s_i`,
/// the contribution to expected accuracy is `max_j s_{i,j}`, and the benefit
/// of asking worker `w` is `E_a[max_j s'_{i,j}] − max_j s_{i,j}`. The worker
/// model is a single quality value (domain-blind — the gap DOCS exploits);
/// final truths come from Dawid-Skene, as in the original system.
///
/// Internally each task's posterior is a DOCS [`TaskState`] with `m = 1`:
/// with one "domain" the DOCS update rules reduce exactly to the scalar
/// worker-probability model QASCA maintains online.
#[derive(Debug)]
pub struct Qasca {
    tasks: Vec<Task>,
    log: AnswerLog,
    states: Vec<TaskState>,
    quality: HashMap<WorkerId, f64>,
    golden: HashMap<WorkerId, Vec<(TaskId, ChoiceIndex)>>,
    prior: f64,
    r1: DomainVector,
}

impl Qasca {
    /// Creates the strategy over the published tasks.
    pub fn new(tasks: Vec<Task>) -> Self {
        let log = AnswerLog::new(tasks.len());
        let states = tasks
            .iter()
            .map(|t| TaskState::new(1, t.num_choices()))
            .collect();
        Qasca {
            tasks,
            log,
            states,
            quality: HashMap::new(),
            golden: HashMap::new(),
            prior: 0.7,
            r1: DomainVector::one_hot(1, 0),
        }
    }

    fn worker_quality(&self, w: WorkerId) -> f64 {
        *self.quality.get(&w).unwrap_or(&self.prior)
    }

    /// Expected accuracy gain of assigning a task to a worker with scalar
    /// quality `q`.
    fn gain(&self, task_idx: usize, q: f64) -> f64 {
        let state = &self.states[task_idx];
        let quality = [q];
        let current = state.s().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let probs = docs_core::ota::answer_probabilities(state, &self.r1, &quality);
        let mut expected = 0.0;
        for (a, &pa) in probs.iter().enumerate() {
            if pa == 0.0 {
                continue;
            }
            let s_hat = state.s_from_matrix(&self.r1, &state.m_given_answer(&quality, a));
            expected += pa * s_hat.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        }
        expected - current
    }
}

impl AssignmentStrategy for Qasca {
    fn name(&self) -> &'static str {
        "QASCA"
    }

    fn init_worker(&mut self, worker: WorkerId, golden: &[(TaskId, ChoiceIndex)]) {
        let correct = golden
            .iter()
            .filter(|&&(t, c)| self.tasks[t.index()].ground_truth == Some(c))
            .count() as f64;
        let q = (self.prior + correct) / (1.0 + golden.len() as f64);
        self.quality.insert(worker, q);
        self.golden.insert(worker, golden.to_vec());
    }

    fn assign(&mut self, worker: WorkerId, k: usize) -> Vec<TaskId> {
        let q = self.worker_quality(worker);
        let scored: Vec<(f64, TaskId)> = unanswered(&self.tasks, &self.log, worker)
            .map(|t| (self.gain(t.id.index(), q), t.id))
            .collect();
        top_k(scored, k)
    }

    fn feedback(&mut self, answer: Answer) {
        self.log
            .record(answer)
            .expect("platform delivers valid answers");
        let q = self.worker_quality(answer.worker);
        self.states[answer.task.index()].apply_answer(&self.r1, &[q], answer.choice);
        // Online quality refresh: the worker's quality is the average
        // posterior probability of her recorded answers (QASCA's online
        // parameter maintenance).
        let ws = self.log.worker_answers(answer.worker);
        if !ws.is_empty() {
            let total: f64 = ws.iter().map(|&(t, v)| self.states[t.index()].s()[v]).sum();
            self.quality.insert(answer.worker, total / ws.len() as f64);
        }
    }

    fn truths(&self) -> Vec<ChoiceIndex> {
        let init: HashMap<WorkerId, f64> = self
            .golden
            .keys()
            .map(|&w| (w, self.worker_quality(w)))
            .collect();
        DawidSkene::default()
            .with_init(init)
            .infer(&self.tasks, &self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{make_tasks, run_alone};
    use super::*;

    #[test]
    fn gain_prefers_uncertain_tasks() {
        let tasks = make_tasks(2, 2);
        let mut s = Qasca::new(tasks);
        // Make task 0 confident.
        for w in 1..5 {
            s.feedback(Answer {
                task: TaskId(0),
                worker: WorkerId(w),
                choice: 0,
            });
        }
        let picks = s.assign(WorkerId(0), 1);
        assert_eq!(picks, vec![TaskId(1)]);
    }

    #[test]
    fn golden_init_sets_quality() {
        let tasks = make_tasks(4, 2);
        let mut s = Qasca::new(tasks.clone());
        let golden = [
            (TaskId(0), tasks[0].ground_truth.unwrap()),
            (TaskId(1), tasks[1].ground_truth.unwrap()),
        ];
        s.init_worker(WorkerId(0), &golden);
        assert!((s.worker_quality(WorkerId(0)) - (0.7 + 2.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gain_is_nonnegative_for_informative_workers() {
        let tasks = make_tasks(1, 2);
        let s = Qasca::new(tasks);
        assert!(s.gain(0, 0.9) >= 0.0);
        // A coin-flip worker contributes nothing.
        assert!(s.gain(0, 0.5).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_beats_chance() {
        let tasks = make_tasks(30, 2);
        let mut s = Qasca::new(tasks.clone());
        let acc = run_alone(&mut s, &tasks, 2, 300, 2);
        assert!(acc > 0.6, "QASCA accuracy {acc}");
    }
}
