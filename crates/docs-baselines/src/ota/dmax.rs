//! D-Max: pure domain-match assignment over the DOCS truth-inference
//! engine — the ablation baseline of Section 6.4.

use super::{top_k, unanswered};
use docs_core::ti::{IncrementalTi, WorkerRegistry};
use docs_crowd::AssignmentStrategy;
use docs_types::{Answer, ChoiceIndex, Task, TaskId, WorkerId};

/// D-Max uses the DOCS TI module to infer truth, but assigns each worker the
/// `k` tasks with the best *domain match* `q^w · r^t` — ignoring how
/// confident each task's truth already is. The paper uses it to isolate the
/// value of the benefit function: D-Max "may assign tasks that are already
/// confident enough".
#[derive(Debug)]
pub struct DMax {
    engine: IncrementalTi,
}

impl DMax {
    /// Creates the strategy; `m` is the number of domains, `z` the periodic
    /// full-inference interval (the paper's z = 100).
    pub fn new(tasks: Vec<Task>, m: usize, z: usize) -> Self {
        let registry = WorkerRegistry::new(m, 0.7);
        DMax {
            engine: IncrementalTi::new(tasks, registry, z),
        }
    }

    fn golden_info(&self, tid: TaskId) -> (docs_types::DomainVector, ChoiceIndex) {
        let t = &self.engine.tasks()[tid.index()];
        (
            t.domain_vector().clone(),
            t.ground_truth.expect("golden tasks have ground truth"),
        )
    }
}

impl AssignmentStrategy for DMax {
    fn name(&self) -> &'static str {
        "D-Max"
    }

    fn init_worker(&mut self, worker: WorkerId, golden: &[(TaskId, ChoiceIndex)]) {
        let infos: Vec<(TaskId, (docs_types::DomainVector, ChoiceIndex))> = golden
            .iter()
            .map(|&(tid, _)| (tid, self.golden_info(tid)))
            .collect();
        let lookup = move |tid: TaskId| {
            infos
                .iter()
                .find(|(t, _)| *t == tid)
                .map(|(_, info)| info.clone())
                .expect("golden info present")
        };
        self.engine
            .init_worker_from_golden(worker, golden, &lookup, 1.0);
    }

    fn assign(&mut self, worker: WorkerId, k: usize) -> Vec<TaskId> {
        let q = self.engine.registry().quality(worker);
        let log = self.engine.log();
        let scored: Vec<(f64, TaskId)> = unanswered(self.engine.tasks(), log, worker)
            .map(|t| {
                let r = t.domain_vector();
                let match_degree: f64 = q.iter().zip(r.as_slice()).map(|(&qk, &rk)| qk * rk).sum();
                (match_degree, t.id)
            })
            .collect();
        top_k(scored, k)
    }

    fn feedback(&mut self, answer: Answer) {
        self.engine
            .submit(answer)
            .expect("platform delivers valid answers");
    }

    fn truths(&self) -> Vec<ChoiceIndex> {
        self.engine.truths()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{make_tasks, run_alone};
    use super::*;

    #[test]
    fn assigns_matching_domain_regardless_of_confidence() {
        let tasks = make_tasks(4, 2); // even → domain 0, odd → domain 1
        let mut s = DMax::new(tasks.clone(), 2, 0);
        // Golden: worker 0 is a domain-0 expert.
        let golden = [
            (TaskId(0), tasks[0].ground_truth.unwrap()),
            (TaskId(1), 1 - tasks[1].ground_truth.unwrap()),
        ];
        s.init_worker(WorkerId(0), &golden);
        // Saturate task 2 (domain 0) with confident answers — D-Max still
        // ranks domain-0 tasks first because it ignores confidence.
        for w in 10..15 {
            s.feedback(Answer {
                task: TaskId(2),
                worker: WorkerId(w),
                choice: tasks[2].ground_truth.unwrap(),
            });
        }
        let picks = s.assign(WorkerId(0), 2);
        for t in &picks {
            assert_eq!(
                t.index() % 2,
                0,
                "D-Max should pick domain-0 tasks: {picks:?}"
            );
        }
        assert!(picks.contains(&TaskId(2)), "confident task still assigned");
    }

    #[test]
    fn end_to_end_beats_chance() {
        let tasks = make_tasks(30, 2);
        let mut s = DMax::new(tasks.clone(), 2, 100);
        let acc = run_alone(&mut s, &tasks, 2, 300, 46);
        assert!(acc > 0.6, "D-Max accuracy {acc}");
    }
}
