//! The random Baseline: random assignment, majority-vote inference.

use super::unanswered;
use crate::ti::{MajorityVote, TruthMethod};
use docs_crowd::AssignmentStrategy;
use docs_types::{Answer, AnswerLog, ChoiceIndex, Task, TaskId, WorkerId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// "Baseline uses MV to infer truth and randomly selects k tasks to assign
/// to the coming worker" (Section 6.4).
#[derive(Debug)]
pub struct RandomBaseline {
    tasks: Vec<Task>,
    log: AnswerLog,
    rng: SmallRng,
}

impl RandomBaseline {
    /// Creates the baseline over the published tasks.
    pub fn new(tasks: Vec<Task>, seed: u64) -> Self {
        let log = AnswerLog::new(tasks.len());
        RandomBaseline {
            tasks,
            log,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl AssignmentStrategy for RandomBaseline {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn init_worker(&mut self, _worker: WorkerId, _golden: &[(TaskId, ChoiceIndex)]) {
        // MV has no worker model to initialize.
    }

    fn assign(&mut self, worker: WorkerId, k: usize) -> Vec<TaskId> {
        let mut candidates: Vec<TaskId> = unanswered(&self.tasks, &self.log, worker)
            .map(|t| t.id)
            .collect();
        candidates.shuffle(&mut self.rng);
        candidates.truncate(k);
        candidates
    }

    fn feedback(&mut self, answer: Answer) {
        self.log
            .record(answer)
            .expect("platform delivers valid answers");
    }

    fn truths(&self) -> Vec<ChoiceIndex> {
        MajorityVote.infer(&self.tasks, &self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{make_tasks, run_alone};
    use super::*;

    #[test]
    fn never_reassigns_answered_tasks() {
        let tasks = make_tasks(5, 2);
        let mut s = RandomBaseline::new(tasks, 1);
        let w = WorkerId(0);
        let first = s.assign(w, 3);
        for &t in &first {
            s.feedback(Answer {
                task: t,
                worker: w,
                choice: 0,
            });
        }
        let second = s.assign(w, 5);
        for t in &second {
            assert!(!first.contains(t));
        }
        assert_eq!(second.len(), 2);
    }

    #[test]
    fn end_to_end_produces_sane_accuracy() {
        let tasks = make_tasks(30, 2);
        let mut s = RandomBaseline::new(tasks.clone(), 2);
        let acc = run_alone(&mut s, &tasks, 2, 300, 42);
        assert!(acc > 0.6, "random + MV should still beat chance, got {acc}");
    }
}
