//! Online task-assignment methods (Section 6.4).
//!
//! Each method implements [`docs_crowd::AssignmentStrategy`] and pairs an
//! assignment rule with the truth-inference procedure its original paper
//! used, matching the paper's end-to-end protocol:
//!
//! | Method | Assignment rule | Inference |
//! |--------|-----------------|-----------|
//! | [`RandomBaseline`] | random `k` tasks | MV |
//! | [`AskIt`] | `k` most uncertain (entropy) | MV |
//! | [`ICrowdAssign`] | highest worker accuracy, equal answer counts | weighted MV |
//! | [`Qasca`] | highest expected accuracy gain | DS |
//! | [`DMax`] | best domain match `q^w · r^t` | DOCS TI |
//! | [`DocsAssign`] | highest benefit `B(t)` (Def. 5) | DOCS TI |
//! | [`Bandit`] | UCB explore/exploit over domain match (\[41\]'s framing) | DOCS TI |

mod askit;
mod bandit;
mod dmax;
mod docs;
mod icrowd_assign;
mod qasca;
mod random;

pub use askit::AskIt;
pub use bandit::Bandit;
pub use dmax::DMax;
pub use docs::DocsAssign;
pub use icrowd_assign::ICrowdAssign;
pub use qasca::Qasca;
pub use random::RandomBaseline;

use docs_types::{AnswerLog, Task, TaskId, WorkerId};

/// Candidate filter shared by the strategies: tasks the worker has not
/// answered yet under this method's own log.
pub(crate) fn unanswered<'a>(
    tasks: &'a [Task],
    log: &'a AnswerLog,
    worker: WorkerId,
) -> impl Iterator<Item = &'a Task> {
    tasks
        .iter()
        .filter(move |t| !log.has_answered(worker, t.id))
}

/// Selects the top-`k` task ids by score (descending, ties toward smaller
/// ids) — shared ranking helper.
pub(crate) fn top_k(mut scored: Vec<(f64, TaskId)>, k: usize) -> Vec<TaskId> {
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("scores are finite")
            .then_with(|| a.1.cmp(&b.1))
    });
    scored.truncate(k);
    scored.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use docs_crowd::{
        AssignmentStrategy, Platform, PlatformConfig, PopulationConfig, WorkerPopulation,
    };
    use docs_types::{DomainVector, Task, TaskBuilder};

    /// Tasks over `m` anonymous domains with one-hot domain vectors.
    pub fn make_tasks(n: usize, m: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("t{i}"))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(i % m)
                    .with_domain_vector(DomainVector::one_hot(m, i % m))
                    .build()
                    .unwrap()
            })
            .collect()
    }

    /// Runs one strategy alone on a standard simulated platform and returns
    /// its accuracy.
    pub fn run_alone(
        strategy: &mut dyn AssignmentStrategy,
        tasks: &[Task],
        m: usize,
        budget: usize,
        seed: u64,
    ) -> f64 {
        let pop = WorkerPopulation::generate(&PopulationConfig {
            m,
            size: 30,
            seed,
            ..Default::default()
        });
        let golden: Vec<docs_types::TaskId> = tasks.iter().take(4).map(|t| t.id).collect();
        let platform = Platform::new(
            tasks,
            golden,
            &pop,
            PlatformConfig {
                answer_budget: budget,
                seed,
                ..Default::default()
            },
        );
        let outcomes = platform.run_parallel(&mut [strategy]);
        outcomes[0].accuracy
    }
}
