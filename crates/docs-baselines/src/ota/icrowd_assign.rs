//! iCrowd [18] assignment: highest worker accuracy on the task's domain,
//! under an equal-answer-count constraint; weighted-majority-vote inference.

use super::unanswered;
use crate::ti::{ICrowd, TruthMethod};
use docs_crowd::AssignmentStrategy;
use docs_types::{Answer, AnswerLog, ChoiceIndex, Task, TaskId, WorkerId};
use std::collections::HashMap;

/// iCrowd assigns the `k` tasks the worker is *best at* (highest estimated
/// accuracy for the task's domain) while requiring every task to end up
/// with the same number of answers — so candidates are drawn from the tasks
/// with the currently fewest answers. The paper's criticisms: it may keep
/// assigning tasks whose truth is already confident, and the equal-count
/// constraint wastes budget of easy tasks that hard tasks could use.
#[derive(Debug)]
pub struct ICrowdAssign {
    tasks: Vec<Task>,
    log: AnswerLog,
    /// Per-worker, per-domain accuracy estimates.
    accuracy: HashMap<WorkerId, Vec<f64>>,
    /// Re-estimate accuracies every this many feedbacks.
    refresh_every: usize,
    feedbacks: usize,
    num_domains: usize,
    prior: f64,
}

impl ICrowdAssign {
    /// Creates the strategy; `num_domains` bounds the hard task domains.
    pub fn new(tasks: Vec<Task>, num_domains: usize) -> Self {
        let log = AnswerLog::new(tasks.len());
        ICrowdAssign {
            tasks,
            log,
            accuracy: HashMap::new(),
            refresh_every: 100,
            feedbacks: 0,
            num_domains,
            prior: 0.7,
        }
    }

    fn domain_of(&self, t: &Task) -> usize {
        t.true_domain.expect("iCrowd tasks carry domains")
    }

    /// Re-estimates per-domain accuracies from the current weighted-MV
    /// truths (the original's iterative estimation, run in batch).
    fn refresh_accuracy(&mut self) {
        let truths = ICrowd::default().infer(&self.tasks, &self.log);
        let mut correct: HashMap<WorkerId, Vec<f64>> = HashMap::new();
        let mut total: HashMap<WorkerId, Vec<f64>> = HashMap::new();
        for (task, &truth) in self.tasks.iter().zip(&truths) {
            let k = self.domain_of(task);
            for &(w, v) in self.log.task_answers(task.id) {
                let c = correct
                    .entry(w)
                    .or_insert_with(|| vec![self.prior; self.num_domains]);
                let t = total
                    .entry(w)
                    .or_insert_with(|| vec![1.0; self.num_domains]);
                t[k] += 1.0;
                if v == truth {
                    c[k] += 1.0;
                }
            }
        }
        for (w, c) in correct {
            let t = &total[&w];
            let acc: Vec<f64> = c.iter().zip(t).map(|(&ci, &ti)| ci / ti).collect();
            self.accuracy.insert(w, acc);
        }
    }

    fn worker_accuracy(&self, w: WorkerId, domain: usize) -> f64 {
        self.accuracy
            .get(&w)
            .map(|a| a[domain])
            .unwrap_or(self.prior)
    }
}

impl AssignmentStrategy for ICrowdAssign {
    fn name(&self) -> &'static str {
        "IC"
    }

    fn init_worker(&mut self, worker: WorkerId, golden: &[(TaskId, ChoiceIndex)]) {
        // Per-domain accuracy from golden answers, smoothed toward prior.
        let mut correct = vec![self.prior; self.num_domains];
        let mut total = vec![1.0; self.num_domains];
        for &(tid, choice) in golden {
            let task = &self.tasks[tid.index()];
            let k = self.domain_of(task);
            total[k] += 1.0;
            if Some(choice) == task.ground_truth {
                correct[k] += 1.0;
            }
        }
        let acc = correct.iter().zip(&total).map(|(&c, &t)| c / t).collect();
        self.accuracy.insert(worker, acc);
    }

    fn assign(&mut self, worker: WorkerId, k: usize) -> Vec<TaskId> {
        // Equal-count constraint: only tasks with the minimum answer count
        // among this worker's unanswered tasks are candidates; if fewer than
        // k, extend to the next count level, and so on.
        let mut by_count: Vec<(usize, f64, TaskId)> = unanswered(&self.tasks, &self.log, worker)
            .map(|t| {
                let count = self.log.answer_count(t.id);
                let acc = self.worker_accuracy(worker, self.domain_of(t));
                (count, acc, t.id)
            })
            .collect();
        // Sort by count ascending, then accuracy descending, then id.
        by_count.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| b.1.partial_cmp(&a.1).expect("finite"))
                .then_with(|| a.2.cmp(&b.2))
        });
        by_count.into_iter().take(k).map(|(_, _, t)| t).collect()
    }

    fn feedback(&mut self, answer: Answer) {
        self.log
            .record(answer)
            .expect("platform delivers valid answers");
        self.feedbacks += 1;
        if self.feedbacks.is_multiple_of(self.refresh_every) {
            self.refresh_accuracy();
        }
    }

    fn truths(&self) -> Vec<ChoiceIndex> {
        ICrowd::default().infer(&self.tasks, &self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{make_tasks, run_alone};
    use super::*;

    #[test]
    fn golden_init_prefers_expert_domain() {
        // Tasks: even ids domain 0, odd ids domain 1; golden: task 0 (d0)
        // answered right, task 1 (d1) answered wrong.
        let tasks = make_tasks(10, 2);
        let mut s = ICrowdAssign::new(tasks.clone(), 2);
        let golden = [
            (TaskId(0), tasks[0].ground_truth.unwrap()),
            (TaskId(1), 1 - tasks[1].ground_truth.unwrap()),
        ];
        s.init_worker(WorkerId(0), &golden);
        let picks = s.assign(WorkerId(0), 4);
        // All counts equal (0), so the tie-break is accuracy: the first
        // picks should be domain-0 (even) tasks.
        for t in &picks {
            assert_eq!(t.index() % 2, 0, "expected domain-0 tasks, got {picks:?}");
        }
    }

    #[test]
    fn equal_count_constraint_balances_answers() {
        let tasks = make_tasks(6, 2);
        let mut s = ICrowdAssign::new(tasks, 2);
        // Worker 1 answers tasks 0-2; worker 2's assignment must favor the
        // unanswered 3-5 regardless of expertise.
        for t in 0..3u32 {
            s.feedback(Answer {
                task: TaskId(t),
                worker: WorkerId(1),
                choice: 0,
            });
        }
        let picks = s.assign(WorkerId(2), 3);
        let mut ids: Vec<u32> = picks.iter().map(|t| t.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn end_to_end_beats_chance() {
        let tasks = make_tasks(30, 2);
        let mut s = ICrowdAssign::new(tasks.clone(), 2);
        let acc = run_alone(&mut s, &tasks, 2, 300, 44);
        assert!(acc > 0.6, "iCrowd accuracy {acc}");
    }
}
