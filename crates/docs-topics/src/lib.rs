//! Topic models — the substrate of the iCrowd and FaitCrowd baselines.
//!
//! The paper's two domain-aware competitors detect task domains with topic
//! models instead of a knowledge base: iCrowd \[18\] runs LDA \[6\] over task
//! descriptions and FaitCrowd \[30\] runs TwitterLDA \[51\] (an LDA variant for
//! short texts where each document carries a *single* topic plus a shared
//! background word distribution). Both need the number of latent topics set
//! by hand and learn latent, unlabeled domains — the property the Figure 3
//! experiment shows losing to explicit KB domains on heterogeneous text.
//!
//! This crate implements both models from scratch with collapsed Gibbs
//! sampling:
//!
//! * [`Vocabulary`] / [`tokenize`] — shared text preprocessing,
//! * [`Lda`] — standard latent Dirichlet allocation,
//! * [`TwitterLda`] — one topic per document + background/topic word switch.

mod lda;
mod twitter;
mod vocab;

pub use lda::{Lda, LdaConfig, LdaModel};
pub use twitter::{TwitterLda, TwitterLdaConfig, TwitterLdaModel};
pub use vocab::{tokenize, Vocabulary};
