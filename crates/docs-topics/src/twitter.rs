//! TwitterLDA [51] — the short-text topic model the FaitCrowd baseline uses.
//!
//! TwitterLDA differs from vanilla LDA in two ways suited to tweets (and to
//! short crowdsourcing task descriptions): every document carries a *single*
//! latent topic, and every token is either drawn from that topic's word
//! distribution or from a corpus-wide *background* distribution (a Bernoulli
//! switch), which soaks up template words like "compare" or "which".

use crate::Vocabulary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// TwitterLDA hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TwitterLdaConfig {
    /// Number of latent topics (the `m″` FaitCrowd sets by hand).
    pub num_topics: usize,
    /// Dirichlet prior on the corpus topic distribution.
    pub alpha: f64,
    /// Dirichlet prior on topic/background word distributions.
    pub beta: f64,
    /// Beta prior on the background-vs-topic switch.
    pub gamma: f64,
    /// Gibbs sweeps.
    pub iterations: usize,
    /// Sweeps discarded before accumulating the posterior.
    pub burn_in: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwitterLdaConfig {
    fn default() -> Self {
        TwitterLdaConfig {
            num_topics: 4,
            alpha: 0.5,
            beta: 0.1,
            gamma: 1.0,
            iterations: 200,
            burn_in: 100,
            seed: 0x771,
        }
    }
}

/// Fitted TwitterLDA model.
#[derive(Debug, Clone)]
pub struct TwitterLdaModel {
    /// Posterior distribution over the document's single topic, one row per
    /// document (relative frequency of sampled assignments after burn-in).
    pub doc_topics: Vec<Vec<f64>>,
    /// φ_k per topic — topic-word distributions of the final Gibbs state.
    pub topic_words: Vec<Vec<f64>>,
    /// The shared background word distribution (TwitterLDA's extra piece
    /// relative to plain LDA).
    pub background_words: Vec<f64>,
    /// Number of topics.
    pub num_topics: usize,
    /// Total training tokens (for perplexity).
    pub num_tokens: usize,
    /// Training pseudo log-likelihood of the final state (each token
    /// explained by the background/topic mixture under the document's most
    /// probable topic) — used to pick the best Gibbs restart.
    pub log_likelihood: f64,
}

impl TwitterLdaModel {
    /// The document's most probable topic — FaitCrowd's hard topic
    /// assignment per task.
    pub fn dominant_topic(&self, doc: usize) -> usize {
        docs_types::prob::argmax(&self.doc_topics[doc])
    }

    /// Training-corpus perplexity `exp(−LL / #tokens)` (lower is better);
    /// infinity for an empty corpus.
    pub fn perplexity(&self) -> f64 {
        if self.num_tokens == 0 {
            return f64::INFINITY;
        }
        (-self.log_likelihood / self.num_tokens as f64).exp()
    }

    /// The `n` highest-probability word ids of a topic.
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<usize> {
        let phi = &self.topic_words[topic];
        let mut order: Vec<usize> = (0..phi.len()).collect();
        order.sort_by(|&a, &b| {
            phi[b]
                .partial_cmp(&phi[a])
                .expect("phi has no NaN")
                .then(a.cmp(&b))
        });
        order.truncate(n);
        order
    }
}

/// The TwitterLDA trainer.
#[derive(Debug, Clone, Default)]
pub struct TwitterLda {
    config: TwitterLdaConfig,
}

impl TwitterLda {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TwitterLdaConfig) -> Self {
        assert!(config.num_topics >= 1);
        assert!(config.iterations > config.burn_in);
        TwitterLda { config }
    }

    /// Fits the model to raw texts.
    pub fn fit_texts(&self, texts: &[String]) -> TwitterLdaModel {
        let (vocab, docs) = Vocabulary::encode_corpus(texts);
        self.fit(&docs, vocab.len().max(1))
    }

    /// Fits the model to encoded documents over a vocabulary of size `v`.
    pub fn fit(&self, docs: &[Vec<usize>], v: usize) -> TwitterLdaModel {
        let t = self.config.num_topics;
        let cfg = self.config;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Per-document topic and per-token switch (true = topic word).
        let mut z: Vec<usize> = (0..docs.len()).map(|_| rng.gen_range(0..t)).collect();
        let mut y: Vec<Vec<bool>> = docs
            .iter()
            .map(|doc| doc.iter().map(|_| rng.gen_bool(0.5)).collect())
            .collect();

        // Counts.
        let mut n_z = vec![0usize; t]; // docs per topic
        let mut ntw = vec![vec![0usize; v]; t]; // topic-word
        let mut nt = vec![0usize; t]; // topic totals
        let mut nbw = vec![0usize; v]; // background-word
        let mut nb = 0usize; // background total
        let mut n_switch = [0usize; 2]; // [background, topic] token counts

        for (d, doc) in docs.iter().enumerate() {
            n_z[z[d]] += 1;
            for (i, &w) in doc.iter().enumerate() {
                if y[d][i] {
                    ntw[z[d]][w] += 1;
                    nt[z[d]] += 1;
                    n_switch[1] += 1;
                } else {
                    nbw[w] += 1;
                    nb += 1;
                    n_switch[0] += 1;
                }
            }
        }

        let vb = v as f64 * cfg.beta;
        let mut topic_acc = vec![vec![0.0; t]; docs.len()];
        let mut samples = 0usize;
        let mut log_weights = vec![0.0f64; t];

        for sweep in 0..cfg.iterations {
            // --- Resample the document topics. ---
            for (d, doc) in docs.iter().enumerate() {
                let old = z[d];
                n_z[old] -= 1;
                for (i, &w) in doc.iter().enumerate() {
                    if y[d][i] {
                        ntw[old][w] -= 1;
                        nt[old] -= 1;
                    }
                }
                // log p(z_d = k) = log(n_z + α) + Σ_topic-words log likelihood,
                // with counts advanced per token to stay exact on repeats.
                for (k, lw) in log_weights.iter_mut().enumerate() {
                    let mut lp = (n_z[k] as f64 + cfg.alpha).ln();
                    let mut added: Vec<(usize, usize)> = Vec::new();
                    let mut added_total = 0usize;
                    for (i, &w) in doc.iter().enumerate() {
                        if !y[d][i] {
                            continue;
                        }
                        let dup = added
                            .iter()
                            .find(|(ww, _)| *ww == w)
                            .map(|(_, c)| *c)
                            .unwrap_or(0);
                        lp += ((ntw[k][w] + dup) as f64 + cfg.beta).ln()
                            - ((nt[k] + added_total) as f64 + vb).ln();
                        match added.iter_mut().find(|(ww, _)| *ww == w) {
                            Some((_, c)) => *c += 1,
                            None => added.push((w, 1)),
                        }
                        added_total += 1;
                    }
                    *lw = lp;
                }
                // Normalize in log space and sample.
                let max = log_weights
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                let mut total = 0.0;
                let weights: Vec<f64> = log_weights
                    .iter()
                    .map(|&lp| {
                        let p = (lp - max).exp();
                        total += p;
                        p
                    })
                    .collect();
                let mut draw = rng.gen::<f64>() * total;
                let mut new = t - 1;
                for (k, &wk) in weights.iter().enumerate() {
                    draw -= wk;
                    if draw < 0.0 {
                        new = k;
                        break;
                    }
                }
                z[d] = new;
                n_z[new] += 1;
                for (i, &w) in doc.iter().enumerate() {
                    if y[d][i] {
                        ntw[new][w] += 1;
                        nt[new] += 1;
                    }
                }
            }

            // --- Resample the background/topic switches. ---
            for (d, doc) in docs.iter().enumerate() {
                let zd = z[d];
                for (i, &w) in doc.iter().enumerate() {
                    // Remove current assignment.
                    if y[d][i] {
                        ntw[zd][w] -= 1;
                        nt[zd] -= 1;
                        n_switch[1] -= 1;
                    } else {
                        nbw[w] -= 1;
                        nb -= 1;
                        n_switch[0] -= 1;
                    }
                    let p_bg = (n_switch[0] as f64 + cfg.gamma) * (nbw[w] as f64 + cfg.beta)
                        / (nb as f64 + vb);
                    let p_topic = (n_switch[1] as f64 + cfg.gamma) * (ntw[zd][w] as f64 + cfg.beta)
                        / (nt[zd] as f64 + vb);
                    let topic_word = rng.gen::<f64>() * (p_bg + p_topic) < p_topic;
                    y[d][i] = topic_word;
                    if topic_word {
                        ntw[zd][w] += 1;
                        nt[zd] += 1;
                        n_switch[1] += 1;
                    } else {
                        nbw[w] += 1;
                        nb += 1;
                        n_switch[0] += 1;
                    }
                }
            }

            if sweep >= cfg.burn_in {
                samples += 1;
                for (d, &zd) in z.iter().enumerate() {
                    topic_acc[d][zd] += 1.0;
                }
            }
        }

        let doc_topics: Vec<Vec<f64>> = topic_acc
            .into_iter()
            .map(|mut acc| {
                if samples == 0 {
                    acc = docs_types::prob::uniform(t);
                }
                docs_types::prob::normalize_in_place(&mut acc);
                acc
            })
            .collect();

        // Final-state pseudo log-likelihood: each token under the
        // background/topic mixture of its document's dominant topic.
        let p_topic = (n_switch[1] as f64 + cfg.gamma)
            / ((n_switch[0] + n_switch[1]) as f64 + 2.0 * cfg.gamma);
        let p_bg = 1.0 - p_topic;
        let mut log_likelihood = 0.0;
        for (d, doc) in docs.iter().enumerate() {
            let zd = docs_types::prob::argmax(&doc_topics[d]);
            for &w in doc {
                let phi_bg = (nbw[w] as f64 + cfg.beta) / (nb as f64 + vb);
                let phi_t = (ntw[zd][w] as f64 + cfg.beta) / (nt[zd] as f64 + vb);
                log_likelihood += (p_bg * phi_bg + p_topic * phi_t).max(1e-300).ln();
            }
        }

        let topic_words: Vec<Vec<f64>> = (0..t)
            .map(|k| {
                (0..v)
                    .map(|w| (ntw[k][w] as f64 + cfg.beta) / (nt[k] as f64 + vb))
                    .collect()
            })
            .collect();
        let background_words: Vec<f64> = (0..v)
            .map(|w| (nbw[w] as f64 + cfg.beta) / (nb as f64 + vb))
            .collect();

        TwitterLdaModel {
            doc_topics,
            topic_words,
            background_words,
            num_topics: t,
            num_tokens: docs.iter().map(Vec::len).sum(),
            log_likelihood,
        }
    }

    /// Fits `restarts` times with derived seeds; returns the run with the
    /// highest training log-likelihood.
    pub fn fit_texts_best_of(&self, texts: &[String], restarts: usize) -> TwitterLdaModel {
        assert!(restarts >= 1);
        let (vocab, docs) = Vocabulary::encode_corpus(texts);
        let v = vocab.len().max(1);
        (0..restarts)
            .map(|r| {
                let mut cfg = self.config;
                cfg.seed = self.config.seed.wrapping_add(r as u64 * 0x9E3779B9);
                TwitterLda::new(cfg).fit(&docs, v)
            })
            .max_by(|a, b| {
                a.log_likelihood
                    .partial_cmp(&b.log_likelihood)
                    .expect("finite log-likelihood")
            })
            .expect("at least one restart")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_eval_surfaces_are_consistent() {
        let corpus: Vec<String> = [
            "curry dunks basketball playoffs",
            "basketball playoffs dunks curry",
            "chocolate calories honey sugar",
            "sugar honey chocolate calories",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let model = TwitterLda::new(TwitterLdaConfig {
            num_topics: 2,
            ..Default::default()
        })
        .fit_texts_best_of(&corpus, 2);
        assert!(model.perplexity().is_finite() && model.perplexity() > 1.0);
        assert_eq!(model.topic_words.len(), 2);
        for phi in &model.topic_words {
            let sum: f64 = phi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        let bg_sum: f64 = model.background_words.iter().sum();
        assert!((bg_sum - 1.0).abs() < 1e-9);
        let top = model.top_words(0, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(model.num_tokens, 16);
    }

    fn clustered_corpus() -> Vec<String> {
        // Shared template words ("compare", "contains") act as background;
        // content words separate the clusters.
        let sports = [
            "compare curry dunks basketball",
            "compare basketball playoffs dunks",
            "compare curry basketball playoffs",
        ];
        let food = [
            "compare chocolate calories honey",
            "compare sugar honey calories",
            "compare chocolate sugar calories",
        ];
        sports
            .iter()
            .chain(food.iter())
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn separates_clusters_despite_shared_template() {
        let corpus = clustered_corpus();
        let model = TwitterLda::new(TwitterLdaConfig {
            num_topics: 2,
            ..Default::default()
        })
        .fit_texts(&corpus);
        let t0 = model.dominant_topic(0);
        assert_eq!(model.dominant_topic(1), t0);
        assert_eq!(model.dominant_topic(2), t0);
        let t1 = model.dominant_topic(3);
        assert_ne!(t0, t1, "clusters should land in different topics");
        assert_eq!(model.dominant_topic(4), t1);
        assert_eq!(model.dominant_topic(5), t1);
    }

    #[test]
    fn doc_topics_are_distributions() {
        let corpus = clustered_corpus();
        let model = TwitterLda::default().fit_texts(&corpus);
        for row in &model.doc_topics {
            assert!(docs_types::prob::is_distribution(row), "{row:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = clustered_corpus();
        let a = TwitterLda::default().fit_texts(&corpus);
        let b = TwitterLda::default().fit_texts(&corpus);
        assert_eq!(a.doc_topics, b.doc_topics);
    }

    #[test]
    fn single_topic_degenerates_gracefully() {
        let corpus = clustered_corpus();
        let model = TwitterLda::new(TwitterLdaConfig {
            num_topics: 1,
            ..Default::default()
        })
        .fit_texts(&corpus);
        for d in 0..corpus.len() {
            assert_eq!(model.dominant_topic(d), 0);
        }
    }

    #[test]
    fn handles_empty_documents() {
        let corpus = vec!["".to_string(), "curry basketball curry".to_string()];
        let model = TwitterLda::default().fit_texts(&corpus);
        assert!(docs_types::prob::is_distribution(&model.doc_topics[0]));
    }
}
