//! Text preprocessing shared by both topic models.

use std::collections::HashMap;

/// Minimal English stop-word list; topic models on short task descriptions
/// drown in function words otherwise. Kept deliberately small — the point of
/// the Figure 3 experiment is that even reasonable preprocessing does not
/// save latent-topic methods on heterogeneous text.
const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "between", "by", "did", "do", "does", "for", "from",
    "has", "have", "he", "her", "his", "how", "in", "is", "it", "its", "more", "of", "on", "or",
    "she", "than", "that", "the", "their", "them", "there", "they", "this", "to", "was", "were",
    "what", "when", "where", "which", "who", "will", "with",
];

/// Lower-cases, strips punctuation, and drops stop words.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric() && c != '\'')
        .map(|t| t.to_lowercase())
        .filter(|t| !t.is_empty() && !STOP_WORDS.contains(&t.as_str()))
        .collect()
}

/// Bidirectional word ↔ id mapping over a corpus.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    word_to_id: HashMap<String, usize>,
    words: Vec<String>,
}

impl Vocabulary {
    /// Builds the vocabulary and encodes each document as word ids in one
    /// pass over the corpus.
    pub fn encode_corpus(texts: &[String]) -> (Vocabulary, Vec<Vec<usize>>) {
        let mut vocab = Vocabulary::default();
        let docs = texts
            .iter()
            .map(|t| tokenize(t).into_iter().map(|w| vocab.intern(w)).collect())
            .collect();
        (vocab, docs)
    }

    /// Returns the id of a word, inserting it if new.
    pub fn intern(&mut self, word: String) -> usize {
        if let Some(&id) = self.word_to_id.get(&word) {
            return id;
        }
        let id = self.words.len();
        self.word_to_id.insert(word.clone(), id);
        self.words.push(word);
        id
    }

    /// Id of a known word.
    pub fn id(&self, word: &str) -> Option<usize> {
        self.word_to_id.get(word).copied()
    }

    /// Word of an id.
    pub fn word(&self, id: usize) -> &str {
        &self.words[id]
    }

    /// Vocabulary size `V`.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_drops_stopwords_and_punct() {
        let toks = tokenize("Is Stephen Curry a PF?");
        assert_eq!(toks, vec!["stephen", "curry", "pf"]);
    }

    #[test]
    fn encode_corpus_interns_consistently() {
        let texts = vec![
            "curry curry warriors".to_string(),
            "warriors curry".to_string(),
        ];
        let (vocab, docs) = Vocabulary::encode_corpus(&texts);
        assert_eq!(vocab.len(), 2);
        let curry = vocab.id("curry").unwrap();
        let warriors = vocab.id("warriors").unwrap();
        assert_eq!(docs[0], vec![curry, curry, warriors]);
        assert_eq!(docs[1], vec![warriors, curry]);
        assert_eq!(vocab.word(curry), "curry");
    }

    #[test]
    fn empty_corpus() {
        let (vocab, docs) = Vocabulary::encode_corpus(&[]);
        assert!(vocab.is_empty());
        assert!(docs.is_empty());
    }
}
