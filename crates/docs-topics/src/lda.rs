//! Latent Dirichlet Allocation [6] with collapsed Gibbs sampling — the topic
//! model the iCrowd baseline uses for task-domain detection.

use crate::Vocabulary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// LDA hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LdaConfig {
    /// Number of latent topics (the `m′` iCrowd sets by hand).
    pub num_topics: usize,
    /// Dirichlet prior on the document-topic distribution.
    pub alpha: f64,
    /// Dirichlet prior on the topic-word distribution.
    pub beta: f64,
    /// Gibbs sweeps.
    pub iterations: usize,
    /// Sweeps discarded before accumulating the posterior.
    pub burn_in: usize,
    /// RNG seed; sampling is deterministic given the seed.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig {
            num_topics: 4,
            alpha: 0.5,
            beta: 0.1,
            iterations: 200,
            burn_in: 100,
            seed: 0x1DA,
        }
    }
}

/// Fitted LDA model: per-document topic distributions.
#[derive(Debug, Clone)]
pub struct LdaModel {
    /// θ_d per document — a distribution over the latent topics.
    pub doc_topics: Vec<Vec<f64>>,
    /// φ_k per topic — a distribution over the vocabulary (final Gibbs
    /// state, smoothed by β).
    pub topic_words: Vec<Vec<f64>>,
    /// Number of topics.
    pub num_topics: usize,
    /// Total training tokens (for perplexity).
    pub num_tokens: usize,
    /// Training pseudo log-likelihood `Σ_tokens ln Σ_k θ_dk·φ_kw` of the
    /// final state — used to pick the best of several Gibbs restarts
    /// (collapsed Gibbs is prone to local optima on small corpora).
    pub log_likelihood: f64,
}

impl LdaModel {
    /// The dominant latent topic of a document.
    pub fn dominant_topic(&self, doc: usize) -> usize {
        docs_types::prob::argmax(&self.doc_topics[doc])
    }

    /// Training-corpus perplexity `exp(−LL / #tokens)` — the standard
    /// goodness-of-fit summary (lower is better). Returns infinity for an
    /// empty corpus.
    pub fn perplexity(&self) -> f64 {
        if self.num_tokens == 0 {
            return f64::INFINITY;
        }
        (-self.log_likelihood / self.num_tokens as f64).exp()
    }

    /// The `n` highest-probability word ids of a topic — the usual way to
    /// inspect what a latent topic "means".
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<usize> {
        let phi = &self.topic_words[topic];
        let mut order: Vec<usize> = (0..phi.len()).collect();
        order.sort_by(|&a, &b| {
            phi[b]
                .partial_cmp(&phi[a])
                .expect("phi has no NaN")
                .then(a.cmp(&b))
        });
        order.truncate(n);
        order
    }

    /// Cosine similarity between two documents' topic distributions — the
    /// pairwise task similarity iCrowd uses.
    pub fn cosine_similarity(&self, a: usize, b: usize) -> f64 {
        let (x, y) = (&self.doc_topics[a], &self.doc_topics[b]);
        let dot: f64 = x.iter().zip(y).map(|(p, q)| p * q).sum();
        let nx: f64 = x.iter().map(|p| p * p).sum::<f64>().sqrt();
        let ny: f64 = y.iter().map(|p| p * p).sum::<f64>().sqrt();
        if nx == 0.0 || ny == 0.0 {
            0.0
        } else {
            dot / (nx * ny)
        }
    }
}

/// The LDA trainer.
#[derive(Debug, Clone, Default)]
pub struct Lda {
    config: LdaConfig,
}

impl Lda {
    /// Creates a trainer with the given configuration.
    pub fn new(config: LdaConfig) -> Self {
        assert!(config.num_topics >= 1);
        assert!(config.iterations > config.burn_in);
        Lda { config }
    }

    /// Fits the model to raw texts (tokenization + vocabulary included).
    pub fn fit_texts(&self, texts: &[String]) -> LdaModel {
        let (vocab, docs) = Vocabulary::encode_corpus(texts);
        self.fit(&docs, vocab.len().max(1))
    }

    /// Fits the model to encoded documents over a vocabulary of size `v`.
    pub fn fit(&self, docs: &[Vec<usize>], v: usize) -> LdaModel {
        let t = self.config.num_topics;
        let alpha = self.config.alpha;
        let beta = self.config.beta;
        let mut rng = SmallRng::seed_from_u64(self.config.seed);

        // Counts: document-topic, topic-word, topic totals.
        let mut ndt = vec![vec![0usize; t]; docs.len()];
        let mut ntw = vec![vec![0usize; v]; t];
        let mut nt = vec![0usize; t];
        // Topic assignment per token.
        let mut z: Vec<Vec<usize>> = docs
            .iter()
            .map(|doc| doc.iter().map(|_| rng.gen_range(0..t)).collect())
            .collect();
        for (d, doc) in docs.iter().enumerate() {
            for (i, &w) in doc.iter().enumerate() {
                let topic = z[d][i];
                ndt[d][topic] += 1;
                ntw[topic][w] += 1;
                nt[topic] += 1;
            }
        }

        let mut theta_acc = vec![vec![0.0; t]; docs.len()];
        let mut samples = 0usize;
        let mut weights = vec![0.0; t];

        for sweep in 0..self.config.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = z[d][i];
                    ndt[d][old] -= 1;
                    ntw[old][w] -= 1;
                    nt[old] -= 1;

                    // p(z = k | rest) ∝ (n_dk + α)(n_kw + β)/(n_k + Vβ)
                    let mut total = 0.0;
                    for (k, wk) in weights.iter_mut().enumerate() {
                        let p = (ndt[d][k] as f64 + alpha) * (ntw[k][w] as f64 + beta)
                            / (nt[k] as f64 + v as f64 * beta);
                        *wk = p;
                        total += p;
                    }
                    let mut draw = rng.gen::<f64>() * total;
                    let mut new = t - 1;
                    for (k, &wk) in weights.iter().enumerate() {
                        draw -= wk;
                        if draw < 0.0 {
                            new = k;
                            break;
                        }
                    }

                    z[d][i] = new;
                    ndt[d][new] += 1;
                    ntw[new][w] += 1;
                    nt[new] += 1;
                }
            }
            if sweep >= self.config.burn_in {
                samples += 1;
                for (d, doc) in docs.iter().enumerate() {
                    let nd = doc.len() as f64;
                    for k in 0..t {
                        theta_acc[d][k] += (ndt[d][k] as f64 + alpha) / (nd + t as f64 * alpha);
                    }
                }
            }
        }

        let doc_topics: Vec<Vec<f64>> = theta_acc
            .into_iter()
            .map(|mut acc| {
                if samples > 0 {
                    acc.iter_mut().for_each(|x| *x /= samples as f64);
                } else {
                    acc = docs_types::prob::uniform(t);
                }
                docs_types::prob::normalize_in_place(&mut acc);
                acc
            })
            .collect();

        // Final-state topic-word distributions φ and the training
        // pseudo log-likelihood.
        let phi: Vec<Vec<f64>> = (0..t)
            .map(|k| {
                (0..v)
                    .map(|w| (ntw[k][w] as f64 + beta) / (nt[k] as f64 + v as f64 * beta))
                    .collect()
            })
            .collect();
        let mut log_likelihood = 0.0;
        for (d, doc) in docs.iter().enumerate() {
            for &w in doc {
                let p: f64 = (0..t).map(|k| doc_topics[d][k] * phi[k][w]).sum();
                log_likelihood += p.max(1e-300).ln();
            }
        }

        LdaModel {
            doc_topics,
            topic_words: phi,
            num_topics: t,
            num_tokens: docs.iter().map(Vec::len).sum(),
            log_likelihood,
        }
    }

    /// Picks the number of latent topics by a BIC-style criterion over the
    /// candidate values: `LL − ½·params·ln(#tokens)` with
    /// `params = K(V−1) + D(K−1)` free parameters.
    ///
    /// The paper criticizes the topic-model baselines because they
    /// "manually set the number of latent domains"; this is the standard
    /// data-driven alternative. Returns the winning `K` and the per-
    /// candidate scores. Each candidate is fit `restarts` times (best of).
    pub fn select_num_topics(
        &self,
        texts: &[String],
        candidates: &[usize],
        restarts: usize,
    ) -> (usize, Vec<(usize, f64)>) {
        assert!(!candidates.is_empty(), "need at least one candidate K");
        let (vocab, docs) = Vocabulary::encode_corpus(texts);
        let v = vocab.len().max(1);
        let tokens: usize = docs.iter().map(Vec::len).sum();
        let d = docs.len();
        let mut scores = Vec::with_capacity(candidates.len());
        for &k in candidates {
            assert!(k >= 1, "K must be positive");
            let mut best = f64::NEG_INFINITY;
            for r in 0..restarts.max(1) {
                let trainer = Lda::new(LdaConfig {
                    num_topics: k,
                    seed: self.config.seed ^ ((k as u64) << 8) ^ r as u64,
                    ..self.config
                });
                best = best.max(trainer.fit(&docs, v).log_likelihood);
            }
            let params = (k * (v - 1) + d * (k - 1)) as f64;
            let bic = best - 0.5 * params * (tokens.max(2) as f64).ln();
            scores.push((k, bic));
        }
        let winner = scores
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
            .expect("candidates non-empty")
            .0;
        (winner, scores)
    }

    /// Fits the model `restarts` times with derived seeds and returns the
    /// run with the highest training log-likelihood — the standard guard
    /// against collapsed-Gibbs local optima.
    pub fn fit_texts_best_of(&self, texts: &[String], restarts: usize) -> LdaModel {
        assert!(restarts >= 1);
        let (vocab, docs) = Vocabulary::encode_corpus(texts);
        let v = vocab.len().max(1);
        (0..restarts)
            .map(|r| {
                let mut cfg = self.config;
                cfg.seed = self.config.seed.wrapping_add(r as u64 * 0x9E3779B9);
                Lda::new(cfg).fit(&docs, v)
            })
            .max_by(|a, b| {
                a.log_likelihood
                    .partial_cmp(&b.log_likelihood)
                    .expect("finite log-likelihood")
            })
            .expect("at least one restart")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cleanly separated vocabularies ⇒ LDA with 2 topics must put
    /// same-cluster documents in the same dominant topic.
    fn clustered_corpus() -> Vec<String> {
        let sports = [
            "curry dunks basketball playoffs",
            "basketball playoffs dunks",
            "curry basketball court dunks",
        ];
        let food = [
            "chocolate calories honey sugar",
            "sugar honey recipe calories",
            "chocolate recipe sugar dessert",
        ];
        sports
            .iter()
            .chain(food.iter())
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn perplexity_and_top_words_on_clean_clusters() {
        let corpus = clustered_corpus();
        let lda = Lda::new(LdaConfig {
            num_topics: 2,
            ..Default::default()
        });
        let model = lda.fit_texts_best_of(&corpus, 3);
        // Perplexity bounded by vocabulary size (uniform model) and finite.
        let (vocab, _) = Vocabulary::encode_corpus(&corpus);
        let ppl = model.perplexity();
        assert!(ppl.is_finite() && ppl > 1.0);
        assert!(
            ppl < vocab.len() as f64,
            "fit must beat the uniform model: {ppl} vs V={}",
            vocab.len()
        );
        // φ rows are distributions; top words exist and are distinct.
        for k in 0..2 {
            let sum: f64 = model.topic_words[k].iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            let top = model.top_words(k, 3);
            assert_eq!(top.len(), 3);
            assert!(top[0] != top[1] && top[1] != top[2]);
        }
    }

    #[test]
    fn model_selection_prefers_the_true_cluster_count() {
        let corpus = clustered_corpus();
        let lda = Lda::new(LdaConfig {
            num_topics: 2, // base config; K is overridden per candidate
            ..Default::default()
        });
        let (k, scores) = lda.select_num_topics(&corpus, &[1, 2, 6], 3);
        assert_eq!(scores.len(), 3);
        // BIC must not pick the grossly over-parameterized K = 6; on this
        // cleanly two-cluster corpus the winner is 1 or 2 (the penalty can
        // legitimately prefer 1 on six tiny documents), never 6.
        assert!(k == 1 || k == 2, "selected K = {k}, scores: {scores:?}");
        let score_of = |kk: usize| scores.iter().find(|(c, _)| *c == kk).unwrap().1;
        assert!(score_of(2) > score_of(6));
    }

    #[test]
    fn empty_corpus_has_infinite_perplexity() {
        let lda = Lda::new(LdaConfig {
            num_topics: 2,
            ..Default::default()
        });
        let model = lda.fit_texts(&[]);
        assert_eq!(model.num_tokens, 0);
        assert!(model.perplexity().is_infinite());
    }

    #[test]
    fn separates_clean_clusters() {
        let corpus = clustered_corpus();
        let lda = Lda::new(LdaConfig {
            num_topics: 2,
            ..Default::default()
        });
        let model = lda.fit_texts(&corpus);
        let t0 = model.dominant_topic(0);
        assert_eq!(model.dominant_topic(1), t0);
        assert_eq!(model.dominant_topic(2), t0);
        let t1 = model.dominant_topic(3);
        assert_ne!(t0, t1);
        assert_eq!(model.dominant_topic(4), t1);
        assert_eq!(model.dominant_topic(5), t1);
    }

    #[test]
    fn doc_topics_are_distributions() {
        let corpus = clustered_corpus();
        let model = Lda::default().fit_texts(&corpus);
        for theta in &model.doc_topics {
            assert!(docs_types::prob::is_distribution(theta), "{theta:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = clustered_corpus();
        let a = Lda::default().fit_texts(&corpus);
        let b = Lda::default().fit_texts(&corpus);
        assert_eq!(a.doc_topics, b.doc_topics);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let corpus = clustered_corpus();
        let model = Lda::new(LdaConfig {
            num_topics: 2,
            ..Default::default()
        })
        .fit_texts(&corpus);
        let same = model.cosine_similarity(0, 1);
        let cross = model.cosine_similarity(0, 3);
        assert!(same > cross, "same-cluster {same} vs cross-cluster {cross}");
        assert!((0.0..=1.0 + 1e-9).contains(&same));
    }

    #[test]
    fn handles_empty_documents() {
        let corpus = vec!["".to_string(), "curry basketball".to_string()];
        let model = Lda::default().fit_texts(&corpus);
        assert!(docs_types::prob::is_distribution(&model.doc_topics[0]));
    }
}
