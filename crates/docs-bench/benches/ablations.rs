//! Design-choice ablations called out in DESIGN.md:
//!
//! * `hashmap_key`: Algorithm 1 with packed-u64 vs tuple hash-map keys,
//! * `topk`: linear quickselect vs full sort in OTA's top-k,
//! * `incremental_vs_iterative`: one incremental TI update vs a full
//!   iterative re-run (the z-period trade-off of Section 4.2),
//! * `entropy_benefit`: the benefit function vs the cheaper variance-style
//!   confidence gap (what Definition 5 buys over a simpler score).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use docs_core::dve::{domain_vector, domain_vector_tuple_key};
use docs_core::ota::{benefit, top_k_by_sort, top_k_linear};
use docs_core::ti::{IncrementalTi, TaskState, WorkerRegistry};
use docs_kb::generator::synthetic_entities;
use docs_types::{Answer, DomainVector, TaskId, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_hashmap_key(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hashmap_key");
    for entities in [4usize, 8] {
        let es = synthetic_entities(26, entities, 20, 2, 0xAB);
        group.bench_with_input(BenchmarkId::new("packed_u64", entities), &es, |b, es| {
            b.iter(|| black_box(domain_vector(es, 26)))
        });
        group.bench_with_input(BenchmarkId::new("tuple", entities), &es, |b, es| {
            b.iter(|| black_box(domain_vector_tuple_key(es, 26)))
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0x70);
    let candidates: Vec<(f64, TaskId)> = (0..50_000u32)
        .map(|t| (rng.gen::<f64>(), TaskId(t)))
        .collect();
    let mut group = c.benchmark_group("ablation_topk");
    for k in [20usize, 500] {
        group.bench_with_input(BenchmarkId::new("linear", k), &k, |b, &k| {
            b.iter(|| black_box(top_k_linear(candidates.clone(), k)))
        });
        group.bench_with_input(BenchmarkId::new("sort", k), &k, |b, &k| {
            b.iter(|| black_box(top_k_by_sort(candidates.clone(), k)))
        });
    }
    group.finish();
}

fn bench_incremental_vs_iterative(c: &mut Criterion) {
    let tasks = docs_datasets::scalability_tasks(1_000, 20, 0x1C);
    let registry = WorkerRegistry::new(20, 0.7);
    // Warm an engine with 5 answers per task.
    let mut engine = IncrementalTi::new(tasks, registry, 0);
    let mut rng = SmallRng::seed_from_u64(0x1C1C);
    for t in 0..1_000usize {
        for w in 0..5usize {
            engine
                .submit(Answer {
                    task: TaskId::from(t),
                    worker: WorkerId::from(w * 37 + t % 29),
                    choice: rng.gen_range(0..2),
                })
                .unwrap();
        }
    }
    let mut group = c.benchmark_group("ablation_incremental");
    group.sample_size(10);
    group.bench_function("one_incremental_update", |b| {
        let mut w = 10_000u32;
        b.iter(|| {
            w += 1;
            let mut e = engine.clone();
            black_box(
                e.submit(Answer {
                    task: TaskId(0),
                    worker: WorkerId(w),
                    choice: 0,
                })
                .unwrap(),
            )
        })
    });
    group.bench_function("full_iterative_rerun", |b| {
        b.iter(|| {
            let mut e = engine.clone();
            black_box(e.run_full())
        })
    });
    group.finish();
}

fn bench_entropy_benefit(c: &mut Criterion) {
    let r = DomainVector::uniform(20);
    let mut st = TaskState::new(20, 2);
    let q: Vec<f64> = (0..20).map(|k| 0.5 + (k as f64) * 0.02).collect();
    st.apply_answer(&r, &q, 0);
    let mut group = c.benchmark_group("ablation_benefit");
    group.bench_function("entropy_reduction", |b| {
        b.iter(|| black_box(benefit(&st, &r, &q)))
    });
    group.bench_function("confidence_gap", |b| {
        b.iter(|| {
            // Cheaper heuristic: 1 − max_j s_j, no posterior lookahead.
            let s = st.s();
            black_box(1.0 - s.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hashmap_key,
    bench_topk,
    bench_incremental_vs_iterative,
    bench_entropy_benefit
);
criterion_main!(benches);
