//! Open-loop assignment-latency harness: pull vs push vs hybrid dispatch
//! under Poisson worker arrivals at 100 / 1 000 / 5 000 concurrent workers.
//!
//! ```text
//! cargo bench -p docs-bench --bench open_loop               # full matrix
//! LOAD_SMOKE=1 cargo bench -p docs-bench --bench open_loop  # CI size
//! ```
//!
//! Closed-loop drivers (`service_pipeline`) measure throughput; they cannot
//! see tail latency honestly because a slow response *delays the next
//! request* and the backlog hides itself (coordinated omission). This
//! harness is open-loop: every worker interaction gets a **scheduled**
//! arrival time drawn from an exponential inter-arrival distribution, and
//! every latency is measured from that scheduled instant — if the service
//! (or a saturated client thread) falls behind, the backlog shows up in
//! the percentiles instead of silently stretching the schedule.
//!
//! One interaction = one worker finishing its held HIT: the answer batch is
//! submitted and the *next* assignment is obtained, both measured from the
//! scheduled instant.
//!
//! * **pull** — the batch submission and a `RequestWork` poll are
//!   pipelined back-to-back; per-campaign FIFO guarantees the poll picks
//!   post-submit state, but it waits its own turn in the ingress queue, so
//!   at high worker concurrency every other in-flight worker's requests
//!   can interleave between a worker's submit and its next HIT.
//! * **push** — the worker holds a standing assignment subscription
//!   (parked server-side at its in-flight cap); the submit itself triggers
//!   the dispatch pass that resolves the subscription, so the next HIT
//!   rides the submit's processing with nothing interleaved — the
//!   assignment path never re-enters the queue.
//! * **hybrid** — push with a pull fallback: the client waits a bounded
//!   time on its subscription and falls back to unsubscribe + poll on a
//!   miss (the unsubscribe/poll race against an in-flight dispatch is
//!   resolved by re-checking the subscription ticket, which the server
//!   always settles).
//!
//! Picks stay byte-identical across modes (`tests/dispatch.rs` proves it
//! under proptest); this harness measures *when* the picks arrive.
//! Latencies land in the fixed-footprint log-bucketed
//! [`docs_bench::hist::LatencyHistogram`]; the full run merges
//! p50/p99/p999 assignment and p99 submit latency per cell into
//! `BENCH_latency.json`. The smoke run (`LOAD_SMOKE=1`) prints and
//! asserts a generous p99 assignment bound instead of merging, so CI
//! never writes machine-speed-dependent numbers over the committed
//! trajectory.

use docs_bench::hist::LatencyHistogram;
use docs_service::{
    DispatchMode, DocsService, ServiceConfig, ServiceError, ServiceHandle, Ticket, TicketWait,
};
use docs_system::{Docs, DocsConfig, WorkRequest};
use docs_types::{Answer, CampaignId, Task, TaskBuilder, TaskId, WorkerId};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::time::{Duration, Instant};

/// How long a hybrid client waits on its subscription before the pull
/// fallback. Generous against scheduler noise, far below the smoke bound.
const HYBRID_FALLBACK: Duration = Duration::from_millis(25);

fn smoke() -> bool {
    std::env::var("LOAD_SMOKE").is_ok()
}

/// One matrix cell: worker count, total arrival rate, measured duration.
struct Cell {
    workers: u32,
    arrivals_per_s: f64,
    duration: Duration,
}

fn cells() -> Vec<Cell> {
    if smoke() {
        // The CI cell from the issue: 200 workers for ~5 s.
        vec![Cell {
            workers: 200,
            arrivals_per_s: 600.0,
            duration: Duration::from_secs(5),
        }]
    } else {
        vec![
            Cell {
                workers: 100,
                arrivals_per_s: 600.0,
                duration: Duration::from_secs(4),
            },
            // Same arrival rate for the two big cells: worker concurrency
            // is the experiment's axis, load is held constant across it.
            Cell {
                workers: 1000,
                arrivals_per_s: 2000.0,
                duration: Duration::from_secs(4),
            },
            Cell {
                workers: 5000,
                arrivals_per_s: 2000.0,
                duration: Duration::from_secs(4),
            },
        ]
    }
}

/// An unbounded-budget campaign (`answers_per_task: 0`): the run stays in
/// steady state instead of racing toward budget exhaustion, and a worker
/// only runs dry after answering every task once.
fn publish_campaign() -> Docs {
    let kb = docs_kb::table2_example_kb();
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    let tasks: Vec<Task> = (0..160)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect();
    Docs::publish(
        &kb,
        tasks,
        DocsConfig {
            num_golden: 4,
            k_per_hit: 2,
            answers_per_task: 0,
            z: 50,
            task_shards: 2,
            ..Default::default()
        },
    )
    .expect("publish open-loop campaign")
}

fn mode_name(mode: DispatchMode) -> &'static str {
    match mode {
        DispatchMode::Pull => "pull",
        DispatchMode::Push => "push",
        DispatchMode::Hybrid => "hybrid",
    }
}

/// The deterministic answer a worker gives a task (same rule as the
/// replication bench: a worker-dependent half of each HIT is "yes").
fn answers_for(worker: WorkerId, hit: &[TaskId]) -> Vec<Answer> {
    hit.iter()
        .map(|&t| Answer::new(worker, t, (t.index() + worker.0 as usize) % 2))
        .collect()
}

/// One simulated worker's client-side state.
struct Worker {
    id: WorkerId,
    /// The HIT currently held (answered at the next scheduled arrival).
    hit: Vec<TaskId>,
    /// The standing assignment subscription (push/hybrid; parked
    /// server-side while the worker is at its in-flight cap).
    standing: Option<Ticket<WorkRequest>>,
}

/// What one load-generator thread measured.
#[derive(Default)]
struct ThreadReport {
    assign: Option<LatencyHistogram>,
    submit: Option<LatencyHistogram>,
    cycles: u64,
    fallbacks: u64,
    retired: u64,
}

/// Aggregated cell result.
struct CellResult {
    assign: LatencyHistogram,
    submit: LatencyHistogram,
    cycles: u64,
    fallbacks: u64,
    retired: u64,
    dispatched_tasks: u64,
}

/// Golden bootstrap + first HIT + (push/hybrid) the standing subscription,
/// all before the clock starts.
fn prime_worker(
    handle: &ServiceHandle,
    campaign: CampaignId,
    mode: DispatchMode,
    id: WorkerId,
) -> Worker {
    let golden = match handle.request_tasks_in(campaign, id).expect("golden req") {
        WorkRequest::Golden(g) => g,
        other => panic!("fresh worker got {other:?}"),
    };
    let picks: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
    handle
        .submit_golden_in(campaign, id, picks)
        .expect("golden submit");
    let hit = match mode {
        DispatchMode::Pull => handle.request_tasks_in(campaign, id).expect("first hit"),
        // A subscribe below the in-flight cap serves immediately — and
        // leases, so the standing subscription issued next parks.
        DispatchMode::Push | DispatchMode::Hybrid => handle
            .subscribe_assignments_ticket_in(campaign, id)
            .expect("first subscribe")
            .wait()
            .expect("first pushed hit"),
    };
    let hit = match hit {
        WorkRequest::Tasks(hit) => hit,
        other => panic!("primed worker got {other:?}"),
    };
    let standing = match mode {
        DispatchMode::Pull => None,
        DispatchMode::Push | DispatchMode::Hybrid => Some(
            handle
                .subscribe_assignments_ticket_in(campaign, id)
                .expect("standing subscribe"),
        ),
    };
    Worker { id, hit, standing }
}

/// Resolves one cycle's next assignment for a push/hybrid worker whose
/// submit is already on the wire. Returns the work, whether it arrived
/// through the subscription (and is therefore leased server-side), and
/// whether the pull fallback fired.
fn next_assignment_pushed(
    handle: &ServiceHandle,
    campaign: CampaignId,
    mode: DispatchMode,
    worker: &mut Worker,
) -> (Result<WorkRequest, ServiceError>, bool, bool) {
    let Some(standing) = worker.standing.take() else {
        // Re-establishing after a fallback: the fresh subscription is
        // queued *behind* this cycle's submit, so it serves immediately
        // with the post-submit pick — and leases it.
        let ticket = match handle.subscribe_assignments_ticket_in(campaign, worker.id) {
            Ok(t) => t,
            Err(e) => return (Err(e), false, false),
        };
        return (ticket.wait(), true, false);
    };
    if mode == DispatchMode::Push {
        // The submit's dispatch pass resolves the parked subscription;
        // the assignment never re-enters the ingress queue.
        return (standing.wait(), true, false);
    }
    // Hybrid: bounded wait, then unsubscribe + poll. The unsubscribe races
    // an in-flight dispatch (FIFO: our submit — whose pass may resolve the
    // subscription — processes first), so the ticket is re-checked: the
    // server always settles it, either with pushed work or with the
    // unsubscribe's `Done`.
    match standing.wait_timeout(HYBRID_FALLBACK) {
        TicketWait::Ready(work) => (work, true, false),
        TicketWait::Pending(ticket) => {
            if let Err(e) = handle.unsubscribe_in(campaign, worker.id) {
                return (Err(e), false, false);
            }
            match ticket.wait() {
                Ok(WorkRequest::Done) => {
                    // True subscription miss: fall back to a plain poll
                    // (unleased — the next standing subscribe is deferred
                    // to ride behind the next submit, so it cannot
                    // double-pick the poll's HIT).
                    (handle.request_tasks_in(campaign, worker.id), false, true)
                }
                work => (work, true, true),
            }
        }
    }
}

/// Runs one load-generator thread: a Poisson arrival schedule over its
/// share of the workers, latencies measured from each *scheduled* arrival.
#[allow(clippy::too_many_arguments)]
fn generator_thread(
    handle: ServiceHandle,
    campaign: CampaignId,
    mode: DispatchMode,
    mut workers: Vec<Worker>,
    rate_per_s: f64,
    start: Instant,
    deadline: Instant,
    seed: u64,
) -> ThreadReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut assign = LatencyHistogram::new();
    let mut submit = LatencyHistogram::new();
    let mut report = ThreadReport::default();
    let mean_gap = 1.0 / rate_per_s;
    let mut scheduled = start;
    let mut next = 0usize;
    while !workers.is_empty() {
        // Exponential inter-arrival gap: a Poisson process on this thread.
        let gap = -mean_gap * (1.0 - rng.next_f64()).ln();
        scheduled += Duration::from_secs_f64(gap);
        if scheduled >= deadline {
            break;
        }
        // Open loop: sleep until the scheduled instant if we are ahead;
        // if we are behind, do NOT stretch the schedule — the backlog is
        // charged to the measured latencies below.
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        next = if next >= workers.len() { 0 } else { next };
        let worker = &mut workers[next];
        let batch = answers_for(worker.id, &worker.hit);
        let submit_ticket = handle
            .submit_answer_batch_ticket_in(campaign, batch)
            .expect("submit batch");
        let (work, leased, fell_back) = match mode {
            DispatchMode::Pull => {
                // Pipelined poll: picks post-submit state (FIFO), but
                // waits its own turn in the ingress queue.
                let ticket = handle
                    .request_tasks_ticket_in(campaign, worker.id)
                    .expect("poll");
                (ticket.wait(), false, false)
            }
            DispatchMode::Push | DispatchMode::Hybrid => {
                next_assignment_pushed(&handle, campaign, mode, worker)
            }
        };
        assign.record(scheduled.elapsed());
        let outcome = submit_ticket.wait().expect("batch outcome");
        submit.record(scheduled.elapsed());
        assert!(
            outcome.rejected.is_empty(),
            "an open-loop batch was partially refused: {:?}",
            outcome.rejected
        );
        report.cycles += 1;
        report.fallbacks += fell_back as u64;
        match work.expect("assignment") {
            WorkRequest::Tasks(hit) => {
                worker.hit = hit;
                if leased {
                    worker.standing = Some(
                        handle
                            .subscribe_assignments_ticket_in(campaign, worker.id)
                            .expect("standing subscribe"),
                    );
                }
                next += 1;
            }
            // The worker answered every task it can: retire it.
            WorkRequest::Done => {
                workers.swap_remove(next);
                report.retired += 1;
            }
            WorkRequest::Golden(_) => unreachable!("primed workers are known"),
        }
    }
    report.assign = Some(assign);
    report.submit = Some(submit);
    report
}

/// Runs one (mode, cell) combination end to end.
fn run_cell(mode: DispatchMode, cell: &Cell) -> CellResult {
    let config = ServiceConfig::sharded(1).with_dispatch(mode);
    let (service, handle) = DocsService::spawn_sharded(publish_campaign(), config);
    let campaign = handle.default_campaign();

    let threads = 8.min(cell.workers as usize);
    let mut partitions: Vec<Vec<Worker>> = (0..threads).map(|_| Vec::new()).collect();
    for w in 0..cell.workers {
        let worker = prime_worker(&handle, campaign, mode, WorkerId(w));
        partitions[w as usize % threads].push(worker);
    }

    let start = Instant::now();
    let deadline = start + cell.duration;
    let rate_per_thread = cell.arrivals_per_s / threads as f64;
    let cell_workers = cell.workers;
    let joins: Vec<_> = partitions
        .into_iter()
        .enumerate()
        .map(|(i, workers)| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                generator_thread(
                    handle,
                    campaign,
                    mode,
                    workers,
                    rate_per_thread,
                    start,
                    deadline,
                    0x0DEA_D0C5 ^ ((i as u64) << 17) ^ cell_workers as u64,
                )
            })
        })
        .collect();

    let mut assign = LatencyHistogram::new();
    let mut submit = LatencyHistogram::new();
    let mut result = CellResult {
        assign: LatencyHistogram::new(),
        submit: LatencyHistogram::new(),
        cycles: 0,
        fallbacks: 0,
        retired: 0,
        dispatched_tasks: 0,
    };
    for join in joins {
        let report = join.join().expect("generator thread panicked");
        assign.merge(report.assign.as_ref().unwrap());
        submit.merge(report.submit.as_ref().unwrap());
        result.cycles += report.cycles;
        result.fallbacks += report.fallbacks;
        result.retired += report.retired;
    }
    result.assign = assign;
    result.submit = submit;
    result.dispatched_tasks = handle.metrics().shard(0).dispatched_tasks;
    drop(handle);
    let _ = service.join_all();
    result
}

fn main() {
    println!(
        "open_loop: Poisson arrivals, latency from *scheduled* arrival time \
         (smoke={}, hybrid fallback {:?})\n",
        smoke(),
        HYBRID_FALLBACK
    );

    let mut merged: Vec<(String, f64)> = Vec::new();
    // pull p99 per worker count, for the speedup summary keys.
    let mut pull_p99: Vec<(u32, f64)> = Vec::new();

    // Best-of-N alternating repeats, the same noise-resistant estimator as
    // the `service_pipeline` bench: on a loaded (or single-core) runner a
    // scheduler hiccup lands directly in a single run's tail, so each
    // mode's reported run is the repeat with the lowest p99 assignment
    // latency, with modes alternated so drift hits them evenly.
    let repeats = if smoke() { 1 } else { 3 };

    for cell in cells() {
        println!(
            "— {} workers, {:.0} arrivals/s for {:?} (best of {repeats}) —",
            cell.workers, cell.arrivals_per_s, cell.duration
        );
        let mut best: [Option<CellResult>; 3] = [None, None, None];
        for _ in 0..repeats {
            for (slot, mode) in [DispatchMode::Pull, DispatchMode::Push, DispatchMode::Hybrid]
                .into_iter()
                .enumerate()
            {
                let run = run_cell(mode, &cell);
                if best[slot]
                    .as_ref()
                    .is_none_or(|b| run.assign.quantile(0.99) < b.assign.quantile(0.99))
                {
                    best[slot] = Some(run);
                }
            }
        }
        for (slot, mode) in [DispatchMode::Pull, DispatchMode::Push, DispatchMode::Hybrid]
            .into_iter()
            .enumerate()
        {
            let r = best[slot].take().expect("cell ran");
            let name = mode_name(mode);
            let (p50, p99, p999) = (
                r.assign.quantile_ms(0.50),
                r.assign.quantile_ms(0.99),
                r.assign.quantile_ms(0.999),
            );
            println!(
                "{name:>7}: assign p50 {p50:.3} ms  p99 {p99:.3} ms  p999 {p999:.3} ms  \
                 | submit p99 {:.3} ms  | {} cycles, {} pushed tasks, \
                 {} fallbacks, {} retired",
                r.submit.quantile_ms(0.99),
                r.cycles,
                r.dispatched_tasks,
                r.fallbacks,
                r.retired,
            );
            assert!(r.cycles > 0, "{name}: the load generator never ran");
            if smoke() {
                // The CI gate: generous against shared-runner noise, tight
                // enough to catch an assignment path that re-queues or
                // leaks (which lands in seconds, not milliseconds).
                assert!(
                    p99 < 250.0,
                    "{name}: smoke p99 assignment latency {p99:.1} ms ≥ 250 ms"
                );
            } else {
                let prefix = format!("openloop_{name}_w{}", cell.workers);
                merged.push((format!("{prefix}_assign_p50_ms"), p50));
                merged.push((format!("{prefix}_assign_p99_ms"), p99));
                merged.push((format!("{prefix}_assign_p999_ms"), p999));
                merged.push((
                    format!("{prefix}_submit_p99_ms"),
                    r.submit.quantile_ms(0.99),
                ));
                if mode == DispatchMode::Pull {
                    pull_p99.push((cell.workers, p99));
                } else if let Some(&(_, pull)) = pull_p99.iter().find(|(w, _)| *w == cell.workers) {
                    merged.push((
                        format!("openloop_{name}_p99_assign_speedup_w{}", cell.workers),
                        pull / p99.max(1e-9),
                    ));
                }
            }
        }
        println!();
    }

    if !merged.is_empty() {
        docs_bench::merge_bench_json("BENCH_latency.json", &merged);
    }
}
