//! Inference-quality benchmark: the full scenario matrix, scored and
//! merged into `BENCH_quality.json`.
//!
//! ```text
//! cargo bench -p docs-bench --bench quality
//! QUALITY_SMOKE=1 cargo bench -p docs-bench --bench quality   # CI size
//! ```
//!
//! Every other bench in this directory measures *speed*. This one measures
//! the paper's actual claim — per-domain truth inference beats majority
//! vote, and the golden gate calibrates worker quality — across the named
//! [`docs_scenarios::registry`]: honest crowds on three datasets and four
//! service topologies, plus uniform spammers, golden-gaming sleepers,
//! colluding cliques, and quality drifters. Each scenario is a seeded,
//! byte-reproducible manifest driven through the *real* `docs-service`
//! request path, so any change in a merged quality number is an inference
//! change, not run-to-run noise — `scripts/bench_gate.py` gates these keys
//! exactly like perf numbers (accuracy higher-is-better, calibration error
//! and budget-per-correct lower-is-better).
//!
//! Before anything is merged, the bench asserts the paper's core claim on
//! every honest scenario: DOCS accuracy ≥ majority vote over the same
//! mirrored answers. A quality number for a run where that claim already
//! fell over would gate the wrong thing.
//!
//! The smoke run shrinks every scenario (fewer tasks, smaller budget),
//! asserts the per-class quality signatures, and merges **nothing**: smoke
//! sizes must not overwrite the committed full-matrix trajectory.

use docs_scenarios::{registry, render_table, run_scenario, score, QualityReport};

fn smoke() -> bool {
    std::env::var("QUALITY_SMOKE").is_ok()
}

/// Runs one spec (shrunk in smoke mode) and scores it.
fn run_one(spec: &docs_scenarios::ScenarioSpec) -> QualityReport {
    let spec = if smoke() {
        spec.shrunk(120, 8)
    } else {
        spec.clone()
    };
    let outcome = run_scenario(&spec);
    let q = score(&outcome);
    println!(
        "{}: {} answers in {:?} ({:.0} answers/s)",
        q.scenario, q.answers_collected, outcome.wall, q.answers_per_s
    );
    q
}

fn main() {
    let specs = registry();
    let reports: Vec<QualityReport> = specs.iter().map(run_one).collect();
    println!("\n{}", render_table(&reports));

    // The paper's core claim, asserted before any number is merged.
    for q in &reports {
        let spec = docs_scenarios::named(&q.scenario).expect("registry scenario");
        if spec.population.class.is_honest() {
            assert!(
                q.docs_accuracy >= q.majority_accuracy,
                "{}: DOCS {:.4} lost to majority vote {:.4}",
                q.scenario,
                q.docs_accuracy,
                q.majority_accuracy
            );
        }
    }

    // Per-class quality signatures: what each adversarial population is
    // *for*. Checked in smoke and full runs alike.
    let by_name = |name: &str| {
        reports
            .iter()
            .find(|q| q.scenario == name)
            .expect("registry scenario")
    };
    let honest = by_name("four_domain_honest");
    let spammers = by_name("four_domain_spammers");
    let sleepers = by_name("four_domain_sleepers");
    let colluders = by_name("four_domain_colluders");
    let drift = by_name("four_domain_drift");

    // Spam widens the DOCS-vs-majority gap: majority vote averages the
    // noise in, per-domain weighting discounts it.
    assert!(
        spammers.accuracy_delta_vs_majority >= honest.accuracy_delta_vs_majority,
        "spam should widen the DOCS advantage: {:+.4} vs honest {:+.4}",
        spammers.accuracy_delta_vs_majority,
        honest.accuracy_delta_vs_majority
    );
    // Sleepers game the golden gate, so their first impression lies:
    // calibration error must visibly exceed the honest baseline.
    assert!(
        sleepers.golden_calibration_err > honest.golden_calibration_err,
        "sleepers should inflate calibration error: {:.4} vs honest {:.4}",
        sleepers.golden_calibration_err,
        honest.golden_calibration_err
    );
    // Colluding cliques are built to flip majority vote; DOCS must keep a
    // decisive lead on the same answers.
    assert!(
        colluders.accuracy_delta_vs_majority > 0.05,
        "colluders should crater majority vote, delta {:+.4}",
        colluders.accuracy_delta_vs_majority
    );
    // Drifters degrade over the campaign; DOCS must still not lose.
    assert!(
        drift.accuracy_delta_vs_majority >= 0.0,
        "drift scenario lost to majority vote: {:+.4}",
        drift.accuracy_delta_vs_majority
    );

    if smoke() {
        println!("QUALITY_SMOKE: assertions passed; numbers not merged.");
        return;
    }

    let mut metrics = Vec::new();
    for q in &reports {
        metrics.extend(docs_scenarios::bench_metrics(q, true));
    }
    docs_bench::merge_bench_json("BENCH_quality.json", &metrics);
}
