//! Binary event codec micro-benchmarks: encode/decode cost and wire size
//! of the self-describing binary record format versus the serde_json path
//! it replaced on the durable + replication hot paths.
//!
//! ```text
//! cargo bench -p docs-bench --bench codec
//! CODEC_SMOKE=1 cargo bench -p docs-bench --bench codec   # CI size
//! ```
//!
//! Headline numbers merge into `BENCH_codec.json`:
//! `codec_{encode,decode}_{binary,json}_ns_per_event` and
//! `codec_bytes_per_event_{binary,json}`.

use docs_types::{codec, Answer, CampaignEvent, TaskId, WorkerId};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("CODEC_SMOKE").is_ok()
}

fn iterations() -> usize {
    if smoke() {
        20_000
    } else {
        200_000
    }
}

/// A workload shaped like the durable hot path: overwhelmingly answer
/// events, with a golden submission mixed in at the cadence a real
/// campaign sees (one qualification per worker).
fn events() -> Vec<CampaignEvent> {
    (0..256)
        .map(|i| {
            if i % 64 == 0 {
                CampaignEvent::golden(
                    WorkerId(i as u32),
                    (0..4u32).map(|g| (TaskId(g), (g as usize) % 2)).collect(),
                )
            } else {
                CampaignEvent::answer(Answer::new(
                    WorkerId((i / 8) as u32),
                    TaskId((i % 64) as u32),
                    i % 2,
                ))
            }
        })
        .collect()
}

fn ns_per_event(total: std::time::Duration, n: usize) -> f64 {
    total.as_nanos() as f64 / n as f64
}

fn main() {
    let events = events();
    let iters = iterations();
    let n = iters;
    let mut updates: Vec<(String, f64)> = Vec::new();

    // ---- Encode: binary (reused buffer, the hot-path shape) vs JSON. ----
    let mut buf = codec::BytesMut::with_capacity(256);
    let mut binary_bytes = 0usize;
    let started = Instant::now();
    for i in 0..iters {
        buf.clear();
        codec::encode_event_into(&events[i % events.len()], &mut buf);
        binary_bytes += buf.len();
    }
    let encode_binary = started.elapsed();

    let mut json_bytes = 0usize;
    let started = Instant::now();
    for i in 0..iters {
        let bytes = serde_json::to_vec(&events[i % events.len()]).expect("encode json");
        json_bytes += bytes.len();
    }
    let encode_json = started.elapsed();

    // ---- Decode: pre-encode one copy of each variant, then round-robin. ----
    let binary_records: Vec<Vec<u8>> = events.iter().map(codec::encode_event).collect();
    let json_records: Vec<Vec<u8>> = events
        .iter()
        .map(|e| serde_json::to_vec(e).expect("encode json"))
        .collect();

    let started = Instant::now();
    for i in 0..iters {
        let event =
            codec::decode_event(&binary_records[i % binary_records.len()]).expect("decode binary");
        std::hint::black_box(&event);
    }
    let decode_binary = started.elapsed();

    let started = Instant::now();
    for i in 0..iters {
        let event: CampaignEvent =
            serde_json::from_slice(&json_records[i % json_records.len()]).expect("decode json");
        std::hint::black_box(&event);
    }
    let decode_json = started.elapsed();

    let binary_per_event = binary_bytes as f64 / n as f64;
    let json_per_event = json_bytes as f64 / n as f64;
    println!(
        "codec bench over {iters} events ({} distinct):",
        events.len()
    );
    println!(
        "  encode  binary {:8.1} ns/event   json {:8.1} ns/event",
        ns_per_event(encode_binary, n),
        ns_per_event(encode_json, n),
    );
    println!(
        "  decode  binary {:8.1} ns/event   json {:8.1} ns/event",
        ns_per_event(decode_binary, n),
        ns_per_event(decode_json, n),
    );
    println!(
        "  size    binary {binary_per_event:8.1} B/event    json {json_per_event:8.1} B/event"
    );

    updates.push((
        "codec_encode_binary_ns_per_event".to_string(),
        ns_per_event(encode_binary, n),
    ));
    updates.push((
        "codec_encode_json_ns_per_event".to_string(),
        ns_per_event(encode_json, n),
    ));
    updates.push((
        "codec_decode_binary_ns_per_event".to_string(),
        ns_per_event(decode_binary, n),
    ));
    updates.push((
        "codec_decode_json_ns_per_event".to_string(),
        ns_per_event(decode_json, n),
    ));
    updates.push(("codec_bytes_per_event_binary".to_string(), binary_per_event));
    updates.push(("codec_bytes_per_event_json".to_string(), json_per_event));
    docs_bench::merge_bench_json("BENCH_codec.json", &updates);
}
