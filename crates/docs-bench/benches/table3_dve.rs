//! Table 3 bench: Algorithm 1 vs Enumeration per top-`c` heuristic.
//!
//! Criterion variant of the Table 3 harness: measures one representative
//! multi-entity task per dataset rather than the whole corpus (the corpus
//! totals are printed by the `figures` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use docs_bench::table3::linked_entities;
use docs_core::dve::{domain_vector, domain_vector_enumeration};
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_dve");
    for (name, dataset) in [
        ("Item", docs_datasets::item()),
        ("4D", docs_datasets::four_domain()),
    ] {
        let m = dataset.domain_set.len();
        for top_c in [20usize, 10, 3] {
            let all = linked_entities(&dataset, top_c);
            // The task with the most entities is the stress case.
            let entities = all
                .iter()
                .max_by_key(|e| e.len())
                .expect("dataset has tasks")
                .clone();
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/algorithm1"), top_c),
                &entities,
                |b, es| b.iter(|| black_box(domain_vector(es, m))),
            );
            // Enumeration only where it can finish in bench time.
            let omega: u128 = entities
                .iter()
                .map(|e| e.num_candidates() as u128)
                .product();
            if omega <= 100_000 {
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}/enumeration"), top_c),
                    &entities,
                    |b, es| b.iter(|| black_box(domain_vector_enumeration(es, m, 1 << 40))),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
