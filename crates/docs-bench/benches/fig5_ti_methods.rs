//! Figure 5(b) bench: execution time of each truth-inference method on the
//! Item dataset (same collected answers for every method).

use criterion::{criterion_group, criterion_main, Criterion};
use docs_baselines::ti::{
    Crh, DawidSkene, FaitCrowd, Glad, ICrowd, MajorityVote, TruthMethod, ZenCrowd,
};
use docs_bench::protocol::prepare;
use docs_core::ti::TruthInference;
use std::hint::black_box;

fn bench_ti_methods(c: &mut Criterion) {
    let prepared = prepare(docs_datasets::item(), 10, 20, 50, 0xF5);
    let tasks = &prepared.dataset.tasks;
    let log = &prepared.log;
    let scalar = prepared.scalar_init();
    let registry = prepared.docs_registry();

    let mut group = c.benchmark_group("fig5_ti_methods");
    group.sample_size(20);
    group.bench_function("MV", |b| {
        b.iter(|| black_box(MajorityVote.infer(tasks, log)))
    });
    let zc = ZenCrowd::default().with_init(scalar.clone());
    group.bench_function("ZC", |b| b.iter(|| black_box(zc.infer(tasks, log))));
    let ds = DawidSkene::default().with_init(scalar.clone());
    group.bench_function("DS", |b| b.iter(|| black_box(ds.infer(tasks, log))));
    let glad = Glad::default().with_init(scalar.clone());
    group.bench_function("GLAD", |b| b.iter(|| black_box(glad.infer(tasks, log))));
    let crh = Crh::default().with_init(scalar.clone());
    group.bench_function("CRH", |b| b.iter(|| black_box(crh.infer(tasks, log))));
    let ic = ICrowd::default();
    group.bench_function("IC", |b| b.iter(|| black_box(ic.infer(tasks, log))));
    let fc = FaitCrowd::default().with_init(scalar);
    group.bench_function("FC", |b| b.iter(|| black_box(fc.infer(tasks, log))));
    group.bench_function("DOCS", |b| {
        b.iter(|| black_box(TruthInference::default().run(tasks, log, &registry).truths))
    });
    group.finish();
}

criterion_group!(benches, bench_ti_methods);
criterion_main!(benches);
