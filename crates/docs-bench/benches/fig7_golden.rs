//! Figure 7 bench: golden-task count allocation — the approximation vs the
//! exact enumeration (7a), and approximation scalability in n′ and m (7b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use docs_bench::fig7::random_tau;
use docs_core::golden::{golden_counts, golden_counts_enumeration};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig7a(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0x7A7A);
    let tau = random_tau(10, &mut rng);
    let mut group = c.benchmark_group("fig7a_golden");
    for n_prime in [5usize, 10, 15] {
        group.bench_with_input(BenchmarkId::new("approx", n_prime), &n_prime, |b, &n| {
            b.iter(|| black_box(golden_counts(&tau, n)))
        });
        if n_prime <= 10 {
            group.bench_with_input(
                BenchmarkId::new("enumeration", n_prime),
                &n_prime,
                |b, &n| b.iter(|| black_box(golden_counts_enumeration(&tau, n))),
            );
        }
    }
    group.finish();
}

fn bench_fig7b(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0x7B7B);
    let mut group = c.benchmark_group("fig7b_scalability");
    for m in [10usize, 20, 50] {
        let tau = random_tau(m, &mut rng);
        for n_prime in [1_000usize, 10_000] {
            group.bench_with_input(
                BenchmarkId::new(format!("m{m}"), n_prime),
                &n_prime,
                |b, &n| b.iter(|| black_box(golden_counts(&tau, n))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7a, bench_fig7b);
criterion_main!(benches);
