//! Observability overhead benchmark: what the docs-obs instrumentation
//! costs on the hot path, and proof that a sampled trace actually
//! accounts for a request's wall time.
//!
//! ```text
//! cargo bench -p docs-bench --bench observability
//! OBS_SMOKE=1 cargo bench -p docs-bench --bench observability   # CI size
//! ```
//!
//! Three questions, answered into `BENCH_obs.json` (full runs only; the
//! smoke run executes every assertion but merges nothing):
//!
//! * **histogram record cost** — one `AtomicHistogram::record_ns` on the
//!   shared recorder, measured over millions of samples. The budget is
//!   ~20 ns: cheap enough that every shard op records unconditionally.
//! * **pipeline throughput, obs off vs on** — the same durable
//!   group-commit workload driven with tracing disabled
//!   (`trace_sample_every: 0`; histograms still record — they are not
//!   optional) and with 1-in-64 trace sampling plus hub health
//!   publication. The acceptance line is on-within-5%-of-off.
//! * **trace coverage** — on a durable *replicated* submit with
//!   every-request sampling, the harvested flight-recorder trace must
//!   contain the queue-wait, apply, ship, and flush-wait spans, and the
//!   spans must sum to within 10% of the trace's own end-to-end wall
//!   time — a trace that cannot account for the latency it reports is
//!   decoration, not observability.

use docs_obs::{AtomicHistogram, SpanKind};
use docs_replication::{bootstrap_frames, replication_channel, Replica, ReplicationHub};
use docs_service::{AdaptiveCommit, DocsService, DurabilityConfig, ServiceConfig, ServiceHandle};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, WorkRequest};
use docs_types::{Answer, CampaignId, Task, TaskBuilder, WorkerId};
use std::path::PathBuf;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("OBS_SMOKE").is_ok()
}

fn num_tasks() -> usize {
    if smoke() {
        24
    } else {
        96
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("docs-bench-obs-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tasks(n: usize) -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..n)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn publish(n: usize, policy: FlushPolicy) -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks(n),
        DocsConfig {
            num_golden: 4,
            k_per_hit: 6,
            answers_per_task: 4,
            z: 50,
            durable_flush: Some(policy),
            ..Default::default()
        },
    )
    .expect("publish bench campaign")
}

/// Drives golden bootstrap + every HIT to budget on `handle`; returns
/// accepted answers. The workload is identical across the obs-off and
/// obs-on arms — only the instrumentation differs.
fn drive_to_budget(handle: &ServiceHandle, campaign: CampaignId) -> u64 {
    let mut answers = 0u64;
    let workers = 8u32;
    let mut idle_rounds = 0;
    while idle_rounds < 2 {
        let mut progressed = false;
        for w in 0..workers {
            let w = WorkerId(w);
            match handle.request_tasks_in(campaign, w).expect("request") {
                WorkRequest::Golden(golden) => {
                    let picks: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
                    handle.submit_golden_in(campaign, w, picks).expect("golden");
                    progressed = true;
                }
                WorkRequest::Tasks(hit) => {
                    let batch: Vec<Answer> = hit
                        .iter()
                        .map(|&t| Answer::new(w, t, (t.index() + w.0 as usize) % 2))
                        .collect();
                    let outcome = handle
                        .submit_answer_batch_in(campaign, batch)
                        .expect("batch");
                    if outcome.accepted > 0 {
                        answers += outcome.accepted as u64;
                        progressed = true;
                    }
                }
                WorkRequest::Done => {}
            }
        }
        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
    }
    handle.finish_in(campaign).expect("finish");
    answers
}

/// One throughput round on a durable adaptive-group-commit pool.
/// `sample_every` = 0 is the obs-off arm; anything else turns sampled
/// tracing on.
fn throughput_round(name: &str, sample_every: u64) -> (u64, f64) {
    let dir = tmp_dir(name);
    let config = ServiceConfig {
        shards: 2,
        durability: Some(DurabilityConfig {
            dir: dir.clone(),
            default_flush: FlushPolicy::Batch(8),
            snapshot_every: 100_000,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
    .with_trace_sampling(sample_every);
    let (service, handle) =
        DocsService::spawn_sharded(publish(num_tasks(), FlushPolicy::Batch(8)), config);
    let campaign = handle.default_campaign();
    let started = Instant::now();
    let answers = drive_to_budget(&handle, campaign);
    let wall = started.elapsed().as_secs_f64();
    if sample_every > 0 {
        assert!(
            !handle.metrics().flight().is_empty(),
            "sampling was on but no trace reached the flight recorder"
        );
    }
    drop(handle);
    service.join_all();
    let _ = std::fs::remove_dir_all(&dir);
    (answers, wall)
}

fn main() {
    let repeats = if smoke() { 2 } else { 5 };
    println!(
        "observability: {} tasks, shards=2 durable Batch(8)+adaptive (smoke={}, best of {repeats})\n",
        num_tasks(),
        smoke()
    );

    // ---- Histogram record cost on the shared atomic recorder. ----
    // An LCG keeps the recorded value unpredictable (different buckets
    // every call); its own cost is measured first and subtracted.
    let hist = AtomicHistogram::new();
    let samples: u64 = if smoke() { 1_000_000 } else { 8_000_000 };
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let started = Instant::now();
    for _ in 0..samples {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        std::hint::black_box(state % 1_000_000 + 1);
    }
    let lcg_ns = started.elapsed().as_nanos() as f64 / samples as f64;
    let started = Instant::now();
    for _ in 0..samples {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        hist.record_ns(state % 1_000_000 + 1);
    }
    let record_ns = (started.elapsed().as_nanos() as f64 / samples as f64 - lcg_ns).max(0.0);
    assert_eq!(hist.count(), samples, "every record must land");
    // The budget is ~20 ns; the assert is loose so a noisy CI runner
    // cannot flake the build, while a real regression (a lock, a
    // syscall) still trips it.
    assert!(
        record_ns < 200.0,
        "AtomicHistogram::record_ns costs {record_ns:.0} ns — hot-path budget blown"
    );
    println!(
        "histogram record: {record_ns:.1} ns/sample over {samples} samples \
         ({lcg_ns:.1} ns generator baseline subtracted)"
    );

    // ---- Throughput: obs off vs on, interleaved rounds. ----
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut answers = 0u64;
    for round in 0..repeats {
        let (a_off, wall_off) = throughput_round(&format!("off-{round}"), 0);
        let (a_on, wall_on) = throughput_round(&format!("on-{round}"), 64);
        assert_eq!(a_off, a_on, "both arms must run the identical workload");
        answers = a_off;
        if wall_off < best_off {
            best_off = wall_off;
        }
        if wall_on < best_on {
            best_on = wall_on;
        }
    }
    let tput_off = answers as f64 / best_off;
    let tput_on = answers as f64 / best_on;
    let overhead = tput_off / tput_on;
    println!(
        "throughput: obs off {tput_off:.0} answers/s, obs on {tput_on:.0} answers/s \
         (x{overhead:.3} cost, best of {repeats})"
    );

    // ---- Trace coverage on a durable replicated submit. ----
    // EveryEvent + adaptive group commit: acks are withheld until the
    // batch fdatasync lands, so the trace exercises the flush-wait span;
    // the attached hub makes the ship span carry real follower traffic.
    let dir = tmp_dir("trace");
    let (sink, feed) = replication_channel();
    let config = ServiceConfig {
        shards: 2,
        durability: Some(DurabilityConfig {
            dir: dir.clone(),
            default_flush: FlushPolicy::EveryEvent,
            snapshot_every: 100_000,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
    .with_replication(sink)
    .with_trace_sampling(1);
    let (service, handle) =
        DocsService::spawn_sharded(publish(num_tasks(), FlushPolicy::EveryEvent), config);
    let campaign = handle.default_campaign();
    let hub = ReplicationHub::spawn(feed);
    hub.attach_metrics(handle.metrics());
    let link = hub.subscribe("obs-follower");
    let bootstrap = bootstrap_frames(&dir).expect("bootstrap scan");
    let replica = Replica::spawn(ServiceConfig::follower(2), link, bootstrap).expect("replica");
    drive_to_budget(&handle, campaign);

    let traces = handle.metrics().flight().snapshot();
    assert!(
        !traces.is_empty(),
        "every-request sampling produced no traces"
    );
    let pipeline_spans = [
        SpanKind::QueueWait,
        SpanKind::Apply,
        SpanKind::Ship,
        SpanKind::FlushWait,
    ];
    let full: Vec<_> = traces
        .iter()
        .filter(|t| pipeline_spans.iter().all(|&k| t.span_ns(k).is_some()))
        .collect();
    assert!(
        !full.is_empty(),
        "no trace carries the full queue-wait/apply/ship/flush-wait pipeline \
         ({} traces harvested)",
        traces.len()
    );
    let mut e2e = docs_obs::LatencyHistogram::new();
    for t in &full {
        let covered = t.spans_sum_ns() as f64 / t.total_ns.max(1) as f64;
        assert!(
            covered >= 0.9,
            "trace {} accounts for only {:.0}% of its {} ns end-to-end time: {}",
            t.id,
            covered * 100.0,
            t.total_ns,
            t.to_json()
        );
        e2e.record_ns(t.total_ns);
    }
    let e2e_p99 = e2e.quantile(0.99) as f64;
    println!(
        "trace coverage: {} of {} traces carry the full pipeline; spans sum to ≥90% \
         of end-to-end time; traced submit p99 {:.0} µs",
        full.len(),
        traces.len(),
        e2e_p99 / 1e3
    );

    // Teardown (replication bench order: follower, primary, hub, dir).
    let (replica_service, replica_handle) = replica.detach();
    drop(replica_handle);
    replica_service.join_all();
    drop(handle);
    service.join_all();
    hub.join();
    let _ = std::fs::remove_dir_all(&dir);

    if smoke() {
        println!("\nOBS_SMOKE: assertions passed; numbers not merged.");
        return;
    }
    docs_bench::merge_bench_json(
        "BENCH_obs.json",
        &[
            ("obs_hist_record_ns".to_string(), record_ns),
            ("obs_off_tput_answers_per_s".to_string(), tput_off),
            ("obs_on_tput_answers_per_s".to_string(), tput_on),
            ("obs_on_overhead_x".to_string(), overhead),
            // Nanoseconds; the gate reads the `_p99` suffix as
            // lower-is-better.
            ("obs_traced_submit_e2e_p99".to_string(), e2e_p99),
        ],
    );
}
