//! Durability micro-benchmarks: WAL append throughput under each flush
//! policy, and snapshot + replay latency as a function of event count.
//!
//! ```text
//! cargo bench -p docs-bench --bench durability
//! ```
//!
//! Besides the criterion-style console output, the run merges its headline
//! numbers into `BENCH_durability.json` (shared with the
//! `durable_service` example's service-level throughputs) so the perf
//! trajectory of the durable runtime is tracked from PR to PR.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use docs_storage::{recover_tree, AdaptiveCommit, CampaignLog, FlushPolicy};
use docs_system::{CampaignRegistry, Docs, DocsConfig};
use docs_types::{Answer, CampaignEvent, CampaignId, Task, TaskBuilder, TaskId, WorkerId};
use std::path::PathBuf;
use std::time::Instant;

const CAMPAIGN: CampaignId = CampaignId(0);
const NUM_TASKS: usize = 64;
const PAYLOAD: &[u8] = &[0x5A; 128];

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("docs-bench-dur-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn policies() -> Vec<FlushPolicy> {
    vec![
        FlushPolicy::EveryEvent,
        FlushPolicy::Batch(16),
        FlushPolicy::Batch(64),
        FlushPolicy::Batch(256),
        FlushPolicy::IntervalMs(5),
    ]
}

/// Appends `n` fixed-size events under `policy` (optionally with adaptive
/// group commit enabled); returns events/second.
fn append_throughput_with(policy: FlushPolicy, adaptive: Option<AdaptiveCommit>, n: usize) -> f64 {
    let dir = tmp_dir(&format!("tput-{}", policy.label()));
    let mut log = CampaignLog::open(&dir).expect("open log");
    log.register(CAMPAIGN, policy, 0);
    log.set_adaptive(adaptive);
    let started = Instant::now();
    for _ in 0..n {
        log.append_event(CAMPAIGN, PAYLOAD).expect("append");
    }
    log.flush().expect("final flush");
    let events_per_s = n as f64 / started.elapsed().as_secs_f64();
    drop(log);
    let _ = std::fs::remove_dir_all(&dir);
    events_per_s
}

fn append_throughput(policy: FlushPolicy, n: usize) -> f64 {
    append_throughput_with(policy, None, n)
}

fn wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    for policy in policies() {
        let dir = tmp_dir(&format!("bench-{}", policy.label()));
        let mut log = CampaignLog::open(&dir).expect("open log");
        log.register(CAMPAIGN, policy, 0);
        group.bench_with_input(
            BenchmarkId::new("append_128B", policy.label()),
            &policy,
            |b, _| {
                b.iter(|| log.append_event(CAMPAIGN, black_box(PAYLOAD)).unwrap());
            },
        );
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_tasks() -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..NUM_TASKS)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

/// Builds one campaign's snapshot bytes plus `n` serialized answer events
/// (distinct worker/task pairs, so replay accepts every one).
fn snapshot_and_events(n: usize) -> (Vec<u8>, Vec<Vec<u8>>) {
    let docs = Docs::publish(
        &docs_kb::table2_example_kb(),
        bench_tasks(),
        DocsConfig {
            num_golden: 4,
            k_per_hit: 8,
            answers_per_task: 0, // unlimited: replay never hits the budget
            z: 100,
            ..Default::default()
        },
    )
    .expect("publish bench campaign");
    let snapshot = serde_json::to_vec(&docs.snapshot()).expect("encode snapshot");
    let events: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let event = CampaignEvent::answer(Answer::new(
                WorkerId((i / NUM_TASKS) as u32),
                TaskId((i % NUM_TASKS) as u32),
                i % 2,
            ));
            serde_json::to_vec(&event).expect("encode event")
        })
        .collect();
    (snapshot, events)
}

/// Restores the snapshot and replays `events`; returns seconds.
fn replay_latency(snapshot: &[u8], events: &[Vec<u8>]) -> f64 {
    let started = Instant::now();
    let mut registry = CampaignRegistry::new();
    let stats = registry
        .replay(CAMPAIGN, snapshot, events)
        .expect("replay succeeds");
    assert_eq!(stats.applied as usize, events.len());
    started.elapsed().as_secs_f64()
}

fn snapshot_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_replay");
    for n in [64usize, 512, 2048] {
        let (snapshot, events) = snapshot_and_events(n);
        group.bench_with_input(BenchmarkId::new("replay", n), &n, |b, _| {
            b.iter(|| black_box(replay_latency(&snapshot, &events)));
        });
    }
    group.finish();
}

/// End-to-end durable write + recover cycle at the storage layer.
fn log_write_then_recover(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_recover");
    let dir = tmp_dir("recover");
    {
        let mut log = CampaignLog::open(dir.join("shard-0")).expect("open log");
        log.register(CAMPAIGN, FlushPolicy::Batch(64), 0);
        for _ in 0..4096 {
            log.append_event(CAMPAIGN, PAYLOAD).expect("append");
        }
    }
    group.bench_function("recover_tree_4096_events", |b| {
        b.iter(|| {
            let rec = recover_tree(black_box(&dir)).expect("recover");
            assert_eq!(rec.campaigns[&CAMPAIGN].events.len(), 4096);
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, wal_append, snapshot_replay, log_write_then_recover);

/// Merges headline numbers into `BENCH_durability.json` (same file the
/// `durable_service` example writes its service-level throughputs to).
fn write_bench_json() {
    let mut updates: Vec<(String, f64)> = Vec::new();
    for policy in policies() {
        let tput = append_throughput(policy, 4000);
        updates.push((
            format!("wal_append_tput_{}_events_per_s", policy.label()),
            tput,
        ));
    }
    // Adaptive group commit keeps `EveryEvent` acknowledgment semantics
    // (acked ⇒ durable, acks deferred to the batch sync) while amortizing
    // the fdatasync like Batch(n) — the headline win of the group-commit
    // work, tracked as its own key.
    let adaptive_tput = append_throughput_with(
        FlushPolicy::EveryEvent,
        Some(AdaptiveCommit::default()),
        4000,
    );
    updates.push((
        "wal_append_tput_adaptive_every_event_events_per_s".to_string(),
        adaptive_tput,
    ));
    for n in [64usize, 512, 2048] {
        let (snapshot, events) = snapshot_and_events(n);
        updates.push((
            format!("snapshot_replay_latency_{n}_events_ms"),
            replay_latency(&snapshot, &events) * 1e3,
        ));
    }
    // Recovery read-path allocation accounting: with the shared per-file
    // arena, payload buffers allocated scale with *files*, not events —
    // before the arena every event payload was its own `to_vec`.
    {
        let dir = tmp_dir("alloc-count");
        {
            let mut log = CampaignLog::open(dir.join("shard-0")).expect("open log");
            log.register(CAMPAIGN, FlushPolicy::Batch(64), 0);
            for _ in 0..4096 {
                log.append_event(CAMPAIGN, PAYLOAD).expect("append");
            }
        }
        let rec = recover_tree(&dir).expect("recover");
        println!(
            "recovery allocations for {} events: {} arena buffers \
             (per-event copy path would have allocated {})",
            rec.events_recovered,
            rec.payload_allocations,
            rec.events_recovered + rec.campaigns.len() as u64,
        );
        updates.push((
            "recovery_payload_allocations_4096_events".to_string(),
            rec.payload_allocations as f64,
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
    docs_bench::merge_bench_json("BENCH_durability.json", &updates);
}

fn main() {
    benches();
    write_bench_json();
}
