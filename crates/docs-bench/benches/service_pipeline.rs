//! Service-level pipelining benchmark: the blocking request/response crowd
//! driver vs the pipelined submission/completion driver, against the same
//! 4-campaign workload on a shards=4 pool.
//!
//! ```text
//! cargo bench -p docs-bench --bench service_pipeline
//! SERVICE_SMOKE=1 cargo bench -p docs-bench --bench service_pipeline   # CI size
//! ```
//!
//! Each campaign is driven by one deterministic client thread, so the
//! per-campaign request stream is identical between the two drivers — the
//! bench asserts the final truths are **byte-identical** before it reports
//! any number. Pipelining changes only *when* the client waits: the next
//! HIT request rides the wire while the previous batch ack is still in
//! flight, removing one synchronous round-trip per HIT. Headline numbers
//! are merged into `BENCH_service.json` for PR-to-PR trend tracking.
//!
//! Reading the speedup: on a multi-core runner the pipelined driver
//! overlaps client-side work with shard execution and the win is the
//! hidden round-trip. On a **single-core** box nothing can overlap — the
//! only saving is the halved context-switch count per HIT, so the speedup
//! is bounded to a few percent there (same caveat as the shards=1-vs-4
//! example; see the verify notes in `.claude/skills/verify/SKILL.md`).

use docs_crowd::{AnswerModel, PopulationConfig, WorkerPopulation};
use docs_service::{
    drive_workers_blocking_on, drive_workers_on, DocsService, ServiceConfig, ServiceHandle,
};
use docs_system::{Docs, DocsConfig};
use docs_types::{CampaignId, ChoiceIndex, Task, TaskBuilder};
use std::sync::Arc;
use std::time::Instant;

const CAMPAIGNS: usize = 4;
const SHARDS: usize = 4;

fn smoke() -> bool {
    std::env::var("SERVICE_SMOKE").is_ok()
}

fn num_tasks() -> usize {
    if smoke() {
        24
    } else {
        120
    }
}

fn publish_campaign(n_tasks: usize) -> Docs {
    let kb = docs_kb::table2_example_kb();
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect();
    Docs::publish(
        &kb,
        tasks,
        DocsConfig {
            num_golden: 4,
            k_per_hit: 4,
            answers_per_task: 4,
            z: 50,
            task_shards: 2,
            ..Default::default()
        },
    )
    .expect("publish bench campaign")
}

/// Drives the 4-campaign workload to budget exhaustion; returns wall-clock
/// seconds, total answers, and each campaign's final truths.
fn run_pool(pipelined: bool) -> (f64, usize, Vec<Vec<ChoiceIndex>>) {
    let n_tasks = num_tasks();
    let (service, handle) =
        DocsService::spawn_sharded(publish_campaign(n_tasks), ServiceConfig::sharded(SHARDS));
    let mut campaigns = vec![handle.default_campaign()];
    for _ in 1..CAMPAIGNS {
        campaigns.push(
            handle
                .create_campaign(publish_campaign(n_tasks))
                .expect("create campaign"),
        );
    }
    let tasks = Arc::new(publish_campaign(n_tasks).tasks().to_vec());

    let started = Instant::now();
    let drivers: Vec<_> = campaigns
        .iter()
        .enumerate()
        .map(|(i, &campaign)| {
            let handle: ServiceHandle = handle.clone();
            let tasks = Arc::clone(&tasks);
            std::thread::spawn(move || {
                let population = WorkerPopulation::generate(&PopulationConfig {
                    m: 3,
                    size: 20,
                    seed: 0xC0C0 + i as u64,
                    ..Default::default()
                });
                let seed = 0xD0C5 + i as u64;
                // One client thread per campaign keeps each campaign's
                // request stream deterministic, so the truths comparison
                // below is exact.
                let report = if pipelined {
                    drive_workers_on(
                        &handle,
                        campaign,
                        tasks,
                        &population,
                        AnswerModel::DomainUniform,
                        1,
                        seed,
                    )
                } else {
                    drive_workers_blocking_on(
                        &handle,
                        campaign,
                        tasks,
                        &population,
                        AnswerModel::DomainUniform,
                        1,
                        seed,
                    )
                }
                .expect("drive campaign");
                let final_report = handle.finish_in(campaign).expect("finish campaign");
                (report.total_answers(), final_report.truths)
            })
        })
        .collect();
    let mut total_answers = 0;
    let mut truths: Vec<(CampaignId, Vec<ChoiceIndex>)> = Vec::new();
    for (driver, &campaign) in drivers.into_iter().zip(&campaigns) {
        let (answers, campaign_truths) = driver.join().expect("campaign driver panicked");
        total_answers += answers;
        truths.push((campaign, campaign_truths));
    }
    let wall = started.elapsed().as_secs_f64();
    drop(handle);
    let _ = service.join_all();
    truths.sort_by_key(|(id, _)| *id);
    (
        wall,
        total_answers,
        truths.into_iter().map(|(_, t)| t).collect(),
    )
}

fn main() {
    let repeats = if smoke() { 3 } else { 7 };
    println!(
        "service_pipeline: {CAMPAIGNS} campaigns × {} tasks on a shards={SHARDS} pool \
         (smoke={}, best of {repeats})\n",
        num_tasks(),
        smoke()
    );

    // Alternating best-of-N: the wall times are a handful of milliseconds,
    // so a single scheduler hiccup dwarfs the protocol overhead being
    // measured. The minimum over alternated runs is the standard
    // noise-resistant estimator for "how fast can this path go".
    let mut blocking_wall = f64::INFINITY;
    let mut pipelined_wall = f64::INFINITY;
    let mut blocking_answers = 0;
    let mut pipelined_answers = 0;
    let mut blocking_truths = Vec::new();
    let mut pipelined_truths = Vec::new();
    for _ in 0..repeats {
        let (wall, answers, truths) = run_pool(false);
        if wall < blocking_wall {
            blocking_wall = wall;
        }
        blocking_answers = answers;
        blocking_truths = truths;
        let (wall, answers, truths) = run_pool(true);
        if wall < pipelined_wall {
            pipelined_wall = wall;
        }
        pipelined_answers = answers;
        pipelined_truths = truths;
    }
    let blocking_tput = blocking_answers as f64 / blocking_wall;
    println!(
        "blocking driver:  {blocking_answers} answers in {blocking_wall:.3}s (best) → \
         {blocking_tput:.0} answers/s"
    );
    let pipelined_tput = pipelined_answers as f64 / pipelined_wall;
    println!(
        "pipelined driver: {pipelined_answers} answers in {pipelined_wall:.3}s (best) → \
         {pipelined_tput:.0} answers/s"
    );

    // The correctness bar before any performance claim: same request
    // stream, byte-identical truths per campaign.
    assert_eq!(
        pipelined_truths, blocking_truths,
        "pipelining changed campaign truths"
    );
    assert_eq!(pipelined_answers, blocking_answers, "accounting diverged");

    let speedup = pipelined_tput / blocking_tput;
    println!(
        "\npipelined/blocking speedup: {speedup:.2}× \
         (pipelining removes one synchronous round-trip per HIT)"
    );

    docs_bench::merge_bench_json(
        "BENCH_service.json",
        &[
            (
                "service_blocking_tput_shards4_answers_per_s".to_string(),
                blocking_tput,
            ),
            (
                "service_pipelined_tput_shards4_answers_per_s".to_string(),
                pipelined_tput,
            ),
            ("service_pipeline_speedup_shards4".to_string(), speedup),
        ],
    );
}
