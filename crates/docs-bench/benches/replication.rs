//! Replication-lag benchmark: how far a live follower trails a serving
//! primary, and what the WAL-shipping pipeline costs end to end.
//!
//! ```text
//! cargo bench -p docs-bench --bench replication
//! REPLICATION_SMOKE=1 cargo bench -p docs-bench --bench replication   # CI size
//! ```
//!
//! Three headline numbers, merged into `BENCH_replication.json`:
//!
//! * **pipeline throughput** — answers/s through submit → validate → WAL
//!   append + `fdatasync` → ship → CRC decode → follower re-validate +
//!   apply, measured to the *follower caught up* line (not just the
//!   primary ack),
//! * **single-event ack lag** — wall time from one acknowledged submit to
//!   the follower's watermark covering it (best over rounds: scheduler
//!   noise dwarfs the per-event cost otherwise),
//! * **wire bytes per event** — the encoded frame overhead of the stream.
//!
//! Before any number is reported, the bench asserts the follower's final
//! serialized state is **byte-identical** to the primary's — a lag number
//! for a diverged replica would be meaningless.

use docs_replication::{bootstrap_frames, replication_channel, Replica, ReplicationHub};
use docs_service::{AdaptiveCommit, DocsService, DurabilityConfig, ServiceConfig};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, WorkRequest};
use docs_types::{Answer, CampaignId, Task, TaskBuilder, WorkerId};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var("REPLICATION_SMOKE").is_ok()
}

fn num_tasks() -> usize {
    if smoke() {
        24
    } else {
        96
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("docs-bench-repl-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tasks(n: usize) -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..n)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn publish(n: usize, policy: FlushPolicy) -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks(n),
        DocsConfig {
            num_golden: 4,
            k_per_hit: 6,
            answers_per_task: 4,
            z: 50,
            durable_flush: Some(policy),
            ..Default::default()
        },
    )
    .expect("publish bench campaign")
}

struct Pair {
    service: DocsService,
    handle: docs_service::ServiceHandle,
    campaign: CampaignId,
    replica: Replica,
    hub: ReplicationHub,
    dir: PathBuf,
}

fn replicated_pair(name: &str, policy: FlushPolicy) -> Pair {
    let dir = tmp_dir(name);
    let (sink, feed) = replication_channel();
    let config = ServiceConfig {
        shards: 2,
        durability: Some(DurabilityConfig {
            dir: dir.clone(),
            default_flush: policy,
            snapshot_every: 100_000,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
    .with_replication(sink);
    let (service, handle) = DocsService::spawn_sharded(publish(num_tasks(), policy), config);
    let campaign = handle.default_campaign();
    let hub = ReplicationHub::spawn(feed);
    let link = hub.subscribe("bench-follower");
    let bootstrap = bootstrap_frames(&dir).expect("bootstrap scan");
    let replica =
        Replica::spawn(ServiceConfig::follower(2), link, bootstrap).expect("spawn replica");
    Pair {
        service,
        handle,
        campaign,
        replica,
        hub,
        dir,
    }
}

fn await_watermark(replica: &Replica, campaign: CampaignId, seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while replica.watermark(campaign) < seq {
        if let Some(e) = replica.error() {
            panic!("replica applier failed: {e}");
        }
        assert!(Instant::now() < deadline, "follower never caught up");
        std::hint::spin_loop();
    }
}

fn teardown(pair: Pair) {
    let (replica_service, replica_handle) = pair.replica.detach();
    drop(replica_handle);
    replica_service.join_all();
    drop(pair.handle);
    pair.service.join_all();
    pair.hub.join();
    let _ = std::fs::remove_dir_all(&pair.dir);
}

/// Drives golden bootstrap + every HIT to budget; returns answers shipped
/// and the acked event count (Published + one event per accepted submit).
fn drive_to_budget(pair: &Pair) -> (u64, u64) {
    let mut answers = 0u64;
    let mut events = 1u64; // Published
    let workers = 8u32;
    let mut idle_rounds = 0;
    while idle_rounds < 2 {
        let mut progressed = false;
        for w in 0..workers {
            let w = WorkerId(w);
            match pair
                .handle
                .request_tasks_in(pair.campaign, w)
                .expect("request")
            {
                WorkRequest::Golden(golden) => {
                    let picks: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
                    pair.handle
                        .submit_golden_in(pair.campaign, w, picks)
                        .expect("golden");
                    events += 1;
                    progressed = true;
                }
                WorkRequest::Tasks(hit) => {
                    let batch: Vec<Answer> = hit
                        .iter()
                        .map(|&t| Answer::new(w, t, (t.index() + w.0 as usize) % 2))
                        .collect();
                    let outcome = pair
                        .handle
                        .submit_answer_batch_in(pair.campaign, batch)
                        .expect("batch");
                    if outcome.accepted > 0 {
                        events += 1; // one batch event per accepted sub-batch
                        answers += outcome.accepted as u64;
                        progressed = true;
                    }
                }
                WorkRequest::Done => {}
            }
        }
        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
    }
    // Group commit keeps the tail batch buffered (acknowledged ≠ durable
    // under `Batch(n)`), and only durable events ship. `finish` hardens
    // everything unconditionally — the requester's "my report is final"
    // moment is also the replication frontier's.
    pair.handle.finish_in(pair.campaign).expect("finish");
    events += 1; // the Finished event
    (answers, events)
}

fn main() {
    let repeats = if smoke() { 2 } else { 4 };
    println!(
        "replication: {} tasks, shards=2 primary → shards=2 follower (smoke={}, best of {repeats})\n",
        num_tasks(),
        smoke()
    );

    // ---- Pipeline throughput to the follower-caught-up line. ----
    let policy = FlushPolicy::Batch(8);
    let mut best_wall = f64::INFINITY;
    let mut answers_shipped = 0u64;
    let mut wire_bytes_per_event = 0.0;
    for round in 0..repeats {
        let pair = replicated_pair(&format!("tput-{round}"), policy);
        let started = Instant::now();
        let (answers, events) = drive_to_budget(&pair);
        // The clock stops when the *follower* covers the last acked event.
        pair.handle.metrics();
        await_watermark(&pair.replica, pair.campaign, events);
        let wall = started.elapsed().as_secs_f64();
        // Correctness before any number: byte-identical end states.
        assert_eq!(
            pair.replica
                .handle()
                .snapshot_state_in(pair.campaign)
                .expect("replica state"),
            pair.handle
                .snapshot_state_in(pair.campaign)
                .expect("primary state"),
            "follower diverged from primary"
        );
        let stats = pair.hub.stats();
        wire_bytes_per_event = stats.bytes_shipped as f64 / stats.events_shipped.max(1) as f64;
        if wall < best_wall {
            best_wall = wall;
        }
        answers_shipped = answers;
        teardown(pair);
    }
    let tput = answers_shipped as f64 / best_wall;
    println!(
        "pipeline throughput: {answers_shipped} answers replicated in {best_wall:.3}s (best) → \
         {tput:.0} answers/s to the follower-caught-up line"
    );
    println!("wire overhead: {wire_bytes_per_event:.0} bytes/event on the stream");

    // ---- Single-event ack lag (EveryEvent: acked ⇒ durable ⇒ shipped). ----
    let pair = replicated_pair("lag", FlushPolicy::EveryEvent);
    // Golden bootstrap one worker so answers are accepted.
    let w = WorkerId(0);
    if let WorkRequest::Golden(golden) = pair
        .handle
        .request_tasks_in(pair.campaign, w)
        .expect("request")
    {
        let picks: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
        pair.handle
            .submit_golden_in(pair.campaign, w, picks)
            .expect("golden");
    }
    let mut seq = 2u64; // Published + golden
    await_watermark(&pair.replica, pair.campaign, seq);
    let mut best_lag = f64::INFINITY;
    let lag_rounds = if smoke() { 16 } else { 64 };
    for i in 0..lag_rounds {
        let answer = Answer::new(w, docs_types::TaskId((i % num_tasks()) as u32), i % 2);
        let started = Instant::now();
        if pair.handle.submit_answer_in(pair.campaign, answer).is_err() {
            continue; // duplicate/budget: not a lag sample
        }
        seq += 1;
        await_watermark(&pair.replica, pair.campaign, seq);
        let lag = started.elapsed().as_secs_f64();
        if lag < best_lag {
            best_lag = lag;
        }
    }
    let lag_us = best_lag * 1e6;
    println!("single-event ack→applied lag: {lag_us:.0} µs (best of {lag_rounds})");
    teardown(pair);

    docs_bench::merge_bench_json(
        "BENCH_replication.json",
        &[
            ("replication_pipeline_tput_answers_per_s".to_string(), tput),
            ("replication_single_event_lag_us".to_string(), lag_us),
            (
                "replication_wire_bytes_per_event".to_string(),
                wire_bytes_per_event,
            ),
        ],
    );
}
