//! Figure 8(c) bench: one OTA assignment decision vs `n` and `k` (m = 20).
//! Expectation: linear in `n`, flat in `k` (linear top-k selection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use docs_core::ota::{Assigner, AssignerConfig};
use docs_core::ti::TaskState;
use docs_datasets::scalability_tasks;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_ota_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8c_ota");
    group.sample_size(20);
    for n in [1_000usize, 5_000, 10_000] {
        let tasks = scalability_tasks(n, 20, 0x8C);
        let mut rng = SmallRng::seed_from_u64(0x8C ^ n as u64);
        let states: Vec<TaskState> = tasks
            .iter()
            .map(|t| {
                let mut st = TaskState::new(20, t.num_choices());
                for _ in 0..rng.gen_range(0..5) {
                    let q: Vec<f64> = (0..20).map(|_| rng.gen_range(0.4..0.95)).collect();
                    st.apply_answer(t.domain_vector(), &q, rng.gen_range(0..t.num_choices()));
                }
                st
            })
            .collect();
        let quality: Vec<f64> = (0..20).map(|_| rng.gen_range(0.4..0.95)).collect();
        for k in [5usize, 10, 50] {
            let assigner = Assigner::new(AssignerConfig {
                k,
                ..Default::default()
            });
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), k),
                &(&tasks, &states),
                |b, (tasks, states)| {
                    b.iter(|| black_box(assigner.assign(&quality, tasks, states, |_| false, |_| 0)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ota_scalability);
criterion_main!(benches);
