//! Figure 4(e) bench: iterative TI time vs `n` and `|W|` (m = 20,
//! 10 answers per task). Expectation: linear in `n`, invariant in `|W|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use docs_core::ti::{TiConfig, TruthInference, WorkerRegistry};
use docs_datasets::scalability_workload;
use std::hint::black_box;

fn bench_ti_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4e_ti");
    group.sample_size(10);
    for workers in [10usize, 100, 500] {
        for n in [1_000usize, 4_000] {
            let (tasks, _pop, log) = scalability_workload(n, 20, workers, 10, 0xE5);
            let registry = WorkerRegistry::new(20, 0.7);
            let ti = TruthInference::new(TiConfig {
                max_iterations: 20,
                epsilon: 1e-6,
            });
            group.bench_with_input(
                BenchmarkId::new(format!("w{workers}"), n),
                &(tasks, log),
                |b, (tasks, log)| b.iter(|| black_box(ti.run(tasks, log, &registry))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ti_scalability);
criterion_main!(benches);
