//! Benchmarks for the future-work extensions:
//!
//! * `correlated_dve`: the price of dropping Section 3.1's independence
//!   assumption — exact correlated summation vs Gibbs sampling vs coherence
//!   reranking + Algorithm 1, against the independent Algorithm 1 baseline,
//! * `stopping_policy`: per-answer cost of the stable-point stopping rules
//!   (they run inside the collection loop, so they must be ~free),
//! * `budget_planner`: greedy marginal-benefit allocation across campaign
//!   sizes (advisory planning, run once per campaign checkpoint).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use docs_core::dve::{
    domain_vector, domain_vector_correlated_exact, domain_vector_correlated_gibbs,
    domain_vector_reranked, CorrelationConfig,
};
use docs_core::ota::BudgetPlanner;
use docs_core::ti::{StoppingPolicy, StoppingRule, TaskState};
use docs_kb::generator::synthetic_entities;
use docs_types::DomainVector;
use std::hint::black_box;

fn bench_correlated_dve(c: &mut Criterion) {
    let mut group = c.benchmark_group("correlated_dve");
    // Small instances where the exact correlated sum is feasible.
    for entities in [3usize, 5] {
        let es = synthetic_entities(10, entities, 4, 2, 0xC0);
        group.bench_with_input(
            BenchmarkId::new("independent_alg1", entities),
            &es,
            |b, es| b.iter(|| black_box(domain_vector(es, 10))),
        );
        group.bench_with_input(
            BenchmarkId::new("correlated_exact", entities),
            &es,
            |b, es| b.iter(|| black_box(domain_vector_correlated_exact(es, 10, 1.0, 1 << 30))),
        );
        group.bench_with_input(BenchmarkId::new("rerank_alg1", entities), &es, |b, es| {
            b.iter(|| black_box(domain_vector_reranked(es, 10, 1.0)))
        });
    }
    // Larger instances where only Gibbs and reranking stay feasible.
    let config = CorrelationConfig {
        lambda: 1.0,
        burn_in: 20,
        samples: 100,
        seed: 0xC1,
    };
    for entities in [8usize, 12] {
        let es = synthetic_entities(26, entities, 20, 2, 0xC2);
        group.bench_with_input(
            BenchmarkId::new("gibbs_120_sweeps", entities),
            &es,
            |b, es| b.iter(|| black_box(domain_vector_correlated_gibbs(es, 26, &config))),
        );
        group.bench_with_input(BenchmarkId::new("rerank_alg1", entities), &es, |b, es| {
            b.iter(|| black_box(domain_vector_reranked(es, 26, 1.0)))
        });
    }
    group.finish();
}

fn bench_stopping_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("stopping_policy");
    let r = DomainVector::uniform(26);
    let mut state = TaskState::new(26, 4);
    for _ in 0..5 {
        state.apply_answer(&r, &vec![0.8; 26], 0);
    }
    for (name, rule) in [
        ("entropy", StoppingRule::EntropyBelow(0.15)),
        ("confidence", StoppingRule::ConfidenceAbove(0.95)),
        ("margin", StoppingRule::MarginAbove(0.9)),
    ] {
        let policy = StoppingPolicy {
            rule,
            min_answers: 3,
            max_answers: 10,
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(policy.should_stop(black_box(&state), 5)))
        });
    }
    group.finish();
}

fn bench_budget_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_planner");
    group.sample_size(20);
    for n in [200usize, 1_000] {
        let m = 20;
        let states: Vec<TaskState> = (0..n)
            .map(|i| {
                let r = DomainVector::one_hot(m, i % m);
                let mut st = TaskState::new(m, 2);
                for _ in 0..(i % 6) {
                    st.apply_answer(&r, &vec![0.8; m], 0);
                }
                st
            })
            .collect();
        let rs: Vec<DomainVector> = (0..n).map(|i| DomainVector::one_hot(m, i % m)).collect();
        let collected: Vec<usize> = (0..n).map(|i| i % 6).collect();
        let quality = vec![0.8; m];
        let planner = BudgetPlanner::new(2 * n, 10);
        group.bench_with_input(
            BenchmarkId::new("greedy_plan", n),
            &(states, rs, collected),
            |b, (states, rs, collected)| {
                b.iter(|| black_box(planner.plan(states, rs, collected, &quality)))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_correlated_dve,
    bench_stopping_policy,
    bench_budget_planner
);
criterion_main!(benches);
