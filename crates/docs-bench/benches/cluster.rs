//! Cluster scale-out benchmark: what a live migration costs the traffic,
//! and what a second primary buys in aggregate write throughput.
//!
//! ```text
//! cargo bench -p docs-bench --bench cluster
//! CLUSTER_SMOKE=1 cargo bench -p docs-bench --bench cluster   # CI size
//! ```
//!
//! Headline numbers, merged into `BENCH_cluster.json`:
//!
//! * **fence window** — fence → adoption: how long the migrating
//!   campaign's write path has no serving owner and the router buffers
//!   and forwards (best over rounds whose fence actually intersected the
//!   live driver, measured with paced traffic pushing through the fence),
//! * **forwarded count** — how many in-flight submissions the fence window
//!   made the router absorb-and-forward (informational: workload shape,
//!   not performance — `_count` keys are never gated),
//! * **write scale-out** — aggregate answers/s over two hot campaigns on
//!   one single-shard primary vs. the same two campaigns spread across
//!   two single-shard primaries by a live migration, replayed through the
//!   same [`ClusterRouter`] pipelined-ticket path so the serialization
//!   point is the node (shard thread + WAL + group commit), not the
//!   driver's round-trips. The speedup is the multi-primary dividend.
//!
//! Before any number is reported, the bench asserts each replayed
//! campaign's report is byte-identical to the in-memory oracle that
//! recorded the stream (no acked event lost) — a throughput number for a
//! diverged campaign would be meaningless. The smoke run asserts only
//! and does not merge numbers: shared-runner speed must not overwrite
//! the committed trajectory.

use docs_replication::{migrate_campaign, replication_channel, MigrationSource, ReplicationHub};
use docs_service::{
    AdaptiveCommit, ClusterNode, ClusterRouter, DocsService, DurabilityConfig, ServiceConfig,
    ServiceHandle,
};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, RequesterReport, WorkRequest};
use docs_types::{
    Answer, CampaignId, ChoiceIndex, ClusterMap, NodeId, Task, TaskBuilder, TaskId, WorkerId,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var("CLUSTER_SMOKE").is_ok()
}

fn num_tasks() -> usize {
    if smoke() {
        24
    } else {
        192
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("docs-bench-cluster-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tasks(n: usize) -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..n)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn publish(n: usize, durable_flush: Option<FlushPolicy>) -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks(n),
        DocsConfig {
            num_golden: 4,
            k_per_hit: 6,
            answers_per_task: 4,
            z: 50,
            durable_flush,
            ..Default::default()
        },
    )
    .expect("publish bench campaign")
}

fn durable_node(dir: &Path, node: NodeId) -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            default_flush: FlushPolicy::Batch(8),
            snapshot_every: 100_000,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
    .with_node(node)
}

/// One recorded platform operation, replayable against any service.
#[derive(Clone)]
enum Op {
    Golden(WorkerId, Vec<(TaskId, ChoiceIndex)>),
    Batch(Vec<Answer>),
}

/// Drives an uninterrupted in-memory campaign to budget, recording every
/// submission; returns the stream and the reference report.
fn record_ops() -> (Vec<Op>, RequesterReport) {
    let mut docs = publish(num_tasks(), None);
    let mut ops = Vec::new();
    let workers = 8u32;
    let mut idle_rounds = 0;
    while idle_rounds < 2 {
        let mut progressed = false;
        for w in 0..workers {
            let w = WorkerId(w);
            match docs.request_tasks(w) {
                WorkRequest::Golden(golden) => {
                    let picks: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
                    docs.submit_golden(w, &picks).expect("golden");
                    ops.push(Op::Golden(w, picks));
                    progressed = true;
                }
                WorkRequest::Tasks(hit) => {
                    let batch: Vec<Answer> = hit
                        .iter()
                        .map(|&t| Answer::new(w, t, (t.index() + w.0 as usize) % 2))
                        .collect();
                    for a in &batch {
                        docs.submit_answer(*a).expect("answer");
                    }
                    ops.push(Op::Batch(batch));
                    progressed = true;
                }
                WorkRequest::Done => {}
            }
        }
        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
    }
    let report = docs.finish().expect("oracle finish");
    (ops, report)
}

/// Replays the recorded stream through the router with pipelined tickets
/// (submit everything, then wait everything): the measured path is the
/// node's — shard thread, WAL append, group commit — not the driver's
/// request round-trips. FIFO per campaign keeps the replay ordered.
fn replay_pipelined(router: &ClusterRouter, campaign: CampaignId, ops: &[Op]) -> u64 {
    let mut golden_tickets = Vec::new();
    let mut batch_tickets = Vec::new();
    for op in ops {
        match op {
            Op::Golden(w, picks) => golden_tickets.push(
                router
                    .submit_golden_ticket_in(campaign, *w, picks.clone())
                    .expect("golden ticket"),
            ),
            Op::Batch(batch) => batch_tickets.push(
                router
                    .submit_answer_batch_ticket_in(campaign, batch.clone())
                    .expect("batch ticket"),
            ),
        }
    }
    for t in golden_tickets {
        t.wait().expect("golden acknowledged");
    }
    let mut answers = 0u64;
    for t in batch_tickets {
        answers += t.wait().expect("batch acknowledged").accepted as u64;
    }
    answers
}

/// Drives one campaign interactively (request → submit → request) with a
/// pacing sleep after each submission — live traffic for the fence to
/// land in the middle of.
fn drive_paced(router: &ClusterRouter, campaign: CampaignId, pace: Duration) -> u64 {
    let mut answers = 0u64;
    let workers = 8u32;
    let mut idle_rounds = 0;
    while idle_rounds < 2 {
        let mut progressed = false;
        for w in 0..workers {
            let w = WorkerId(w);
            match router.request_tasks_in(campaign, w).expect("request") {
                WorkRequest::Golden(golden) => {
                    let picks: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
                    router.submit_golden_in(campaign, w, picks).expect("golden");
                    progressed = true;
                    std::thread::sleep(pace);
                }
                WorkRequest::Tasks(hit) => {
                    let batch: Vec<Answer> = hit
                        .iter()
                        .map(|&t| Answer::new(w, t, (t.index() + w.0 as usize) % 2))
                        .collect();
                    let outcome = router
                        .submit_answer_batch_in(campaign, batch)
                        .expect("batch");
                    if outcome.accepted > 0 {
                        answers += outcome.accepted as u64;
                        progressed = true;
                    }
                    std::thread::sleep(pace);
                }
                WorkRequest::Done => {}
            }
        }
        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
    }
    router.finish_in(campaign).expect("finish");
    answers
}

/// Replays both campaigns concurrently through the router and returns
/// (total answers, wall time to the slower finish).
fn aggregate_tput(router: &ClusterRouter, a: CampaignId, b: CampaignId, ops: &[Op]) -> (u64, f64) {
    let started = Instant::now();
    let driver_b = {
        let router = router.clone();
        let ops: Vec<Op> = ops.to_vec();
        std::thread::spawn(move || replay_pipelined(&router, b, &ops))
    };
    let answers_a = replay_pipelined(router, a, ops);
    let answers_b = driver_b.join().expect("campaign B driver panicked");
    let wall = started.elapsed().as_secs_f64();
    (answers_a + answers_b, wall)
}

struct TwoNode {
    service0: DocsService,
    handle0: ServiceHandle,
    service1: DocsService,
    handle1: ServiceHandle,
    hub: ReplicationHub,
    router: ClusterRouter,
    dir0: PathBuf,
    dir1: PathBuf,
}

fn two_nodes(label: &str) -> (TwoNode, CampaignId, CampaignId) {
    let dir0 = tmp_dir(&format!("{label}-n0"));
    let dir1 = tmp_dir(&format!("{label}-n1"));
    let policy = FlushPolicy::Batch(8);
    let (sink, feed) = replication_channel();
    let (service0, handle0) = DocsService::spawn_sharded(
        publish(num_tasks(), Some(policy)),
        durable_node(&dir0, NodeId(0)).with_replication(sink),
    );
    let campaign_a = handle0.default_campaign();
    let campaign_b = handle0
        .create_campaign(publish(num_tasks(), Some(policy)))
        .expect("second campaign");
    let hub = ReplicationHub::spawn(feed);
    let (service1, handle1) =
        DocsService::spawn_empty(durable_node(&dir1, NodeId(1))).expect("spawn node 1");
    let router = ClusterRouter::new(
        vec![
            ClusterNode {
                id: NodeId(0),
                primary: handle0.clone(),
                replicas: vec![],
            },
            ClusterNode {
                id: NodeId(1),
                primary: handle1.clone(),
                replicas: vec![],
            },
        ],
        ClusterMap::new(NodeId(0)),
    );
    (
        TwoNode {
            service0,
            handle0,
            service1,
            handle1,
            hub,
            router,
            dir0,
            dir1,
        },
        campaign_a,
        campaign_b,
    )
}

/// Migrates `campaign` from node 0 to node 1 and flips the directory.
fn migrate_and_flip(cluster: &TwoNode, campaign: CampaignId) -> docs_replication::MigrationOutcome {
    let outcome = migrate_campaign(
        campaign,
        &MigrationSource {
            handle: &cluster.handle0,
            node: NodeId(0),
            dir: &cluster.dir0,
            hub: &cluster.hub,
        },
        &cluster.handle1,
        NodeId(1),
    )
    .expect("migration");
    let mut map = cluster.router.map();
    map.assign(campaign, NodeId(1));
    assert!(cluster.router.install_map(&map));
    cluster.handle0.install_cluster_map(&map).expect("node 0");
    cluster.handle1.install_cluster_map(&map).expect("node 1");
    outcome
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

fn teardown(cluster: TwoNode) {
    drop(cluster.router);
    drop(cluster.handle0);
    cluster.service0.join_all();
    cluster.hub.join();
    drop(cluster.handle1);
    cluster.service1.join_all();
    let _ = std::fs::remove_dir_all(&cluster.dir0);
    let _ = std::fs::remove_dir_all(&cluster.dir1);
}

fn main() {
    let repeats = if smoke() { 2 } else { 4 };
    println!(
        "cluster: {} tasks/campaign, 1 shard/node (smoke={}, best of {repeats})\n",
        num_tasks(),
        smoke()
    );
    let (ops, reference) = record_ops();

    // ---- Fence window under live traffic. ----
    // Only rounds whose fence actually intersected the driver count
    // (forwarded > 0): a fence over a quiet campaign is trivially short.
    let mut best_fence_ms = f64::INFINITY;
    let mut any_fence_ms = f64::INFINITY;
    let mut forwarded = 0.0;
    for round in 0..repeats {
        let (cluster, campaign, _b) = two_nodes(&format!("fence-{round}"));
        let driver = {
            let router = cluster.router.clone();
            std::thread::spawn(move || drive_paced(&router, campaign, Duration::from_micros(300)))
        };
        std::thread::sleep(Duration::from_millis(2));
        let outcome = migrate_and_flip(&cluster, campaign);
        let answers = driver.join().expect("driver panicked");
        assert!(answers > 0, "driver made no progress");
        // No acked event lost: the adopted copy's collected-answer count
        // covers every acknowledged submission.
        let report = cluster
            .router
            .peek_report_in(campaign)
            .expect("report after migration");
        assert!(report.answers_collected >= answers as usize);
        let stats = cluster.router.stats();
        let fence_ms = outcome.fence_window.as_secs_f64() * 1e3;
        println!(
            "fence round {round}: window {fence_ms:.3} ms at watermark {}, \
             {} redirects absorbed / {} writes forwarded",
            outcome.fence_watermark, stats.wrong_node_redirects, stats.forwarded_writes,
        );
        any_fence_ms = any_fence_ms.min(fence_ms);
        if stats.forwarded_writes > 0 && fence_ms < best_fence_ms {
            best_fence_ms = fence_ms;
            forwarded = stats.forwarded_writes as f64;
        }
        teardown(cluster);
    }
    if best_fence_ms.is_infinite() {
        best_fence_ms = any_fence_ms; // every fence missed the traffic
    }
    println!("fence window: {best_fence_ms:.3} ms (best of {repeats} under traffic)\n");

    // ---- Write scale-out: 1 primary vs 2 primaries. ----
    // Median over rounds: these replays finish in milliseconds, where a
    // single lucky scheduler slice can double a best-of number.
    // Baseline: both campaigns replay into node 0's single shard — the
    // router is the same, the serialization point is the node.
    let mut rounds_1node = Vec::new();
    for round in 0..repeats {
        let (cluster, a, b) = two_nodes(&format!("tput1-{round}"));
        let (answers, wall) = aggregate_tput(&cluster.router, a, b, &ops);
        let report = cluster.router.finish_in(a).expect("finish A");
        assert_eq!(report.truths, reference.truths, "campaign A diverged");
        assert_eq!(report.answers_collected, reference.answers_collected);
        let tput = answers as f64 / wall;
        println!("1-node round {round}: {answers} answers in {wall:.3}s → {tput:.0} answers/s");
        rounds_1node.push(tput);
        teardown(cluster);
    }

    // Scale-out: migrate campaign B to node 1 first (quiet), then replay
    // both campaigns concurrently — two shard threads, two WALs.
    let mut rounds_2node = Vec::new();
    for round in 0..repeats {
        let (cluster, a, b) = two_nodes(&format!("tput2-{round}"));
        migrate_and_flip(&cluster, b);
        let (answers, wall) = aggregate_tput(&cluster.router, a, b, &ops);
        let report = cluster.router.finish_in(b).expect("finish B");
        assert_eq!(
            report.truths, reference.truths,
            "migrated campaign diverged"
        );
        assert_eq!(report.answers_collected, reference.answers_collected);
        let tput = answers as f64 / wall;
        println!("2-node round {round}: {answers} answers in {wall:.3}s → {tput:.0} answers/s");
        rounds_2node.push(tput);
        teardown(cluster);
    }
    let tput_1node = median(&mut rounds_1node);
    let tput_2node = median(&mut rounds_2node);
    let speedup = tput_2node / tput_1node;
    println!(
        "\nwrite scale-out: {tput_1node:.0} answers/s on 1 primary → \
         {tput_2node:.0} answers/s on 2 primaries ({speedup:.2}x, median of {repeats})"
    );

    // The smoke run is an assertion pass: shared-runner speed must never
    // overwrite the committed trajectory (the open_loop bench's rule).
    if smoke() {
        println!("smoke run: numbers not merged into BENCH_cluster.json");
        return;
    }
    docs_bench::merge_bench_json(
        "BENCH_cluster.json",
        &[
            (
                "cluster_migration_fence_window_ms".to_string(),
                best_fence_ms,
            ),
            ("cluster_migration_forwarded_count".to_string(), forwarded),
            (
                "cluster_write_tput_1node_answers_per_s".to_string(),
                tput_1node,
            ),
            (
                "cluster_write_tput_2nodes_answers_per_s".to_string(),
                tput_2node,
            ),
            ("cluster_write_scaleout_speedup_x".to_string(), speedup),
        ],
    );
}
