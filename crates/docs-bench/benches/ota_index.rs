//! OTA request-path bench: the paper's flat benefit scan vs the
//! incremental benefit index, on a warm task pool at 10k/100k tasks.
//!
//! ```text
//! cargo bench -p docs-bench --bench ota_index          # full sizes
//! OTA_SMOKE=1 cargo bench -p docs-bench --bench ota_index   # CI smoke
//! ```
//!
//! The pool models the steady state OTA itself drives toward: most tasks
//! have collected several answers from strong workers (confident, tiny
//! entropy), a small fraction are fresh or contested (high entropy). The
//! flat scan still pays one benefit evaluation per task per request; the
//! index pops only the candidates whose entropy bound can reach the
//! top-`k`. Every measured request asserts the two paths pick identical
//! tasks — the bench is also an equivalence check at sizes the unit tests
//! do not reach.
//!
//! Headline numbers merge into `BENCH_ota.json` at the workspace root
//! (`ota_request_{scan,index}_<n>_tasks_ms`, `ota_index_speedup_<n>_tasks_x`,
//! plus the per-answer index maintenance cost).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use docs_core::ota::{Assigner, AssignerConfig, BenefitIndex};
use docs_core::ti::{ShardedTiState, TaskState};
use docs_types::{DomainVector, Task, TaskBuilder, TaskId};
use std::time::Instant;

const M: usize = 3;
const K: usize = 20;

fn smoke() -> bool {
    std::env::var_os("OTA_SMOKE").is_some()
}

fn sizes() -> Vec<usize> {
    if smoke() {
        vec![2_000]
    } else {
        vec![10_000, 100_000]
    }
}

struct Pool {
    tasks: Vec<Task>,
    states: Vec<TaskState>,
    sharding: ShardedTiState,
}

/// A warm pool: ~99% of tasks confident after 4–8 consistent strong
/// answers, 1% fresh (never assigned yet) — entropies spread over orders
/// of magnitude, as they are mid-campaign.
fn warm_pool(n: usize, task_shards: usize) -> Pool {
    let tasks: Vec<Task> = (0..n)
        .map(|i| {
            TaskBuilder::new(i, format!("t{i}"))
                .yes_no()
                .with_domain_vector(DomainVector::one_hot(M, i % M))
                .build()
                .unwrap()
        })
        .collect();
    let states: Vec<TaskState> = (0..n)
        .map(|i| {
            let mut st = TaskState::new(M, 2);
            if i % 100 != 0 {
                let r = DomainVector::one_hot(M, i % M);
                for _ in 0..(4 + i % 5) {
                    st.apply_answer(&r, &[0.92, 0.9, 0.88], i % 2);
                }
            }
            st
        })
        .collect();
    Pool {
        sharding: ShardedTiState::new(n, task_shards),
        tasks,
        states,
    }
}

/// Rotating worker profiles so requests are not identical.
fn quality_of(request: usize) -> Vec<f64> {
    let base = [0.9, 0.75, 0.6];
    (0..M).map(|k| base[(request + k) % base.len()]).collect()
}

fn assigner() -> Assigner {
    Assigner::new(AssignerConfig {
        k: K,
        ..Default::default()
    })
}

fn scan_request(pool: &Pool, quality: &[f64]) -> Vec<TaskId> {
    assigner().assign_sharded(
        quality,
        &pool.tasks,
        &pool.states,
        &pool.sharding,
        |_| false,
        |_| 0,
    )
}

fn indexed_request(pool: &Pool, index: &mut BenefitIndex, quality: &[f64]) -> Vec<TaskId> {
    assigner().assign_indexed(
        quality,
        &pool.tasks,
        &pool.states,
        &pool.sharding,
        index,
        |_| false,
        |_| 0,
    )
}

/// Mean request latency (ms) over `requests` rotated-quality requests.
fn measure(pool: &Pool, index: Option<&mut BenefitIndex>, requests: usize) -> f64 {
    let started = Instant::now();
    match index {
        Some(index) => {
            for r in 0..requests {
                black_box(indexed_request(pool, index, &quality_of(r)));
            }
        }
        None => {
            for r in 0..requests {
                black_box(scan_request(pool, &quality_of(r)));
            }
        }
    }
    started.elapsed().as_secs_f64() * 1e3 / requests as f64
}

fn ota_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("ota_request");
    for n in sizes() {
        let pool = warm_pool(n, 1);
        let mut index = BenefitIndex::new(&pool.states, &pool.sharding);
        // Equivalence at bench scale before timing anything.
        for r in 0..3 {
            assert_eq!(
                indexed_request(&pool, &mut index, &quality_of(r)),
                scan_request(&pool, &quality_of(r)),
                "index diverged from the scan at n = {n}"
            );
        }
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            let mut r = 0;
            b.iter(|| {
                r += 1;
                black_box(scan_request(&pool, &quality_of(r)))
            });
        });
        group.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
            let mut r = 0;
            b.iter(|| {
                r += 1;
                black_box(indexed_request(&pool, &mut index, &quality_of(r)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ota_request);

/// Merges headline numbers into `BENCH_ota.json` at the workspace root.
fn write_bench_json() {
    let mut updates: Vec<(String, f64)> = Vec::new();
    for n in sizes() {
        let pool = warm_pool(n, 1);
        let mut index = BenefitIndex::new(&pool.states, &pool.sharding);
        for r in 0..3 {
            assert_eq!(
                indexed_request(&pool, &mut index, &quality_of(r)),
                scan_request(&pool, &quality_of(r)),
                "index diverged from the scan at n = {n}"
            );
        }
        // Enough requests to smooth noise without letting the 100k scan run
        // for minutes.
        let scan_requests = (2_000_000 / n).clamp(3, 50);
        let index_requests = 200;
        let scan_ms = measure(&pool, None, scan_requests);
        let index_ms = measure(&pool, Some(&mut index), index_requests);
        updates.push((format!("ota_request_scan_{n}_tasks_ms"), scan_ms));
        updates.push((format!("ota_request_index_{n}_tasks_ms"), index_ms));
        updates.push((format!("ota_index_speedup_{n}_tasks_x"), scan_ms / index_ms));
        println!(
            "n = {n}: scan {scan_ms:.3} ms/request, index {index_ms:.3} ms/request \
             ({:.1}x)",
            scan_ms / index_ms
        );
    }
    // Index maintenance: the write-path cost of keeping the index current,
    // one bump per ingested answer.
    {
        let n = *sizes().last().unwrap();
        let pool = warm_pool(n, 1);
        let mut index = BenefitIndex::new(&pool.states, &pool.sharding);
        let bumps = 200_000usize;
        let started = Instant::now();
        for i in 0..bumps {
            let task = (i * 7919) % n;
            index.bump(task, pool.states[task].entropy());
        }
        let ns = started.elapsed().as_secs_f64() * 1e9 / bumps as f64;
        updates.push(("ota_index_bump_per_answer_ns".to_string(), ns));
        println!("index maintenance: {ns:.0} ns per ingested answer");
    }
    docs_bench::merge_bench_json("BENCH_ota.json", &updates);
}

fn main() {
    benches();
    write_bench_json();
}
