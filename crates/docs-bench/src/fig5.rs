//! Figure 5: truth-inference comparison — MV, ZC, DS, IC, FC, DOCS —
//! accuracy and execution time on the same collected answers, plus two
//! extended competitors from the related-work lineage (GLAD \[46\], CRH \[28\])
//! that the paper cites but does not benchmark.

use crate::protocol::PreparedDataset;
use docs_baselines::ti::{
    Crh, DawidSkene, FaitCrowd, Glad, ICrowd, MajorityVote, TruthMethod, ZenCrowd,
};
use docs_core::ti::TruthInference;
use docs_crowd::accuracy_of;
use std::time::{Duration, Instant};

/// One method's Figure 5 bar pair.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method display name.
    pub method: &'static str,
    /// Accuracy on the dataset.
    pub accuracy: f64,
    /// Inference wall time.
    pub time: Duration,
}

/// Runs the Figure 5 comparison on one prepared dataset.
///
/// Protocol notes mirroring Section 6.3: all competitors are initialized
/// from the same golden tasks; IC and FC additionally receive the ground
/// truth of each task's domain ("to do a more challenging job").
pub fn run(prepared: &PreparedDataset) -> Vec<MethodResult> {
    let tasks = &prepared.dataset.tasks;
    let log = &prepared.log;
    let scalar_init = prepared.scalar_init();

    let mut results = Vec::new();
    let mut measure = |method: &'static str, f: &mut dyn FnMut() -> Vec<usize>| {
        let t0 = Instant::now();
        let truths = f();
        let time = t0.elapsed();
        results.push(MethodResult {
            method,
            accuracy: accuracy_of(&truths, tasks),
            time,
        });
    };

    measure("MV", &mut || MajorityVote.infer(tasks, log));
    measure("ZC", &mut || {
        ZenCrowd::default()
            .with_init(scalar_init.clone())
            .infer(tasks, log)
    });
    measure("DS", &mut || {
        DawidSkene::default()
            .with_init(scalar_init.clone())
            .infer(tasks, log)
    });
    measure("GLAD", &mut || {
        Glad::default()
            .with_init(scalar_init.clone())
            .infer(tasks, log)
    });
    measure("CRH", &mut || {
        Crh::default()
            .with_init(scalar_init.clone())
            .infer(tasks, log)
    });
    // IC and FC consume the ground-truth domains (true_domain), the paper's
    // handicap.
    measure("IC", &mut || ICrowd::default().infer(tasks, log));
    measure("FC", &mut || {
        FaitCrowd::default()
            .with_init(scalar_init.clone())
            .infer(tasks, log)
    });
    measure("DOCS", &mut || {
        TruthInference::default()
            .run(tasks, log, &prepared.docs_registry())
            .truths
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::prepare;

    #[test]
    fn docs_leads_the_field_on_item() {
        let prepared = prepare(docs_datasets::item(), 10, 20, 40, 0x5A);
        let results = run(&prepared);
        assert_eq!(results.len(), 8);
        let get = |name: &str| results.iter().find(|r| r.method == name).unwrap().accuracy;
        let docs = get("DOCS");
        assert!(docs > 0.85, "DOCS accuracy {docs}");
        // The Figure 5 ordering at the aggregate level: DOCS at the top,
        // MV at the bottom.
        assert!(docs >= get("MV"), "DOCS {docs} vs MV {}", get("MV"));
        for m in ["ZC", "DS", "GLAD", "CRH", "IC", "FC"] {
            assert!(
                docs + 1e-9 >= get(m),
                "DOCS {docs} should not lose to {m} ({})",
                get(m)
            );
        }
    }
}
