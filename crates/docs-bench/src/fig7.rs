//! Figure 7: golden-task selection — approximation vs enumeration, and
//! scalability of the approximation.

use docs_core::golden::{allocation_objective, golden_counts, golden_counts_enumeration};
use docs_types::prob;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One Figure 7(a) point.
#[derive(Debug, Clone)]
pub struct Fig7aPoint {
    /// Golden budget n′.
    pub n_prime: usize,
    /// Approximation algorithm time.
    pub approx_time: Duration,
    /// Exact enumeration time.
    pub enum_time: Duration,
    /// Approximation ratio γ = |D − D_opt| / D_opt.
    pub gamma: f64,
}

/// Random domain distribution τ of size `m`.
pub fn random_tau(m: usize, rng: &mut SmallRng) -> Vec<f64> {
    let mut tau: Vec<f64> = (0..m).map(|_| rng.gen_range(0.05..1.0)).collect();
    prob::normalize_in_place(&mut tau);
    tau
}

/// **Figure 7(a)**: for each n′, the time of both solvers and γ
/// (m = 10, random τ per point, as in the paper).
pub fn fig7a(n_primes: &[usize], seed: u64) -> Vec<Fig7aPoint> {
    let mut rng = SmallRng::seed_from_u64(seed);
    n_primes
        .iter()
        .map(|&n_prime| {
            let tau = random_tau(10, &mut rng);

            let t0 = Instant::now();
            let approx = golden_counts(&tau, n_prime);
            let approx_time = t0.elapsed();

            let t0 = Instant::now();
            let (_, d_opt) = golden_counts_enumeration(&tau, n_prime);
            let enum_time = t0.elapsed();

            let d = allocation_objective(&approx, &tau);
            let gamma = if d_opt > 1e-12 {
                (d - d_opt).abs() / d_opt
            } else {
                (d - d_opt).abs()
            };
            Fig7aPoint {
                n_prime,
                approx_time,
                enum_time,
                gamma,
            }
        })
        .collect()
}

/// One Figure 7(b) point.
#[derive(Debug, Clone)]
pub struct Fig7bPoint {
    /// Golden budget n′.
    pub n_prime: usize,
    /// Number of domains m.
    pub m: usize,
    /// Approximation time.
    pub time: Duration,
}

/// **Figure 7(b)**: approximation scalability over n′ ∈ [1K, 10K] and
/// m ∈ {10, 20, 50}.
pub fn fig7b(n_primes: &[usize], ms: &[usize], seed: u64) -> Vec<Fig7bPoint> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for &m in ms {
        let tau = random_tau(m, &mut rng);
        for &n_prime in n_primes {
            let t0 = Instant::now();
            let counts = golden_counts(&tau, n_prime);
            let time = t0.elapsed();
            debug_assert_eq!(counts.iter().sum::<usize>(), n_prime);
            out.push(Fig7bPoint { n_prime, m, time });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_is_tiny() {
        // The paper reports average γ within 0.1%; give a little slack on
        // individual random draws.
        let points = fig7a(&[4, 8, 12], 0x7A);
        for p in &points {
            assert!(p.gamma < 0.01, "n′={} γ={}", p.n_prime, p.gamma);
        }
    }

    #[test]
    fn enumeration_time_explodes_and_approx_stays_flat() {
        let points = fig7a(&[6, 14], 0x7B);
        assert!(
            points[1].enum_time > points[0].enum_time,
            "enumeration should grow steeply: {points:?}"
        );
        // Approximation stays far below enumeration at the larger size.
        assert!(points[1].approx_time < points[1].enum_time);
    }

    #[test]
    fn approx_scales_with_m_not_n_prime() {
        let points = fig7b(&[1_000, 10_000], &[10, 50], 0x7C);
        let t = |n: usize, m: usize| {
            points
                .iter()
                .find(|p| p.n_prime == n && p.m == m)
                .unwrap()
                .time
        };
        // Flat in n′ (within generous noise).
        assert!(t(10_000, 10) < t(1_000, 10) * 20 + Duration::from_millis(1));
        // All fast.
        for p in &points {
            assert!(p.time < Duration::from_millis(100), "{p:?}");
        }
    }
}
