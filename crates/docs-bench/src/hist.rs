//! Log-bucketed latency histogram for the open-loop load harness.
//!
//! An open-loop run records hundreds of thousands of latencies; keeping
//! them all and sorting (the `pct` helper's approach) would make the
//! harness's own bookkeeping a measurable share of the load generator's
//! time budget. This histogram is the classic HDR shape instead: values
//! land in power-of-two octaves, each octave split into
//! 2^[`SUB_BITS`] = 16 linear sub-buckets, so `record` is a handful of
//! bit operations, memory is a fixed ~1 KiB of counters, and any quantile
//! is reported with bounded **relative** error (a bucket spans at most
//! 1/16 ≈ 6.25% of its value) across the full `u64` nanosecond range —
//! equally sharp at 3 µs and at 3 s, which is exactly what a p999 over a
//! heavy-tailed assignment-latency distribution needs.
//!
//! The histogram is deliberately single-threaded; the harness keeps one
//! per load-generator thread and [`LatencyHistogram::merge`]s them at the
//! end, so the hot path takes no locks.

use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear buckets.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Octaves above the linear region: values with a most-significant bit in
/// `SUB_BITS..64` each get one octave of [`SUBS`] buckets; values below
/// `2^SUB_BITS` are exact (one bucket per nanosecond).
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Returns the bucket index of a nanosecond value. Zero shares the first
/// bucket with 1 ns — the difference is far below timer resolution.
#[inline]
fn bucket_of(ns: u64) -> usize {
    let v = ns.max(1);
    let msb = 63 - v.leading_zeros();
    if msb < SUB_BITS {
        return v as usize;
    }
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) - SUBS;
    SUBS + octave * SUBS + sub
}

/// The smallest nanosecond value a bucket holds (its reported quantile
/// value, which keeps quantiles conservative-from-below and exact for the
/// sub-16 ns linear region).
#[inline]
fn bucket_floor(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let octave = ((index - SUBS) / SUBS) as u32;
    let sub = ((index - SUBS) % SUBS) as u64;
    (SUBS as u64 + sub) << octave
}

/// Fixed-footprint log-bucketed histogram of nanosecond latencies.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency sample in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram's samples into this one (used to combine
    /// per-thread histograms after a run).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value (tracked outside the buckets).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.total as f64
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds: the floor of the
    /// bucket holding the ⌈q·n⌉-th smallest sample, so the true value is
    /// within one sub-bucket (≤ 6.25%) above the reported one. `q = 1.0`
    /// returns the exact maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max_ns;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_floor(index);
            }
        }
        self.max_ns
    }

    /// The `q`-quantile in (fractional) milliseconds — the unit the bench
    /// JSON and gate work in.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1e6
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50_ns", &self.quantile(0.50))
            .field("p99_ns", &self.quantile(0.99))
            .field("p999_ns", &self.quantile(0.999))
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range_in_order() {
        // Floors are non-decreasing, every floor maps back to its own
        // bucket, and bucketing is monotone across octave boundaries.
        let mut last = 0;
        for index in 0..BUCKETS {
            let floor = bucket_floor(index);
            assert!(floor >= last, "floor regressed at bucket {index}");
            assert_eq!(bucket_of(floor.max(1)), index.max(1), "floor {floor}");
            last = floor;
        }
        for probe in [1u64, 15, 16, 17, 255, 256, 1 << 20, u64::MAX] {
            assert!(bucket_floor(bucket_of(probe)) <= probe);
        }
    }

    #[test]
    fn small_values_are_exact_and_quantiles_walk_the_ranks() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=10u64 {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 5, "values below 16 ns land exactly");
        assert_eq!(h.quantile(0.1), 1);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.max_ns(), 10);
        assert!((h.mean_ns() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_relative_error_is_bounded_by_one_sub_bucket() {
        let mut h = LatencyHistogram::new();
        // A wide deterministic spread: 1 µs .. 1 s in geometric steps.
        let mut values = Vec::new();
        let mut v = 1_000u64;
        while v < 1_000_000_000 {
            values.push(v);
            v += v / 7 + 1;
        }
        for &v in &values {
            h.record_ns(v);
        }
        values.sort_unstable();
        for &(q, _) in &[(0.5, ()), (0.9, ()), (0.99, ()), (0.999, ())] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            assert!(got <= exact, "quantile must report the bucket floor");
            assert!(
                got >= exact * (1.0 - 1.0 / SUBS as f64),
                "q={q}: {got} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let (mut a, mut b, mut all) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for i in 0..1000u64 {
            let ns = i * 7919 + 13;
            if i % 2 == 0 {
                a.record_ns(ns);
            } else {
                b.record_ns(ns);
            }
            all.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max_ns(), all.max_ns());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }
}
