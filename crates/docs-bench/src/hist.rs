//! Log-bucketed latency histogram for the open-loop load harness — now a
//! thin re-export of the shared implementation in [`docs_obs::hist`].
//!
//! The histogram started life here (the open-loop harness needed fixed
//! ~1 KiB, lock-free-per-thread quantile bookkeeping) and was promoted
//! into `docs-obs` when the service grew the same need on its hot paths.
//! The harness keeps one [`LatencyHistogram`] per load-generator thread
//! and [`LatencyHistogram::merge`]s them at the end, exactly as before;
//! the service side uses the atomic sibling
//! ([`docs_obs::AtomicHistogram`]) that shares the bucket layout.

pub use docs_obs::hist::{LatencyHistogram, SUBS};

#[cfg(test)]
mod tests {
    use super::*;

    // The re-export keeps the harness-facing contract; the bucket-layout
    // and merge/quantile property tests live with the implementation in
    // `docs-obs`.
    #[test]
    fn reexported_histogram_behaves_like_the_original() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=10u64 {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 5, "values below 16 ns land exactly");
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.max_ns(), 10);
        assert!((h.mean_ns() - 5.5).abs() < 1e-9);
        assert_eq!(h.quantile_ms(1.0), 10.0 / 1e6);
        assert_eq!(SUBS, 16, "one sub-bucket is 1/16 relative error");
    }
}
