//! Table 3: efficiency of DVE — Algorithm 1 vs Enumeration under the
//! top-20/top-10/top-3 concept heuristics, per dataset.

use docs_core::dve::{domain_vector, domain_vector_enumeration};
use docs_datasets::Dataset;
use docs_kb::{EntityLinker, LinkedEntity, LinkerConfig};
use std::time::{Duration, Instant};

/// One Table 3 cell pair.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Top-`c` heuristic.
    pub top_c: usize,
    /// Total Algorithm 1 time over all tasks.
    pub algorithm1: Duration,
    /// Total Enumeration time over all tasks, or `None` when the linking
    /// space exceeded the cap — the paper's "> 1 day" entries.
    pub enumeration: Option<Duration>,
}

/// Links every task of a dataset under the `top_c` heuristic.
pub fn linked_entities(dataset: &Dataset, top_c: usize) -> Vec<Vec<LinkedEntity>> {
    let linker = EntityLinker::new(
        &dataset.kb,
        LinkerConfig {
            top_c,
            context_weight: 0.5,
        },
    );
    dataset.tasks.iter().map(|t| linker.link(&t.text)).collect()
}

/// Runs one Table 3 configuration. `max_linkings` bounds the enumeration
/// effort per task (the paper's "> 1 day" cutoff; any task exceeding it
/// marks the whole cell as unfinishable, exactly like the original timeout).
pub fn run_cell(dataset: &Dataset, top_c: usize, max_linkings: u128) -> Table3Row {
    let m = dataset.domain_set.len();
    let all_entities = linked_entities(dataset, top_c);

    let t0 = Instant::now();
    for entities in &all_entities {
        let _ = domain_vector(entities, m);
    }
    let algorithm1 = t0.elapsed();

    let t0 = Instant::now();
    let mut enumeration = Some(Duration::ZERO);
    for entities in &all_entities {
        if domain_vector_enumeration(entities, m, max_linkings).is_none() {
            enumeration = None;
            break;
        }
    }
    if enumeration.is_some() {
        enumeration = Some(t0.elapsed());
    }

    Table3Row {
        dataset: dataset.name,
        top_c,
        algorithm1,
        enumeration,
    }
}

/// Regenerates the full table over all four datasets and the three
/// heuristics.
pub fn run(max_linkings: u128) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for mut dataset in docs_datasets::all_datasets() {
        dataset.run_dve_default();
        for top_c in [20usize, 10, 3] {
            rows.push(run_cell(&dataset, top_c, max_linkings));
        }
    }
    rows
}

/// Formats a cell the way the paper prints it.
pub fn format_duration(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.3}s", d.as_secs_f64()),
        None => "> cap (exponential)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm1_always_finishes_and_enumeration_blows_up() {
        let mut dataset = docs_datasets::item();
        dataset.run_dve_default();
        // Tight cap: top-20 enumeration must exceed it on multi-entity
        // tasks (20^2 = 400 linkings is fine, but Item tasks have 2 entities
        // with 20 candidates... use top_c=20 with cap 100 to force overflow).
        let row = run_cell(&dataset, 20, 100);
        assert!(row.enumeration.is_none(), "cap should trigger");
        assert!(row.algorithm1 > Duration::ZERO);
        // Tiny heuristic: enumeration finishes.
        let row3 = run_cell(&dataset, 3, 1 << 30);
        assert!(row3.enumeration.is_some());
    }

    #[test]
    fn both_methods_agree_where_enumeration_is_feasible() {
        let mut dataset = docs_datasets::item();
        dataset.run_dve_default();
        let m = dataset.domain_set.len();
        let all = linked_entities(&dataset, 3);
        for entities in all.iter().take(30) {
            let fast = domain_vector(entities, m);
            let slow = domain_vector_enumeration(entities, m, 1 << 30).unwrap();
            for k in 0..m {
                assert!((fast[k] - slow[k]).abs() < 1e-9);
            }
        }
    }
}
