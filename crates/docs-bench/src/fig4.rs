//! Figure 4: the five TI aspect experiments.

use crate::protocol::PreparedDataset;
use docs_core::ti::{TiConfig, TruthInference, WorkerRegistry};
use docs_datasets::scalability_workload;
use docs_types::WorkerId;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// **Figure 4(a)** — convergence: the parameter change Δ per iteration.
pub fn fig4a_convergence(prepared: &PreparedDataset, max_iterations: usize) -> Vec<f64> {
    let ti = TruthInference::new(TiConfig {
        max_iterations,
        epsilon: 0.0, // run all iterations to trace the full curve
    });
    let result = ti.run(
        &prepared.dataset.tasks,
        &prepared.log,
        &prepared.docs_registry(),
    );
    result.deltas
}

/// **Figure 4(b)** — accuracy as a function of the number of golden tasks.
///
/// Re-runs golden selection and initialization for each budget; `0` golden
/// tasks means prior-only initialization.
pub fn fig4b_golden_sweep(prepared: &PreparedDataset, budgets: &[usize]) -> Vec<(usize, f64)> {
    let m = prepared.dataset.domain_set.len();
    budgets
        .iter()
        .map(|&n_golden| {
            let mut registry = WorkerRegistry::new(m, 0.7);
            let mut extra_rng = rand::rngs::SmallRng::seed_from_u64(0x4B ^ n_golden as u64);
            if n_golden > 0 {
                let golden_ids =
                    docs_core::golden::select_golden_tasks(&prepared.dataset.tasks, n_golden);
                for (&w, all_answers) in &prepared.golden_answers {
                    // Reuse each worker's recorded golden answers, filtered
                    // to this budget's golden set (re-answer via the cached
                    // set when the budget exceeds the recorded HIT).
                    let answers: Vec<_> = golden_ids
                        .iter()
                        .map(|gid| {
                            all_answers
                                .iter()
                                .find(|(t, _)| t == gid)
                                .copied()
                                .unwrap_or_else(|| {
                                    // Golden budget exceeds the recorded HIT:
                                    // simulate the extra golden answers from
                                    // the worker's true quality.
                                    let t = &prepared.dataset.tasks[gid.index()];
                                    let choice = prepared.population.worker(w).answer(
                                        t,
                                        docs_crowd::AnswerModel::DomainUniform,
                                        &mut extra_rng,
                                    );
                                    (*gid, choice)
                                })
                        })
                        .collect();
                    registry.init_from_golden(
                        w,
                        &answers,
                        |tid| {
                            let t = &prepared.dataset.tasks[tid.index()];
                            (t.domain_vector().clone(), t.ground_truth.expect("golden"))
                        },
                        1.0,
                    );
                }
            }
            let result =
                TruthInference::default().run(&prepared.dataset.tasks, &prepared.log, &registry);
            (n_golden, result.accuracy(&prepared.dataset.tasks))
        })
        .collect()
}

/// **Figure 4(c)** — accuracy as a function of answers collected per task.
pub fn fig4c_answer_sweep(prepared: &PreparedDataset, caps: &[usize]) -> Vec<(usize, f64)> {
    let registry = prepared.docs_registry();
    caps.iter()
        .map(|&cap| {
            let log = prepared.log_with_answer_cap(cap);
            let result = TruthInference::default().run(&prepared.dataset.tasks, &log, &registry);
            (cap, result.accuracy(&prepared.dataset.tasks))
        })
        .collect()
}

/// **Figure 4(d)** — worker-quality estimation: mean |q̃ − q| deviation as a
/// function of how many tasks each worker answered.
pub fn fig4d_quality_deviation(prepared: &PreparedDataset, caps: &[usize]) -> Vec<(usize, f64)> {
    let registry = prepared.docs_registry();
    caps.iter()
        .map(|&cap| {
            let log = prepared.log.truncated_per_worker(cap);
            let result = TruthInference::default().run(&prepared.dataset.tasks, &log, &registry);
            // Deviation only over the focus domains the dataset exercises
            // (qualities of untouched domains stay at the prior).
            let focus = &prepared.dataset.focus_domains;
            let mut total = 0.0;
            let mut count = 0usize;
            for (&w, q) in &result.qualities {
                let tq = prepared.population.true_quality(w);
                for &fd in focus {
                    total += (q[fd] - tq[fd]).abs();
                    count += 1;
                }
            }
            (
                cap,
                if count == 0 {
                    0.0
                } else {
                    total / count as f64
                },
            )
        })
        .collect()
}

/// One Figure 4(e) measurement point.
#[derive(Debug, Clone)]
pub struct ScalabilityPoint {
    /// Number of tasks `n`.
    pub n: usize,
    /// Worker-set size `|W|`.
    pub workers: usize,
    /// Iterative TI wall time.
    pub time: Duration,
}

/// **Figure 4(e)** — TI scalability: time vs `n` for several `|W|`
/// (m = 20, 10 answers per task, as in the paper's simulation).
pub fn fig4e_scalability(ns: &[usize], worker_sizes: &[usize], seed: u64) -> Vec<ScalabilityPoint> {
    let mut points = Vec::new();
    for &workers in worker_sizes {
        for &n in ns {
            let (tasks, _pop, log) = scalability_workload(n, 20, workers, 10, seed);
            let registry = WorkerRegistry::new(20, 0.7);
            let ti = TruthInference::new(TiConfig {
                max_iterations: 20,
                epsilon: 1e-6,
            });
            let t0 = Instant::now();
            let _ = ti.run(&tasks, &log, &registry);
            points.push(ScalabilityPoint {
                n,
                workers,
                time: t0.elapsed(),
            });
        }
    }
    points
}

/// Worker-quality estimation helper shared with Figure 6: estimated vs true
/// quality pairs for a chosen domain.
pub fn calibration_pairs(
    prepared: &PreparedDataset,
    domain: usize,
    min_answers: usize,
) -> Vec<(WorkerId, f64, f64)> {
    let registry = prepared.docs_registry();
    let result = TruthInference::default().run(&prepared.dataset.tasks, &prepared.log, &registry);
    let mut pairs = Vec::new();
    for (&w, q) in &result.qualities {
        if prepared.log.worker_answers(w).len() < min_answers {
            continue;
        }
        let true_q = prepared.population.true_quality(w)[domain];
        pairs.push((w, true_q, q[domain]));
    }
    pairs.sort_by_key(|(w, _, _)| *w);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::prepare;

    fn small_prepared() -> PreparedDataset {
        prepare(docs_datasets::item(), 6, 10, 30, 0x4A)
    }

    #[test]
    fn convergence_curve_decreases() {
        let prepared = small_prepared();
        let deltas = fig4a_convergence(&prepared, 30);
        assert_eq!(deltas.len(), 30);
        let head: f64 = deltas[..3].iter().sum();
        let tail: f64 = deltas[deltas.len() - 3..].iter().sum();
        assert!(tail < head / 10.0, "Δ should collapse: {deltas:?}");
    }

    #[test]
    fn more_answers_help() {
        let prepared = small_prepared();
        let sweep = fig4c_answer_sweep(&prepared, &[1, 3, 6]);
        assert!(sweep[2].1 >= sweep[0].1, "{sweep:?}");
        assert!(sweep[2].1 > 0.72, "{sweep:?}");
    }

    #[test]
    fn more_worker_answers_reduce_deviation() {
        let prepared = small_prepared();
        let sweep = fig4d_quality_deviation(&prepared, &[1, 80]);
        assert!(
            sweep[1].1 <= sweep[0].1 + 0.02,
            "deviation should shrink: {sweep:?}"
        );
    }

    #[test]
    fn scalability_time_grows_with_n_not_workers() {
        let points = fig4e_scalability(&[200, 800], &[10, 100], 0x4E);
        let t = |n: usize, w: usize| {
            points
                .iter()
                .find(|p| p.n == n && p.workers == w)
                .unwrap()
                .time
        };
        // Linear in n: 4x tasks should cost clearly more.
        assert!(t(800, 10) > t(200, 10));
        // Worker count: within noise — do not assert strictly, only that it
        // does not blow up by an order of magnitude.
        assert!(t(800, 100) < t(800, 10) * 10);
    }

    #[test]
    fn golden_sweep_runs_all_budgets() {
        let prepared = small_prepared();
        let sweep = fig4b_golden_sweep(&prepared, &[0, 10]);
        assert_eq!(sweep.len(), 2);
        for (_, acc) in &sweep {
            assert!((0.0..=1.0).contains(acc));
        }
    }
}
