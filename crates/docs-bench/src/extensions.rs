//! Extension experiments beyond the paper's evaluation: correlated DVE,
//! multi-domain metrics, and adaptive stopping. (The robustness sweep lives
//! in [`crate::robustness`].)

use docs_core::dve::{self, evaluate_corpus, MultiDomainReport};
use docs_core::ti::{IncrementalTi, StoppingPolicy, StoppingRule, WorkerRegistry};
use docs_crowd::{accuracy_of, AnswerModel, PopulationConfig, WorkerPopulation};
use docs_datasets::Dataset;
use docs_kb::{EntityLinker, LinkerConfig};
use docs_types::{Answer, TaskId, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Multi-domain quality of DVE on one dataset, independent vs
/// coherence-reranked linking.
#[derive(Debug, Clone)]
pub struct CorrelatedDveRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Single-label detection accuracy (the Figure 3 metric), independent.
    pub independent_acc: f64,
    /// Single-label detection accuracy, reranked at λ.
    pub reranked_acc: f64,
    /// Multi-domain report (JS / top-2 recall / mode F1), independent.
    pub independent_multi: MultiDomainReport,
    /// Multi-domain report, reranked.
    pub reranked_multi: MultiDomainReport,
    /// Correlation strength used.
    pub lambda: f64,
}

/// Runs the correlated-DVE comparison on one dataset: estimate every task's
/// domain vector with the independent Algorithm 1 and with coherence
/// reranking, then score both with the single-label accuracy *and* the
/// multi-domain metrics of `dve::metrics` (truth = the dataset's labeled
/// true domain).
pub fn correlated_dve(mut dataset: Dataset, lambda: f64) -> CorrelatedDveRow {
    let m = dataset.domain_set.len();
    let linker = EntityLinker::new(
        &dataset.kb,
        LinkerConfig {
            top_c: 20,
            context_weight: 0.5,
        },
    );
    let mut independent = Vec::with_capacity(dataset.len());
    let mut reranked = Vec::with_capacity(dataset.len());
    let mut truths: Vec<Vec<usize>> = Vec::with_capacity(dataset.len());
    for task in &dataset.tasks {
        let entities = linker.link(&task.text);
        independent.push(dve::domain_vector(&entities, m));
        reranked.push(dve::domain_vector_reranked(&entities, m, lambda));
        truths.push(vec![task.true_domain.expect("datasets label true domains")]);
    }
    let single_acc = |vectors: &[docs_types::DomainVector]| {
        let correct = vectors
            .iter()
            .zip(&truths)
            .filter(|(r, t)| r.dominant_domain() == t[0])
            .count();
        correct as f64 / vectors.len() as f64
    };
    let row = CorrelatedDveRow {
        dataset: dataset.name,
        independent_acc: single_acc(&independent),
        reranked_acc: single_acc(&reranked),
        independent_multi: evaluate_corpus(&independent, &truths, 0.25),
        reranked_multi: evaluate_corpus(&reranked, &truths, 0.25),
        lambda,
    };
    // Leave the dataset with the reranked vectors installed for any caller
    // that wants to chain experiments.
    for (task, r) in dataset.tasks.iter_mut().zip(reranked) {
        task.domain_vector = Some(r);
    }
    row
}

/// Outcome of the adaptive-stopping campaign comparison.
#[derive(Debug, Clone)]
pub struct AdaptiveStoppingRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Answers and accuracy under the uniform cap.
    pub uniform_answers: usize,
    /// Accuracy under the uniform cap.
    pub uniform_accuracy: f64,
    /// Answers and accuracy under the stopping policy.
    pub adaptive_answers: usize,
    /// Accuracy under the stopping policy.
    pub adaptive_accuracy: f64,
    /// Offline stable point of the adaptive accuracy curve (1pp tolerance).
    pub stable_point: Option<usize>,
}

/// Runs the uniform-vs-adaptive collection comparison on one dataset
/// (round-based collection, same crowd and seed for both arms).
pub fn adaptive_stopping(mut dataset: Dataset, seed: u64) -> AdaptiveStoppingRow {
    dataset.run_dve_default();
    let m = dataset.domain_set.len();
    let n = dataset.len();
    let pop = WorkerPopulation::generate(&PopulationConfig {
        m,
        size: 50,
        seed,
        ..Default::default()
    });
    let policy = StoppingPolicy {
        rule: StoppingRule::EntropyBelow(0.06),
        min_answers: 5,
        max_answers: 10,
    };

    let mut curve = Vec::new();
    let run = |adaptive: bool, curve: Option<&mut Vec<(usize, f64)>>| {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5AFE);
        let mut engine =
            IncrementalTi::new(dataset.tasks.clone(), WorkerRegistry::new(m, 0.7), 200);
        let mut curve_out = Vec::new();
        for round in 1..=policy.max_answers {
            for i in 0..n {
                let tid = TaskId::from(i);
                let count = engine.log().answer_count(tid);
                let stop = if adaptive {
                    policy.should_stop(engine.state(tid), count)
                } else {
                    count >= policy.max_answers
                };
                if stop {
                    continue;
                }
                let w = loop {
                    let w = WorkerId::from(rng.gen_range(0..pop.len()));
                    if !engine.log().has_answered(w, tid) {
                        break w;
                    }
                };
                let choice =
                    pop.worker(w)
                        .answer(&dataset.tasks[i], AnswerModel::DomainUniform, &mut rng);
                engine.submit(Answer::new(w, tid, choice)).unwrap();
            }
            engine.run_full();
            curve_out.push((round, accuracy_of(&engine.truths(), &dataset.tasks)));
        }
        if let Some(c) = curve {
            *c = curve_out.clone();
        }
        (engine.log().len(), curve_out.last().expect("rounds ran").1)
    };

    let (uniform_answers, uniform_accuracy) = run(false, None);
    let (adaptive_answers, adaptive_accuracy) = run(true, Some(&mut curve));
    AdaptiveStoppingRow {
        dataset: dataset.name,
        uniform_answers,
        uniform_accuracy,
        adaptive_answers,
        adaptive_accuracy,
        stable_point: docs_core::ti::stable_point_of_curve(&curve, 0.01),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlated_dve_reports_are_consistent() {
        let row = correlated_dve(docs_datasets::item(), 1.0);
        assert_eq!(row.dataset, "Item");
        for report in [&row.independent_multi, &row.reranked_multi] {
            assert_eq!(report.tasks, 360);
            assert!(report.mean_js >= 0.0 && report.mean_js <= std::f64::consts::LN_2 + 1e-12);
            assert!((0.0..=1.0).contains(&report.mean_top2_recall));
            assert!((0.0..=1.0).contains(&report.mean_mode_f1));
        }
        // Coherence reranking must not wreck single-label detection.
        assert!(
            row.reranked_acc >= row.independent_acc - 0.02,
            "independent {} vs reranked {}",
            row.independent_acc,
            row.reranked_acc
        );
    }

    #[test]
    fn adaptive_stopping_spends_less() {
        let row = adaptive_stopping(docs_datasets::item(), 0xADA);
        assert!(row.adaptive_answers < row.uniform_answers);
        assert!(row.adaptive_accuracy > row.uniform_accuracy - 0.12);
        assert_eq!(row.uniform_answers, 3600); // 360 tasks × 10 answers
    }
}
