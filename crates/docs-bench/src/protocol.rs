//! The shared experiment protocol of Section 6.1: prepare a dataset (DVE),
//! simulate the answer collection (10 answers per task), select golden
//! tasks, and record every worker's golden-task performance for method
//! initialization.

use crate::population::dataset_population;
use docs_core::golden::select_golden_tasks;
use docs_core::ti::WorkerRegistry;
use docs_crowd::{AnswerModel, Platform, PlatformConfig, WorkerPopulation};
use docs_datasets::Dataset;
use docs_types::{AnswerLog, ChoiceIndex, TaskId, WorkerId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// A dataset made experiment-ready.
pub struct PreparedDataset {
    /// The dataset with DVE-filled domain vectors.
    pub dataset: Dataset,
    /// The simulated worker population behind the answers.
    pub population: WorkerPopulation,
    /// Collected answers: `answers_per_task` per task.
    pub log: AnswerLog,
    /// Selected golden tasks (Section 5.2).
    pub golden_ids: Vec<TaskId>,
    /// Every worker's answers on the golden tasks.
    pub golden_answers: HashMap<WorkerId, Vec<(TaskId, ChoiceIndex)>>,
}

/// Prepares a dataset per the Section 6.1 protocol.
pub fn prepare(
    mut dataset: Dataset,
    answers_per_task: usize,
    num_golden: usize,
    pop_size: usize,
    seed: u64,
) -> PreparedDataset {
    dataset.run_dve_default();
    let population = dataset_population(
        dataset.domain_set.len(),
        &dataset.focus_domains,
        pop_size,
        seed,
    );
    let platform = Platform::new(
        &dataset.tasks,
        vec![],
        &population,
        PlatformConfig {
            seed: seed ^ 0xABCDEF,
            ..Default::default()
        },
    );
    let log = platform.collect_uniform(answers_per_task.min(pop_size));
    let golden_ids = select_golden_tasks(&dataset.tasks, num_golden);

    // Every worker answers the golden HIT once (used for initialization
    // only; golden answers never enter the inference log).
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x601DE_u64);
    let golden_answers = population
        .workers()
        .iter()
        .map(|w| {
            let answers: Vec<(TaskId, ChoiceIndex)> = golden_ids
                .iter()
                .map(|&gid| {
                    let task = &dataset.tasks[gid.index()];
                    (gid, w.answer(task, AnswerModel::DomainUniform, &mut rng))
                })
                .collect();
            (w.id, answers)
        })
        .collect();

    PreparedDataset {
        dataset,
        population,
        log,
        golden_ids,
        golden_answers,
    }
}

impl PreparedDataset {
    /// DOCS worker registry initialized from golden answers (Section 5.2).
    pub fn docs_registry(&self) -> WorkerRegistry {
        let m = self.dataset.domain_set.len();
        let mut registry = WorkerRegistry::new(m, 0.7);
        for (&w, answers) in &self.golden_answers {
            registry.init_from_golden(
                w,
                answers,
                |tid| {
                    let t = &self.dataset.tasks[tid.index()];
                    (
                        t.domain_vector().clone(),
                        t.ground_truth.expect("golden truth"),
                    )
                },
                1.0,
            );
        }
        registry
    }

    /// Scalar golden initialization for the domain-blind competitors.
    pub fn scalar_init(&self) -> HashMap<WorkerId, f64> {
        docs_baselines::ti::golden_scalar_quality(&self.golden_answers, |tid| {
            self.dataset.tasks[tid.index()]
                .ground_truth
                .expect("golden truth")
        })
    }

    /// The log truncated to the first `cap` answers per task (Figure 4(c)).
    pub fn log_with_answer_cap(&self, cap: usize) -> AnswerLog {
        self.log.truncated_per_task(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_produces_complete_protocol_state() {
        let prepared = prepare(docs_datasets::item(), 5, 8, 30, 0xA1);
        assert_eq!(prepared.log.len(), 360 * 5);
        assert_eq!(prepared.golden_ids.len(), 8);
        assert_eq!(prepared.golden_answers.len(), 30);
        for answers in prepared.golden_answers.values() {
            assert_eq!(answers.len(), 8);
        }
        let registry = prepared.docs_registry();
        assert_eq!(registry.len(), 30);
        let init = prepared.scalar_init();
        assert_eq!(init.len(), 30);
        for q in init.values() {
            assert!((0.0..=1.0).contains(q));
        }
    }
}
