//! Model-mismatch robustness — an extension beyond the paper's evaluation.
//!
//! DOCS's answer model (Eq. 4) assumes wrong answers are uniform over the
//! `ℓ − 1` distractors. Real workers are not that tidy: some consistently
//! confuse specific pairs (the Dawid-Skene world), some answer at random
//! when tired. This experiment re-runs the Figure 5 comparison under the
//! `docs-crowd` mismatch answer models and reports how gracefully each
//! inference method degrades.

use crate::population::dataset_population;
use docs_baselines::ti::{DawidSkene, MajorityVote, TruthMethod};
use docs_core::ti::{TruthInference, WorkerRegistry};
use docs_crowd::accuracy_of;
use docs_crowd::{AnswerModel, Platform, PlatformConfig};
use docs_datasets::Dataset;

/// Accuracy of MV, DS, and DOCS under one answer model.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// Which answer model generated the crowd's answers.
    pub model: &'static str,
    /// Majority-vote accuracy.
    pub mv: f64,
    /// Dawid-Skene accuracy (its confusion matrix is the right model for
    /// `Confused` workers).
    pub ds: f64,
    /// DOCS TI accuracy.
    pub docs: f64,
}

/// Runs the sweep on a dataset: the assumed model, a confusion-biased crowd,
/// and a sloppy crowd.
pub fn run(mut dataset: Dataset, answers_per_task: usize, seed: u64) -> Vec<RobustnessRow> {
    dataset.run_dve_default();
    let m = dataset.domain_set.len();
    let population = dataset_population(m, &dataset.focus_domains, 50, seed);
    let models: [(&'static str, AnswerModel); 4] = [
        ("domain-uniform (assumed)", AnswerModel::DomainUniform),
        (
            "confused (biased distractor)",
            AnswerModel::Confused { bias: 0.8 },
        ),
        (
            "sloppy (20% random)",
            AnswerModel::Sloppy { carelessness: 0.2 },
        ),
        (
            "adversarial (10% collusion)",
            AnswerModel::Adversarial { malice: 0.10 },
        ),
    ];
    models
        .iter()
        .map(|&(name, model)| {
            let platform = Platform::new(
                &dataset.tasks,
                vec![],
                &population,
                PlatformConfig {
                    answer_model: model,
                    seed: seed ^ 0xB0B_u64 ^ name.len() as u64,
                    ..Default::default()
                },
            );
            let log = platform.collect_uniform(answers_per_task);
            let mv = accuracy_of(&MajorityVote.infer(&dataset.tasks, &log), &dataset.tasks);
            let ds = accuracy_of(
                &DawidSkene::default().infer(&dataset.tasks, &log),
                &dataset.tasks,
            );
            let registry = WorkerRegistry::new(m, 0.7);
            let docs_truths = TruthInference::default()
                .run(&dataset.tasks, &log, &registry)
                .truths;
            let docs = accuracy_of(&docs_truths, &dataset.tasks);
            RobustnessRow {
                model: name,
                mv,
                ds,
                docs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn docs_degrades_gracefully_under_mismatch() {
        let rows = run(docs_datasets::item(), 10, 0x0E);
        assert_eq!(rows.len(), 4);
        let assumed = &rows[0];
        for row in &rows {
            // No catastrophic collapse: every model keeps DOCS above chance
            // and competitive with MV.
            assert!(row.docs > 0.55, "{}: DOCS {}", row.model, row.docs);
            assert!(
                row.docs + 0.05 >= row.mv,
                "{}: DOCS {} vs MV {}",
                row.model,
                row.docs,
                row.mv
            );
        }
        // Honest mismatch (confused/sloppy) costs a bounded amount relative
        // to the assumed model. Collusion is allowed to cost more — on
        // binary tasks 10% coordinated flips push the domain-skewed Item
        // crowd's non-experts close to chance, so every method suffers —
        // but DOCS may not fall *behind* the model-free baseline (checked
        // above for every row).
        for row in &rows[1..3] {
            assert!(
                assumed.docs - row.docs < 0.25,
                "{} lost too much: {} vs {}",
                row.model,
                row.docs,
                assumed.docs
            );
        }
    }
}
