//! Regenerates every table and figure of the paper's evaluation and prints
//! the rows/series the paper reports.
//!
//! ```text
//! cargo run --release -p docs-bench --bin figures            # everything
//! cargo run --release -p docs-bench --bin figures -- fig5    # one figure
//! ```
//!
//! Accepted selectors: `table3 fig3 fig4a fig4b fig4c fig4d fig4e fig5 fig6
//! fig7a fig7b fig8 fig8c ext` (any subset, in any order; `ext` prints the
//! extension experiments — robustness, correlated DVE, adaptive stopping).

use docs_bench::{
    extensions, fig3, fig4, fig5, fig6, fig7, fig8, pct, population, protocol, robustness, table3,
};
use std::time::Duration;

fn wants(args: &[String], key: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a == key)
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.1}ms", d.as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = 0xD0C5_2016;

    // Shared prepared datasets (Section 6.1 protocol: 10 answers/task,
    // 20 golden tasks, 50 simulated workers).
    let prepare_all = || {
        docs_datasets::all_datasets()
            .into_iter()
            .map(|d| protocol::prepare(d, 10, 20, 50, seed))
            .collect::<Vec<_>>()
    };

    if wants(&args, "table3") {
        println!("== Table 3: DVE efficiency (Algorithm 1 vs Enumeration) ==");
        println!(
            "{:<8} {:<8} {:>14} {:>22}",
            "Dataset", "Top-c", "Alg. 1", "Enumeration"
        );
        // Cap enumeration work per task; exceeding it = the paper's "> 1 day".
        for row in table3::run(100_000) {
            println!(
                "{:<8} {:<8} {:>14} {:>22}",
                row.dataset,
                format!("top-{}", row.top_c),
                table3::format_duration(Some(row.algorithm1)),
                table3::format_duration(row.enumeration),
            );
        }
        println!();
    }

    if wants(&args, "fig3") {
        println!("== Figure 3: domain detection accuracy (IC=LDA, FC=TwitterLDA, DOCS=KB) ==");
        for panel in fig3::run_all(seed) {
            println!("-- {} --", panel.dataset);
            println!("{:<10} {:>8} {:>8} {:>8}", "Domain", "IC", "FC", "DOCS");
            for (j, name) in panel.domain_names.iter().enumerate() {
                println!(
                    "{:<10} {:>8} {:>8} {:>8}",
                    name,
                    pct(panel.ic[j]),
                    pct(panel.fc[j]),
                    pct(panel.docs[j])
                );
            }
            println!(
                "{:<10} {:>8} {:>8} {:>8}",
                "Overall",
                pct(panel.ic_overall),
                pct(panel.fc_overall),
                pct(panel.docs_overall)
            );
        }
        println!();
    }

    let needs_prepared = ["fig4a", "fig4b", "fig4c", "fig4d", "fig5", "fig6", "fig8"]
        .iter()
        .any(|k| wants(&args, k));
    let prepared = if needs_prepared {
        prepare_all()
    } else {
        Vec::new()
    };

    if wants(&args, "fig4a") {
        println!("== Figure 4(a): TI convergence (Δ per iteration) ==");
        for p in &prepared {
            let deltas = fig4::fig4a_convergence(p, 20);
            let series: Vec<String> = deltas.iter().map(|d| format!("{d:.4}")).collect();
            println!("{:<5} {}", p.dataset.name, series.join(" "));
        }
        println!();
    }

    if wants(&args, "fig4b") {
        println!("== Figure 4(b): accuracy vs #golden tasks ==");
        let budgets = [0usize, 5, 10, 15, 20, 30, 40];
        for p in &prepared {
            let sweep = fig4::fig4b_golden_sweep(p, &budgets);
            let series: Vec<String> = sweep
                .iter()
                .map(|(n, a)| format!("{n}:{}", pct(*a)))
                .collect();
            println!("{:<5} {}", p.dataset.name, series.join("  "));
        }
        println!();
    }

    if wants(&args, "fig4c") {
        println!("== Figure 4(c): accuracy vs #answers per task ==");
        let caps = [1usize, 2, 4, 6, 8, 10];
        for p in &prepared {
            let sweep = fig4::fig4c_answer_sweep(p, &caps);
            let series: Vec<String> = sweep
                .iter()
                .map(|(n, a)| format!("{n}:{}", pct(*a)))
                .collect();
            println!("{:<5} {}", p.dataset.name, series.join("  "));
        }
        println!();
    }

    if wants(&args, "fig4d") {
        println!("== Figure 4(d): worker quality deviation vs #answered tasks ==");
        let caps = [1usize, 20, 40, 60, 80, 100];
        for p in &prepared {
            let sweep = fig4::fig4d_quality_deviation(p, &caps);
            let series: Vec<String> = sweep.iter().map(|(n, d)| format!("{n}:{d:.3}")).collect();
            println!("{:<5} {}", p.dataset.name, series.join("  "));
        }
        println!();
    }

    if wants(&args, "fig4e") {
        println!("== Figure 4(e): TI scalability (m=20, 10 answers/task) ==");
        let ns = [2_000usize, 4_000, 6_000, 8_000, 10_000];
        let points = fig4::fig4e_scalability(&ns, &[10, 100, 500], seed);
        println!("{:<10} {:>10} {:>12}", "#tasks", "#workers", "TI time");
        for p in points {
            println!("{:<10} {:>10} {:>12}", p.n, p.workers, fmt_ms(p.time));
        }
        println!();
    }

    if wants(&args, "fig5") {
        println!("== Figure 5: truth inference comparison (+ GLAD/CRH extensions) ==");
        let mut header = format!("{:<5}", "");
        let mut first = true;
        for p in &prepared {
            let results = fig5::run(p);
            if first {
                for r in &results {
                    header.push_str(&format!(" {:>8}", r.method));
                }
                println!("{header}");
                first = false;
            }
            let mut acc_line = format!("{:<5}", p.dataset.name);
            let mut time_line = format!("{:<5}", "");
            for r in &results {
                acc_line.push_str(&format!(" {:>8}", pct(r.accuracy)));
                time_line.push_str(&format!(" {:>8}", fmt_ms(r.time)));
            }
            println!("{acc_line}   (accuracy)");
            println!("{time_line}   (time)");
        }
        println!();
    }

    if wants(&args, "fig6") {
        println!("== Figure 6: worker quality case study (Item) ==");
        let item = prepared
            .iter()
            .find(|p| p.dataset.name == "Item")
            .expect("Item prepared");
        println!("(a) #workers per true-quality bin (rows: domain; cols: bins 0.0-0.1 … 0.9-1.0)");
        for (name, bins) in fig6::fig6a_histogram(item) {
            let cells: Vec<String> = bins.iter().map(|b| format!("{b:>3}")).collect();
            println!("{:<8} {}", name, cells.join(" "));
        }
        println!("(b) calibration of the 3 most active workers (true→est per domain)");
        for (w, points) in fig6::fig6b_top_worker_calibration(item) {
            let cells: Vec<String> = points
                .iter()
                .map(|(tq, eq)| format!("{tq:.2}→{eq:.2}"))
                .collect();
            println!("{:<6} {}", w.to_string(), cells.join("  "));
        }
        let nba = fig6::fig6c_nba_calibration(item);
        println!(
            "(c) NBA-domain calibration over {} multi-HIT workers: mean |q̃−q| = {:.3}",
            nba.len(),
            fig6::calibration_error(&nba)
        );
        println!();
    }

    if wants(&args, "fig7a") {
        println!("== Figure 7(a): golden selection — approximation vs enumeration (m=10) ==");
        println!(
            "{:<6} {:>12} {:>14} {:>10}",
            "n'", "DOCS", "Enumeration", "gamma"
        );
        let points = fig7::fig7a(&[2, 4, 6, 8, 10, 12, 14, 16, 18, 20], seed);
        let mut gammas = Vec::new();
        for p in &points {
            println!(
                "{:<6} {:>12} {:>14} {:>9.4}%",
                p.n_prime,
                fmt_ms(p.approx_time),
                fmt_ms(p.enum_time),
                100.0 * p.gamma
            );
            gammas.push(p.gamma);
        }
        println!(
            "average gamma = {:.4}%",
            100.0 * gammas.iter().sum::<f64>() / gammas.len() as f64
        );
        println!();
    }

    if wants(&args, "fig7b") {
        println!("== Figure 7(b): golden selection scalability ==");
        println!("{:<8} {:<6} {:>12}", "n'", "m", "time");
        let ns = [1_000usize, 4_000, 7_000, 10_000];
        for p in fig7::fig7b(&ns, &[10, 20, 50], seed) {
            println!("{:<8} {:<6} {:>12}", p.n_prime, p.m, fmt_ms(p.time));
        }
        println!();
    }

    if wants(&args, "fig8") {
        println!("== Figure 8(a)(b): online task assignment comparison (+ Bandit extension) ==");
        let mut first = true;
        for p in &prepared {
            let outcomes = fig8::run_comparison(p, 10, seed);
            if first {
                let mut header = format!("{:<5}", "");
                for o in &outcomes {
                    header.push_str(&format!(" {:>9}", o.name));
                }
                println!("{header}");
                first = false;
            }
            let mut acc_line = format!("{:<5}", p.dataset.name);
            let mut time_line = format!("{:<5}", "");
            for o in &outcomes {
                acc_line.push_str(&format!(" {:>9}", pct(o.accuracy)));
                time_line.push_str(&format!(" {:>9}", fmt_ms(o.worst_assign_time)));
            }
            println!("{acc_line}   (accuracy)");
            println!("{time_line}   (worst assign)");
        }
        println!();
    }

    if wants(&args, "fig8c") {
        println!("== Figure 8(c): OTA scalability (m=20) ==");
        println!("{:<10} {:<6} {:>12}", "#tasks", "k", "assign time");
        let ns = [2_000usize, 4_000, 6_000, 8_000, 10_000];
        for p in fig8::fig8c(&ns, &[5, 10, 50], seed) {
            println!("{:<10} {:<6} {:>12}", p.n, p.k, fmt_ms(p.time));
        }
        println!();
    }

    if wants(&args, "ext") {
        println!("== Extension: robustness to answer-model mismatch (Item) ==");
        println!(
            "{:<30} {:>8} {:>8} {:>8}",
            "crowd model", "MV", "DS", "DOCS"
        );
        for row in robustness::run(docs_datasets::item(), 10, seed) {
            println!(
                "{:<30} {:>8} {:>8} {:>8}",
                row.model,
                pct(row.mv),
                pct(row.ds),
                pct(row.docs)
            );
        }
        println!();

        println!("== Extension: correlated DVE + multi-domain metrics (lambda=1) ==");
        println!(
            "{:<5} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "", "acc(ind)", "acc(rr)", "JS(ind)", "JS(rr)", "F1(ind)", "F1(rr)"
        );
        for d in docs_datasets::all_datasets() {
            let row = extensions::correlated_dve(d, 1.0);
            println!(
                "{:<5} {:>10} {:>10} {:>8.4} {:>8.4} {:>8.3} {:>8.3}",
                row.dataset,
                pct(row.independent_acc),
                pct(row.reranked_acc),
                row.independent_multi.mean_js,
                row.reranked_multi.mean_js,
                row.independent_multi.mean_mode_f1,
                row.reranked_multi.mean_mode_f1,
            );
        }
        println!();

        println!("== Extension: adaptive stopping vs uniform 10/task ==");
        println!(
            "{:<5} {:>14} {:>14} {:>14} {:>14} {:>12}",
            "", "uniform #ans", "uniform acc", "adaptive #ans", "adaptive acc", "stable pt"
        );
        for d in docs_datasets::all_datasets() {
            let row = extensions::adaptive_stopping(d, seed);
            println!(
                "{:<5} {:>14} {:>14} {:>14} {:>14} {:>12}",
                row.dataset,
                row.uniform_answers,
                pct(row.uniform_accuracy),
                row.adaptive_answers,
                pct(row.adaptive_accuracy),
                row.stable_point
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        println!();
    }

    // Keep the population module linked in (used by protocol internally).
    let _ = population::dataset_population(4, &[0], 1, 0);
}
