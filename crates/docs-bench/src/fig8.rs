//! Figure 8: online task assignment — the end-to-end comparison of
//! Baseline, AskIt!, IC, QASCA, D-Max, and DOCS (plus the UCB Bandit
//! extension from the related-work lineage \[41\]) and OTA scalability.

use crate::protocol::PreparedDataset;
use docs_baselines::ota::{AskIt, Bandit, DMax, DocsAssign, ICrowdAssign, Qasca, RandomBaseline};
use docs_core::ota::{Assigner, AssignerConfig};
use docs_core::ti::TaskState;
use docs_crowd::{AssignmentStrategy, ExperimentOutcome, Platform, PlatformConfig};
use docs_datasets::scalability_tasks;
use docs_types::DomainVector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// **Figure 8(a)(b)**: runs the Section 6.1 parallel protocol on a prepared
/// dataset — every method assigns `k = 3` tasks per worker arrival and
/// collects the same answer budget. Returns one outcome per method.
pub fn run_comparison(
    prepared: &PreparedDataset,
    answers_per_task_budget: usize,
    seed: u64,
) -> Vec<ExperimentOutcome> {
    let tasks = prepared.dataset.tasks.clone();
    let m = prepared.dataset.domain_set.len();
    let n = tasks.len();

    let mut baseline = RandomBaseline::new(tasks.clone(), seed);
    let mut askit = AskIt::new(tasks.clone());
    let mut icrowd = ICrowdAssign::new(tasks.clone(), m);
    let mut qasca = Qasca::new(tasks.clone());
    let mut dmax = DMax::new(tasks.clone(), m, 100);
    let mut bandit = Bandit::new(tasks.clone(), m, 100, 0.5);
    let mut docs = DocsAssign::new(tasks.clone(), m);

    let platform = Platform::new(
        &prepared.dataset.tasks,
        prepared.golden_ids.clone(),
        &prepared.population,
        PlatformConfig {
            k_per_hit: 3,
            answer_budget: answers_per_task_budget * n,
            seed,
            ..Default::default()
        },
    );
    let mut strategies: [&mut dyn AssignmentStrategy; 7] = [
        &mut baseline,
        &mut askit,
        &mut icrowd,
        &mut qasca,
        &mut dmax,
        &mut bandit,
        &mut docs,
    ];
    platform.run_parallel(&mut strategies)
}

/// One Figure 8(c) point.
#[derive(Debug, Clone)]
pub struct Fig8cPoint {
    /// Number of tasks `n`.
    pub n: usize,
    /// HIT size `k`.
    pub k: usize,
    /// Wall time of one DOCS assignment over all `n` tasks.
    pub time: Duration,
}

/// **Figure 8(c)**: OTA scalability — time of one assignment decision as a
/// function of `n` and `k` (m = 20, random task states, as in the paper's
/// simulation).
pub fn fig8c(ns: &[usize], ks: &[usize], seed: u64) -> Vec<Fig8cPoint> {
    let mut out = Vec::new();
    for &n in ns {
        let tasks = scalability_tasks(n, 20, seed);
        // Random current states: a few answers of random quality per task.
        let mut rng = SmallRng::seed_from_u64(seed ^ n as u64);
        let states: Vec<TaskState> = tasks
            .iter()
            .map(|t| {
                let mut st = TaskState::new(20, t.num_choices());
                let r = t.domain_vector();
                for _ in 0..rng.gen_range(0..5) {
                    let q: Vec<f64> = (0..20).map(|_| rng.gen_range(0.4..0.95)).collect();
                    st.apply_answer(r, &q, rng.gen_range(0..t.num_choices()));
                }
                st
            })
            .collect();
        let quality: Vec<f64> = (0..20).map(|_| rng.gen_range(0.4..0.95)).collect();
        for &k in ks {
            let assigner = Assigner::new(AssignerConfig {
                k,
                ..Default::default()
            });
            let t0 = Instant::now();
            let picks = assigner.assign(&quality, &tasks, &states, |_| false, |_| 0);
            let time = t0.elapsed();
            assert_eq!(picks.len(), k.min(n));
            out.push(Fig8cPoint { n, k, time });
        }
    }
    out
}

/// Convenience: one synthetic domain-vector builder used by bench targets.
pub fn uniform_r(m: usize) -> DomainVector {
    DomainVector::uniform(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::prepare;

    #[test]
    fn docs_wins_the_end_to_end_comparison() {
        // Small-but-real protocol run on Item with a reduced budget so the
        // test stays fast; the full budget run lives in the figures binary.
        let prepared = prepare(docs_datasets::item(), 10, 20, 40, 0x88);
        let outcomes = run_comparison(&prepared, 5, 0x88);
        assert_eq!(outcomes.len(), 7);
        let get = |name: &str| outcomes.iter().find(|o| o.name == name).unwrap();
        let docs = get("DOCS").accuracy;
        let baseline = get("Baseline").accuracy;
        assert!(
            docs >= baseline,
            "DOCS {docs} must beat random baseline {baseline}"
        );
        assert!(docs > 0.75, "DOCS end-to-end accuracy {docs}");
        // Same collected budget for every method.
        let sizes: Vec<usize> = outcomes.iter().map(|o| o.log.len()).collect();
        assert!(sizes.iter().all(|&s| s == sizes[0]), "{sizes:?}");
    }

    #[test]
    fn ota_time_linear_in_n_and_flat_in_k() {
        let points = fig8c(&[500, 2000], &[5, 50], 0x8C);
        let t = |n: usize, k: usize| points.iter().find(|p| p.n == n && p.k == k).unwrap().time;
        assert!(t(2000, 5) > t(500, 5) / 2, "should grow with n");
        // k barely matters (selection is linear).
        assert!(t(2000, 50) < t(2000, 5) * 10 + Duration::from_millis(1));
    }
}
