//! Figure 6: case studies of worker qualities on Item — the per-domain
//! quality histogram, the calibration of the most active workers, and the
//! NBA-domain calibration of all multi-HIT workers.

use crate::fig4::calibration_pairs;
use crate::protocol::PreparedDataset;
use docs_types::WorkerId;

/// Figure 6(a): per focus domain, the number of workers whose *true*
/// quality falls in each of 10 bins (`[i/10, (i+1)/10)`).
pub fn fig6a_histogram(prepared: &PreparedDataset) -> Vec<(&'static str, [usize; 10])> {
    prepared
        .dataset
        .focus_domains
        .iter()
        .zip(&prepared.dataset.focus_names)
        .map(|(&fd, &name)| {
            let mut bins = [0usize; 10];
            for w in prepared.population.workers() {
                let q = w.true_quality[fd];
                let bin = ((q * 10.0) as usize).min(9);
                bins[bin] += 1;
            }
            (name, bins)
        })
        .collect()
}

/// Figure 6(b): calibration points `(true q̃, estimated q)` for the three
/// workers with the most answers, one point per focus domain.
pub fn fig6b_top_worker_calibration(
    prepared: &PreparedDataset,
) -> Vec<(WorkerId, Vec<(f64, f64)>)> {
    // Rank workers by answer count.
    let mut activity: Vec<(WorkerId, usize)> = prepared
        .log
        .workers()
        .map(|w| (w, prepared.log.worker_answers(w).len()))
        .collect();
    activity.sort_by_key(|&(w, n)| (usize::MAX - n, w));
    let top: Vec<WorkerId> = activity.iter().take(3).map(|&(w, _)| w).collect();

    top.iter()
        .map(|&w| {
            let points: Vec<(f64, f64)> = prepared
                .dataset
                .focus_domains
                .iter()
                .map(|&fd| {
                    let pairs = calibration_pairs(prepared, fd, 0);
                    let (_, tq, eq) = pairs
                        .iter()
                        .find(|(pw, _, _)| *pw == w)
                        .copied()
                        .expect("active worker has calibration data");
                    (tq, eq)
                })
                .collect();
            (w, points)
        })
        .collect()
}

/// Figure 6(c): `(true q̃, estimated q)` in the first focus domain (NBA)
/// for every worker who answered more than one HIT (> 20 tasks).
pub fn fig6c_nba_calibration(prepared: &PreparedDataset) -> Vec<(f64, f64)> {
    let nba = prepared.dataset.focus_domains[0];
    calibration_pairs(prepared, nba, 21)
        .into_iter()
        .map(|(_, tq, eq)| (tq, eq))
        .collect()
}

/// Mean absolute calibration error of a point set — used to check the
/// paper's "points lie very close to the line Y = X" claim.
pub fn calibration_error(points: &[(f64, f64)]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().map(|(tq, eq)| (tq - eq).abs()).sum::<f64>() / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::prepare;

    #[test]
    fn histogram_covers_all_workers() {
        let prepared = prepare(docs_datasets::item(), 6, 10, 30, 0x66);
        let hist = fig6a_histogram(&prepared);
        assert_eq!(hist.len(), 4);
        for (name, bins) in &hist {
            assert_eq!(bins.iter().sum::<usize>(), 30, "domain {name}");
        }
    }

    #[test]
    fn top_workers_are_calibrated() {
        let prepared = prepare(docs_datasets::item(), 10, 20, 25, 0x67);
        let calib = fig6b_top_worker_calibration(&prepared);
        assert_eq!(calib.len(), 3);
        for (w, points) in &calib {
            assert_eq!(points.len(), 4);
            let err = calibration_error(points);
            assert!(err < 0.2, "worker {w} calibration error {err}");
        }
    }

    #[test]
    fn nba_calibration_tracks_truth() {
        let prepared = prepare(docs_datasets::item(), 10, 20, 25, 0x68);
        let points = fig6c_nba_calibration(&prepared);
        assert!(!points.is_empty());
        let err = calibration_error(&points);
        assert!(err < 0.22, "NBA calibration error {err}");
    }
}
