//! Figure 3: domain-detection accuracy of IC (LDA), FC (TwitterLDA), and
//! DOCS (KB-based DVE), per focus domain and overall.

use docs_datasets::Dataset;
use docs_topics::{Lda, LdaConfig, TwitterLda, TwitterLdaConfig};
use std::collections::HashMap;

/// Per-dataset Figure 3 panel.
#[derive(Debug, Clone)]
pub struct Fig3Panel {
    /// Dataset name.
    pub dataset: &'static str,
    /// Focus-domain display names (e.g. "NBA").
    pub domain_names: Vec<&'static str>,
    /// Per-domain accuracy per method: `ic[j]` is IC's accuracy on the
    /// `j`-th focus domain, etc.
    pub ic: Vec<f64>,
    pub fc: Vec<f64>,
    pub docs: Vec<f64>,
    /// Overall accuracy per method (Figure 3(e) bar).
    pub ic_overall: f64,
    pub fc_overall: f64,
    pub docs_overall: f64,
}

/// Maps each latent topic to the focus domain it most frequently carries
/// (the paper's manual latent→domain mapping, done by majority).
fn map_topics_to_domains(
    detected: &[usize],
    true_domains: &[usize],
    num_topics: usize,
) -> HashMap<usize, usize> {
    let mut votes: HashMap<(usize, usize), usize> = HashMap::new();
    for (&topic, &dom) in detected.iter().zip(true_domains) {
        *votes.entry((topic, dom)).or_default() += 1;
    }
    (0..num_topics)
        .map(|topic| {
            let best = votes
                .iter()
                .filter(|((t, _), _)| *t == topic)
                .max_by_key(|(_, &count)| count)
                .map(|((_, d), _)| *d)
                .unwrap_or(usize::MAX);
            (topic, best)
        })
        .collect()
}

fn per_domain_accuracy(
    predicted: &[usize],
    true_domains: &[usize],
    focus: &[usize],
) -> (Vec<f64>, f64) {
    let mut per = Vec::with_capacity(focus.len());
    for &fd in focus {
        let idx: Vec<usize> = true_domains
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == fd)
            .map(|(i, _)| i)
            .collect();
        let correct = idx.iter().filter(|&&i| predicted[i] == fd).count();
        per.push(if idx.is_empty() {
            0.0
        } else {
            correct as f64 / idx.len() as f64
        });
    }
    let overall = predicted
        .iter()
        .zip(true_domains)
        .filter(|(p, t)| p == t)
        .count() as f64
        / predicted.len() as f64;
    (per, overall)
}

/// Runs the Figure 3 comparison on one dataset. The latent-topic count is
/// set to the number of focus domains (`m′ = m″ = 4`), the handicap the
/// paper grants IC and FC.
pub fn run_dataset(mut dataset: Dataset, seed: u64) -> Fig3Panel {
    let texts = dataset.texts();
    let true_domains: Vec<usize> = dataset
        .tasks
        .iter()
        .map(|t| t.true_domain.expect("labeled"))
        .collect();
    let focus = dataset.focus_domains.clone();
    let t = focus.len();

    // IC: LDA topics → dominant topic per task → majority-mapped domain.
    let lda = Lda::new(LdaConfig {
        num_topics: t,
        seed,
        ..Default::default()
    })
    .fit_texts_best_of(&texts, 3);
    let ic_topics: Vec<usize> = (0..texts.len()).map(|d| lda.dominant_topic(d)).collect();
    let ic_map = map_topics_to_domains(&ic_topics, &true_domains, t);
    let ic_pred: Vec<usize> = ic_topics.iter().map(|z| ic_map[z]).collect();

    // FC: TwitterLDA topic per task, same mapping.
    let tlda = TwitterLda::new(TwitterLdaConfig {
        num_topics: t,
        seed: seed ^ 0x7777,
        ..Default::default()
    })
    .fit_texts_best_of(&texts, 3);
    let fc_topics: Vec<usize> = (0..texts.len()).map(|d| tlda.dominant_topic(d)).collect();
    let fc_map = map_topics_to_domains(&fc_topics, &true_domains, t);
    let fc_pred: Vec<usize> = fc_topics.iter().map(|z| fc_map[z]).collect();

    // DOCS: DVE dominant domain over the full 26-domain set.
    dataset.run_dve_default();
    let docs_pred: Vec<usize> = dataset
        .tasks
        .iter()
        .map(|t| t.domain_vector.as_ref().expect("DVE ran").dominant_domain())
        .collect();

    let (ic, ic_overall) = per_domain_accuracy(&ic_pred, &true_domains, &focus);
    let (fc, fc_overall) = per_domain_accuracy(&fc_pred, &true_domains, &focus);
    let (docs, docs_overall) = per_domain_accuracy(&docs_pred, &true_domains, &focus);

    Fig3Panel {
        dataset: dataset.name,
        domain_names: dataset.focus_names.clone(),
        ic,
        fc,
        docs,
        ic_overall,
        fc_overall,
        docs_overall,
    }
}

/// Runs all four panels (a–d) plus the overall bars (e).
pub fn run_all(seed: u64) -> Vec<Fig3Panel> {
    docs_datasets::all_datasets()
        .into_iter()
        .map(|d| run_dataset(d, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn docs_wins_on_heterogeneous_4d() {
        let panel = run_dataset(docs_datasets::four_domain(), 0xF16);
        // The paper's headline: DOCS > 95%, topic models substantially
        // lower on 4D because of cross-domain template sharing.
        assert!(panel.docs_overall > 0.85, "DOCS {}", panel.docs_overall);
        assert!(
            panel.docs_overall > panel.ic_overall,
            "DOCS {} vs IC {}",
            panel.docs_overall,
            panel.ic_overall
        );
        assert!(
            panel.docs_overall > panel.fc_overall,
            "DOCS {} vs FC {}",
            panel.docs_overall,
            panel.fc_overall
        );
    }

    #[test]
    fn all_methods_do_well_on_templated_item() {
        let panel = run_dataset(docs_datasets::item(), 0xF17);
        assert!(panel.docs_overall > 0.9, "DOCS {}", panel.docs_overall);
        // Item's per-domain templates make topic models competitive.
        assert!(panel.ic_overall > 0.8, "IC {}", panel.ic_overall);
        assert!(panel.fc_overall > 0.8, "FC {}", panel.fc_overall);
    }

    #[test]
    fn topic_mapping_is_majority_based() {
        let detected = [0, 0, 1, 1, 0];
        let truth = [7, 7, 9, 9, 9];
        let map = map_topics_to_domains(&detected, &truth, 2);
        assert_eq!(map[&0], 7);
        assert_eq!(map[&1], 9);
    }
}
