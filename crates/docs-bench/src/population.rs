//! Worker populations for the dataset experiments.
//!
//! The paper's AMT crowd has domain structure: Figure 6(a) shows most
//! workers strong on Auto and weak on Food, with experts spread unevenly.
//! This module builds 26-domain populations whose expertise concentrates on
//! a dataset's four focus domains with per-domain skew.

use docs_crowd::WorkerPopulation;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a worker population for a dataset with the given focus domains.
///
/// * A rotating share of workers are *experts* in exactly one focus domain
///   (quality 0.85–0.97 there).
/// * Every domain has a population-wide base level that differs per focus
///   domain (first focus domain easiest, last hardest — reproducing the
///   skew of Figure 6(a)).
/// * 10% are spammers (0.42–0.55 everywhere).
pub fn dataset_population(
    m: usize,
    focus_domains: &[usize],
    size: usize,
    seed: u64,
) -> WorkerPopulation {
    assert!(!focus_domains.is_empty());
    let mut rng = SmallRng::seed_from_u64(seed);
    let qualities: Vec<Vec<f64>> = (0..size)
        .map(|i| {
            let mut q: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..0.65)).collect();
            // Per-focus-domain base skew: later focus domains are harder.
            for (j, &fd) in focus_domains.iter().enumerate() {
                let base_lo = 0.62 - 0.05 * j as f64;
                q[fd] = rng.gen_range(base_lo..base_lo + 0.12);
            }
            if i % 10 == 9 {
                // Spammer.
                for slot in q.iter_mut() {
                    *slot = rng.gen_range(0.42..0.55);
                }
            } else if i % 2 == 0 {
                // Expert in one rotating focus domain.
                let fd = focus_domains[(i / 2) % focus_domains.len()];
                q[fd] = rng.gen_range(0.85..0.97);
            }
            q
        })
        .collect();
    WorkerPopulation::from_qualities(qualities)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_has_experts_in_every_focus_domain() {
        let focus = [23usize, 11, 3, 24];
        let pop = dataset_population(26, &focus, 40, 7);
        assert_eq!(pop.len(), 40);
        for &fd in &focus {
            assert!(
                pop.workers().iter().any(|w| w.true_quality[fd] >= 0.85),
                "no expert in focus domain {fd}"
            );
        }
    }

    #[test]
    fn population_is_deterministic() {
        let a = dataset_population(26, &[23, 11], 10, 3);
        let b = dataset_population(26, &[23, 11], 10, 3);
        for (x, y) in a.workers().iter().zip(b.workers()) {
            assert_eq!(x.true_quality, y.true_quality);
        }
    }
}
