//! Worker populations for the dataset experiments.
//!
//! The quality shape lives in [`docs_datasets::focus_population_qualities`]
//! (the paper's Figure 6(a) crowd: experts concentrated on the dataset's
//! four focus domains with per-domain skew, 10% spammers); this module
//! wraps it into the [`WorkerPopulation`] the figure benches drive.

use docs_crowd::WorkerPopulation;
use docs_datasets::focus_population_qualities;

/// Builds a worker population for a dataset with the given focus domains.
pub fn dataset_population(
    m: usize,
    focus_domains: &[usize],
    size: usize,
    seed: u64,
) -> WorkerPopulation {
    WorkerPopulation::from_qualities(focus_population_qualities(m, focus_domains, size, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_has_experts_in_every_focus_domain() {
        let focus = [23usize, 11, 3, 24];
        let pop = dataset_population(26, &focus, 40, 7);
        assert_eq!(pop.len(), 40);
        for &fd in &focus {
            assert!(
                pop.workers().iter().any(|w| w.true_quality[fd] >= 0.85),
                "no expert in focus domain {fd}"
            );
        }
    }

    #[test]
    fn population_is_deterministic() {
        let a = dataset_population(26, &[23, 11], 10, 3);
        let b = dataset_population(26, &[23, 11], 10, 3);
        for (x, y) in a.workers().iter().zip(b.workers()) {
            assert_eq!(x.true_quality, y.true_quality);
        }
    }
}
