//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 6) on the simulated substrate.
//!
//! Each module computes one table/figure's data series and returns plain
//! structs; the `figures` binary prints them in the paper's row/series
//! format, and the criterion benches in `benches/` measure the timing
//! claims. The per-experiment index lives in `DESIGN.md`; measured-vs-paper
//! notes live in `EXPERIMENTS.md`.

pub mod extensions;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod population;
pub mod protocol;
pub mod robustness;
pub mod table3;

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}
