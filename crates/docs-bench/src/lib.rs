//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 6) on the simulated substrate.
//!
//! Each module computes one table/figure's data series and returns plain
//! structs; the `figures` binary prints them in the paper's row/series
//! format, and the criterion benches in `benches/` measure the timing
//! claims. The per-experiment index lives in `DESIGN.md`; measured-vs-paper
//! notes live in `EXPERIMENTS.md`.

pub mod extensions;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod hist;
pub mod population;
pub mod protocol;
pub mod robustness;
pub mod table3;

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Merges headline bench numbers into a `BENCH_<name>.json` file at the
/// workspace root (read–merge–sort–write, creating the file if absent), so
/// every bench tracks its perf trajectory from PR to PR in one flat
/// `{key: number}` document. Shared by the `ota_index`, `durability`, and
/// `service_pipeline` benches.
pub fn merge_bench_json(file_name: &str, updates: &[(String, f64)]) {
    // Anchor at the workspace root whatever cargo set as the bench CWD.
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file_name);
    let mut map: std::collections::HashMap<String, f64> = std::fs::read(&path)
        .ok()
        .and_then(|bytes| serde_json::from_slice(&bytes).ok())
        .unwrap_or_default();
    for (key, value) in updates {
        map.insert(key.clone(), *value);
    }
    let mut entries: Vec<(String, f64)> = map.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let body: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    std::fs::write(&path, format!("{{\n{}\n}}\n", body.join(",\n"))).expect("write bench json");
    println!("bench numbers merged into {}", path.display());
}
