//! Property-based tests (proptest) pinning the histogram contract the
//! rest of the stack leans on: merging per-thread recorders is lossless,
//! and any quantile is within one sub-bucket (1/SUBS = 1/16 relative
//! error) of the exact order statistic.

use docs_obs::hist::{AtomicHistogram, LatencyHistogram, SUBS};
use proptest::prelude::*;

/// Strategy: latency samples spanning nanoseconds to seconds — the range
/// the service actually records (hot-path ops through fence windows).
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..2_000_000_000, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every quantile lands on a bucket floor at or below the exact order
    /// statistic, and within one sub-bucket of it: the 1/16 relative
    /// error bound ARCHITECTURE.md promises for p50/p99/p999.
    #[test]
    fn quantiles_are_within_one_sub_bucket_of_exact(samples in arb_samples()) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record_ns(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5f64, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            prop_assert!(got <= exact, "q={q}: floor {got} above exact {exact}");
            prop_assert!(
                got >= exact * (1.0 - 1.0 / SUBS as f64),
                "q={q}: {got} under-reports exact {exact} by more than 1/{SUBS}"
            );
        }
        prop_assert_eq!(h.max_ns(), *sorted.last().unwrap(), "max is exact");
    }

    /// Merging per-thread histograms equals recording every sample into
    /// one — count, sum, max, and every quantile. This is what lets the
    /// open-loop harness keep one recorder per load thread and merge at
    /// the end without distorting the tail.
    #[test]
    fn merge_is_lossless(
        a_samples in arb_samples(),
        b_samples in arb_samples(),
    ) {
        let (mut a, mut b, mut all) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for &s in &a_samples {
            a.record_ns(s);
            all.record_ns(s);
        }
        for &s in &b_samples {
            b.record_ns(s);
            all.record_ns(s);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert_eq!(a.sum_ns(), all.sum_ns());
        prop_assert_eq!(a.max_ns(), all.max_ns());
        for q in [0.1f64, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(a.quantile(q), all.quantile(q), "q={}", q);
        }
    }

    /// The atomic (hot-path) recorder and the single-threaded one share
    /// one bucket geometry: identical samples produce identical
    /// snapshots, so service quantiles and harness quantiles cannot
    /// drift.
    #[test]
    fn atomic_snapshot_matches_plain_recorder(samples in arb_samples()) {
        let atomic = AtomicHistogram::new();
        let mut plain = LatencyHistogram::new();
        for &s in &samples {
            atomic.record_ns(s);
            plain.record_ns(s);
        }
        let snap = atomic.snapshot();
        prop_assert_eq!(snap.count(), plain.count());
        prop_assert_eq!(snap.max_ns(), plain.max_ns());
        for q in [0.5f64, 0.99, 0.999] {
            prop_assert_eq!(snap.quantile(q), plain.quantile(q), "q={}", q);
        }
    }
}
