//! Log-bucketed latency histograms: a single-threaded recorder for
//! per-thread harness bookkeeping and a lock-free atomic-bucket recorder
//! for the service hot path.
//!
//! Both share one bucket geometry, the classic HDR shape: values land in
//! power-of-two octaves, each octave split into 2^[`SUB_BITS`] = 16 linear
//! sub-buckets, so recording is a handful of bit operations, memory is a
//! fixed ~8 KiB of counters, and any quantile is reported with bounded
//! **relative** error (a bucket spans at most 1/16 ≈ 6.25% of its value)
//! across the full `u64` nanosecond range — equally sharp at 3 µs and at
//! 3 s, which is exactly what a p999 over a heavy-tailed
//! assignment-latency distribution needs.
//!
//! [`LatencyHistogram`] is deliberately single-threaded; a load harness
//! keeps one per generator thread and [`LatencyHistogram::merge`]s them at
//! the end. [`AtomicHistogram`] is the shared form: every bucket is an
//! `AtomicU64` bumped with one relaxed `fetch_add`, so shard threads and
//! client handles record into the same histogram without a lock — the
//! `record ≤ ~20 ns` budget the service metrics hold it to
//! (`BENCH_obs.json`, `hist_record_ns`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear buckets.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (values below this are exact).
pub const SUBS: usize = 1 << SUB_BITS;
/// Octaves above the linear region: values with a most-significant bit in
/// `SUB_BITS..64` each get one octave of [`SUBS`] buckets; values below
/// `2^SUB_BITS` are exact (one bucket per nanosecond).
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Returns the bucket index of a nanosecond value. Zero shares the first
/// bucket with 1 ns — the difference is far below timer resolution.
#[inline]
fn bucket_of(ns: u64) -> usize {
    let v = ns.max(1);
    let msb = 63 - v.leading_zeros();
    if msb < SUB_BITS {
        return v as usize;
    }
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) - SUBS;
    SUBS + octave * SUBS + sub
}

/// The smallest nanosecond value a bucket holds (its reported quantile
/// value, which keeps quantiles conservative-from-below and exact for the
/// sub-16 ns linear region).
#[inline]
fn bucket_floor(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let octave = ((index - SUBS) / SUBS) as u32;
    let sub = ((index - SUBS) % SUBS) as u64;
    (SUBS as u64 + sub) << octave
}

/// Fixed-footprint log-bucketed histogram of nanosecond latencies.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency sample in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram's samples into this one (used to combine
    /// per-thread histograms after a run).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value (tracked outside the buckets).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Exact sum of all recorded values, in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.total as f64
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds: the floor of the
    /// bucket holding the ⌈q·n⌉-th smallest sample, so the true value is
    /// within one sub-bucket (≤ 6.25%) above the reported one. `q = 1.0`
    /// returns the exact maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max_ns;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_floor(index);
            }
        }
        self.max_ns
    }

    /// The `q`-quantile in (fractional) milliseconds — the unit the bench
    /// JSON and gate work in.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1e6
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50_ns", &self.quantile(0.50))
            .field("p99_ns", &self.quantile(0.99))
            .field("p999_ns", &self.quantile(0.999))
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

/// Lock-free shared histogram over the same bucket geometry: per-bucket
/// `AtomicU64`s bumped with relaxed `fetch_add`, so any number of threads
/// record concurrently without coordination. Reads ([`AtomicHistogram::
/// snapshot`]) are racy-by-design across buckets — a snapshot taken while
/// writers run may be off by the handful of samples in flight, which is
/// exactly the tolerance a monitoring read has.
pub struct AtomicHistogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    total: AtomicU64,
    /// Sum in nanoseconds. `u64` (not the single-threaded recorder's
    /// `u128`, which has no atomic): wraps after ~584 years of summed
    /// latency, far beyond any process lifetime.
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            // `AtomicU64` is not Copy; build the boxed array through a Vec.
            counts: (0..BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice()
                .try_into()
                .expect("BUCKETS-sized boxed slice"),
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency sample in nanoseconds: one bucket `fetch_add`,
    /// two counter `fetch_add`s, and a `fetch_max`, all relaxed — the
    /// whole hot path is wait-free and takes no lock.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.counts[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// A point-in-time copy as a single-threaded [`LatencyHistogram`] —
    /// the read side: quantiles, merges, and rendering all happen on the
    /// copy, never on the hot-path atomics.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        let mut total = 0u64;
        for (index, bucket) in self.counts.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            out.counts[index] = n;
            total += n;
        }
        // Derive `total` from the buckets actually copied, so the snapshot
        // is internally consistent even when writers raced the read; the
        // sum/max gauges are monitoring values and may trail by the
        // samples in flight.
        out.total = total;
        out.sum_ns = self.sum_ns.load(Ordering::Relaxed) as u128;
        out.max_ns = self.max_ns.load(Ordering::Relaxed);
        out
    }

    /// The `q`-quantile in nanoseconds, via a snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range_in_order() {
        // Floors are non-decreasing, every floor maps back to its own
        // bucket, and bucketing is monotone across octave boundaries.
        let mut last = 0;
        for index in 0..BUCKETS {
            let floor = bucket_floor(index);
            assert!(floor >= last, "floor regressed at bucket {index}");
            assert_eq!(bucket_of(floor.max(1)), index.max(1), "floor {floor}");
            last = floor;
        }
        for probe in [1u64, 15, 16, 17, 255, 256, 1 << 20, u64::MAX] {
            assert!(bucket_floor(bucket_of(probe)) <= probe);
        }
    }

    #[test]
    fn small_values_are_exact_and_quantiles_walk_the_ranks() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=10u64 {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 5, "values below 16 ns land exactly");
        assert_eq!(h.quantile(0.1), 1);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.max_ns(), 10);
        assert!((h.mean_ns() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_relative_error_is_bounded_by_one_sub_bucket() {
        let mut h = LatencyHistogram::new();
        // A wide deterministic spread: 1 µs .. 1 s in geometric steps.
        let mut values = Vec::new();
        let mut v = 1_000u64;
        while v < 1_000_000_000 {
            values.push(v);
            v += v / 7 + 1;
        }
        for &v in &values {
            h.record_ns(v);
        }
        values.sort_unstable();
        for &(q, _) in &[(0.5, ()), (0.9, ()), (0.99, ()), (0.999, ())] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            assert!(got <= exact, "quantile must report the bucket floor");
            assert!(
                got >= exact * (1.0 - 1.0 / SUBS as f64),
                "q={q}: {got} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let (mut a, mut b, mut all) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for i in 0..1000u64 {
            let ns = i * 7919 + 13;
            if i % 2 == 0 {
                a.record_ns(ns);
            } else {
                b.record_ns(ns);
            }
            all.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max_ns(), all.max_ns());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn atomic_histogram_matches_the_single_threaded_recorder() {
        let atomic = AtomicHistogram::new();
        let mut plain = LatencyHistogram::new();
        for i in 0..10_000u64 {
            let ns = i * 104_729 % 50_000_000;
            atomic.record_ns(ns);
            plain.record_ns(ns);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.max_ns(), plain.max_ns());
        assert_eq!(snap.sum_ns(), plain.sum_ns());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(snap.quantile(q), plain.quantile(q), "q={q}");
        }
    }

    #[test]
    fn concurrent_atomic_recording_loses_no_sample() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns((t * 10_000 + i) % 1_000_000 + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 80_000);
        assert!(snap.max_ns() <= 1_000_000);
        assert!(snap.quantile(0.5) > 0);
    }
}
