//! Request tracing: typed spans on sampled requests, collected into a
//! fixed-size flight recorder.
//!
//! A [`TraceContext`] rides the correlation-id envelope of a sampled
//! request. Each layer that touches the request closes a [`Span`] on it —
//! client submit, router hop, shard queue wait, validate/apply, flush
//! wait, replication ship — and when the completion is released the
//! finished [`Trace`] lands in the service's [`FlightRecorder`], a
//! bounded ring that keeps the most recent traces and can be harvested as
//! structured JSON at any time.
//!
//! Span timing is *contiguous by construction*: the context keeps one
//! `mark` instant, and every span covers `[previous mark, now]`. That
//! makes the span durations of one request sum to its end-to-end latency
//! (within the gaps a layer deliberately leaves unattributed), which is
//! the property `BENCH_obs.json` asserts: queue-wait + apply + flush-wait
//! + ship within 10% of the measured submit→completion time.

use docs_types::TraceId;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::Instant;

/// Where a request spent a slice of its life. One variant per pipeline
/// stage; the order here is the canonical pipeline order used by docs and
/// rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Client-side work before the envelope entered the ingress queue
    /// (encode, correlation allocation, channel send).
    ClientSubmit,
    /// A routing hop: the router consulted its map, or absorbed a
    /// `WrongNode` redirect and retried on the new owner.
    RouterHop,
    /// Sitting in the shard's bounded ingress queue before the shard
    /// thread picked the envelope up.
    QueueWait,
    /// Deterministic validate + event apply on the shard thread,
    /// including the WAL append (but not the batch fdatasync).
    Apply,
    /// Completion withheld while the adaptive group-commit batch waited
    /// for its fdatasync (the ack⇒durable deferral).
    FlushWait,
    /// Handing the durable events to the replication hub for fan-out.
    Ship,
}

impl SpanKind {
    /// All kinds in pipeline order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::ClientSubmit,
        SpanKind::RouterHop,
        SpanKind::QueueWait,
        SpanKind::Apply,
        SpanKind::FlushWait,
        SpanKind::Ship,
    ];

    /// Stable snake_case label used in JSON and the exposition.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::ClientSubmit => "client_submit",
            SpanKind::RouterHop => "router_hop",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Apply => "apply",
            SpanKind::FlushWait => "flush_wait",
            SpanKind::Ship => "ship",
        }
    }
}

/// One closed span: a stage of the pipeline with its offset from the
/// trace origin and its duration, both in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    pub kind: SpanKind,
    /// Start of the span, as nanoseconds since the trace origin.
    pub start_ns: u64,
    /// Duration of the span in nanoseconds.
    pub dur_ns: u64,
}

/// A live trace riding one request envelope.
///
/// Created at submit time for sampled requests, carried through the
/// pipeline (boxed, so unsampled envelopes pay one null-pointer check),
/// and finished into a [`Trace`] when the completion is released.
#[derive(Debug, Clone)]
pub struct TraceContext {
    id: TraceId,
    origin: Instant,
    mark: Instant,
    spans: Vec<Span>,
}

impl TraceContext {
    /// Starts a trace now. `id` comes from the service's trace counter.
    pub fn start(id: TraceId) -> Self {
        let now = Instant::now();
        TraceContext {
            id,
            origin: now,
            mark: now,
            spans: Vec::with_capacity(SpanKind::ALL.len()),
        }
    }

    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Closes a span covering everything since the previous mark (or the
    /// origin) and advances the mark to now. Layers call this at each
    /// hand-off point, which keeps spans contiguous.
    pub fn span(&mut self, kind: SpanKind) {
        let now = Instant::now();
        self.spans.push(Span {
            kind,
            start_ns: dur_ns(self.origin, self.mark),
            dur_ns: dur_ns(self.mark, now),
        });
        self.mark = now;
    }

    /// Moves the mark to now *without* closing a span: the elapsed slice
    /// is deliberately left unattributed (e.g. time between batches that
    /// belongs to no single request).
    pub fn skip(&mut self) {
        self.mark = Instant::now();
    }

    /// Finishes the trace: total latency is origin→now, spans as closed.
    pub fn finish(self) -> Trace {
        let total_ns = dur_ns(self.origin, Instant::now());
        Trace {
            id: self.id,
            total_ns,
            spans: self.spans,
        }
    }
}

#[inline]
fn dur_ns(from: Instant, to: Instant) -> u64 {
    to.duration_since(from).as_nanos().min(u64::MAX as u128) as u64
}

/// One finished request trace, as stored in the flight recorder.
#[derive(Debug, Clone)]
pub struct Trace {
    pub id: TraceId,
    /// End-to-end latency (trace origin → finish) in nanoseconds.
    pub total_ns: u64,
    pub spans: Vec<Span>,
}

impl Trace {
    /// Duration of the first span of `kind`, if the trace has one.
    pub fn span_ns(&self, kind: SpanKind) -> Option<u64> {
        self.spans.iter().find(|s| s.kind == kind).map(|s| s.dur_ns)
    }

    /// Sum of all span durations — compared against `total_ns` to check
    /// the trace accounts for (nearly) all of the request's latency.
    pub fn spans_sum_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.dur_ns).sum()
    }

    /// Renders the trace as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 64);
        out.push_str(&format!(
            "{{\"trace_id\":{},\"total_ns\":{},\"spans\":[",
            self.id.0, self.total_ns
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                s.kind.name(),
                s.start_ns,
                s.dur_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Default flight-recorder capacity (most recent traces kept).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Bounded ring of the most recent finished traces.
///
/// Writes happen off the hot path — only *sampled* requests reach
/// [`FlightRecorder::record`], and even those touch the mutex once per
/// request at completion release, not per span. Harvesting clones the
/// ring, so readers never stall a shard thread.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<Trace>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder keeping the `capacity` most recent traces.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
        }
    }

    /// A recorder with [`DEFAULT_FLIGHT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// Stores a finished trace, evicting the oldest at capacity.
    pub fn record(&self, trace: Trace) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the recorder holds no traces.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Copies out all held traces, oldest first.
    pub fn snapshot(&self) -> Vec<Trace> {
        self.ring.lock().iter().cloned().collect()
    }

    /// The most recent trace, if any.
    pub fn latest(&self) -> Option<Trace> {
        self.ring.lock().back().cloned()
    }

    /// Renders every held trace as a JSON array.
    pub fn to_json(&self) -> String {
        let traces = self.snapshot();
        let mut out = String::from("[");
        for (i, t) in traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push(']');
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_are_contiguous_and_sum_to_total() {
        let mut ctx = TraceContext::start(TraceId(7));
        std::thread::sleep(Duration::from_millis(2));
        ctx.span(SpanKind::QueueWait);
        std::thread::sleep(Duration::from_millis(2));
        ctx.span(SpanKind::Apply);
        let trace = ctx.finish();
        assert_eq!(trace.id, TraceId(7));
        assert_eq!(trace.spans.len(), 2);
        // Each span starts where the previous ended.
        assert_eq!(trace.spans[0].start_ns, 0);
        assert_eq!(
            trace.spans[1].start_ns,
            trace.spans[0].start_ns + trace.spans[0].dur_ns
        );
        // Spans cover the whole trace up to the finish call itself.
        assert!(trace.spans_sum_ns() <= trace.total_ns);
        assert!(trace.spans_sum_ns() >= trace.total_ns / 2);
        assert!(trace.span_ns(SpanKind::Apply).unwrap() >= 1_000_000);
    }

    #[test]
    fn skip_leaves_a_slice_unattributed() {
        let mut ctx = TraceContext::start(TraceId(1));
        std::thread::sleep(Duration::from_millis(2));
        ctx.skip();
        ctx.span(SpanKind::Apply);
        let trace = ctx.finish();
        // The skipped 2 ms is in total but not in any span.
        assert!(trace.total_ns >= 2_000_000);
        assert!(trace.spans_sum_ns() < 2_000_000);
    }

    #[test]
    fn recorder_is_a_bounded_ring() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            rec.record(TraceContext::start(TraceId(i)).finish());
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 3);
        let ids: Vec<u64> = snap.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest traces evicted first");
        assert_eq!(rec.latest().unwrap().id, TraceId(4));
    }

    #[test]
    fn json_rendering_names_every_span() {
        let mut ctx = TraceContext::start(TraceId(9));
        for kind in SpanKind::ALL {
            ctx.span(kind);
        }
        let json = ctx.finish().to_json();
        assert!(json.starts_with("{\"trace_id\":9,"));
        for kind in SpanKind::ALL {
            assert!(json.contains(kind.name()), "missing {}", kind.name());
        }
    }
}
