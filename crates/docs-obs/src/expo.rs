//! Metric exposition: a small builder that renders one coherent snapshot
//! of every counter, gauge, and histogram as Prometheus text format and
//! as a JSON object, plus a strict-enough parser used by the CI smoke to
//! prove the text output is well-formed.
//!
//! The builder is deliberately dumb: callers register *families* (name +
//! help + kind) and append *samples* (label pairs + value). `ServiceMetrics`
//! walks its own counters into a builder; nothing here knows about shards
//! or campaigns, so the format can be tested in isolation.

use crate::journal::escape_json;
use std::fmt::Write as _;

/// Prometheus metric kinds the exposition emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    /// Rendered as pre-computed quantile samples (`{quantile="0.99"}`),
    /// i.e. a Prometheus *summary*, which matches a log-bucketed
    /// histogram snapshot better than cumulative `_bucket` series.
    Summary,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Summary => "summary",
        }
    }
}

/// One sample: label pairs plus a value. Values render like Rust's `{}`
/// float formatting with integer shortening.
#[derive(Debug, Clone)]
struct Sample {
    labels: Vec<(String, String)>,
    value: f64,
}

#[derive(Debug, Clone)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<Sample>,
}

/// Builder for one exposition snapshot.
#[derive(Debug, Default)]
pub struct Exposition {
    families: Vec<Family>,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a metric family and returns a handle to append samples.
    /// Family names must be unique per exposition and match
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*` (asserted in debug builds).
    pub fn family(
        &mut self,
        name: impl Into<String>,
        help: impl Into<String>,
        kind: MetricKind,
    ) -> FamilyHandle<'_> {
        let name = name.into();
        debug_assert!(valid_metric_name(&name), "bad metric name {name:?}");
        debug_assert!(
            !self.families.iter().any(|f| f.name == name),
            "duplicate family {name:?}"
        );
        self.families.push(Family {
            name,
            help: help.into(),
            kind,
            samples: Vec::new(),
        });
        FamilyHandle {
            family: self.families.last_mut().expect("just pushed"),
        }
    }

    /// Shorthand: a single-sample family with no labels.
    pub fn scalar(&mut self, name: &str, help: &str, kind: MetricKind, value: f64) {
        self.family(name, help, kind).sample(&[], value);
    }

    /// Renders the Prometheus text format (`# HELP` / `# TYPE` headers,
    /// one `name{labels} value` line per sample).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(self.families.len() * 96);
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.name());
            for s in &f.samples {
                out.push_str(&f.name);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}=\"{}\"", k, escape_label(v));
                    }
                    out.push('}');
                }
                let _ = writeln!(out, " {}", render_value(s.value));
            }
        }
        out
    }

    /// Renders the same snapshot as one JSON object:
    /// `{"family":[{"labels":{...},"value":n},...],...}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (fi, f) in self.families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":[", f.name);
            for (si, s) in f.samples.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (li, (k, v)) in s.labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", k, escape_json(v));
                }
                let _ = write!(out, "}},\"value\":{}}}", render_value(s.value));
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Number of registered families.
    pub fn family_count(&self) -> usize {
        self.families.len()
    }
}

/// Appends samples to one registered family.
pub struct FamilyHandle<'a> {
    family: &'a mut Family,
}

impl FamilyHandle<'_> {
    /// Appends one sample with the given label pairs.
    pub fn sample(&mut self, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.family.samples.push(Sample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
        self
    }
}

fn render_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates Prometheus text exposition: every non-comment line must be
/// `name[{labels}] value`, every samples-bearing name must have been
/// declared by a preceding `# TYPE`, and values must parse as floats.
/// Returns the number of sample lines, or a description of the first
/// offending line. CI's `OBS_SMOKE` step runs the service exposition
/// through this.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut declared: Vec<&str> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_metric_name(name) {
                return err("bad metric name in TYPE");
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return err("unknown metric kind");
            }
            declared.push(name);
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        // Sample line: name[{labels}] value
        let (name_and_labels, value) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return err("sample line has no value"),
        };
        if value.parse::<f64>().is_err() {
            return err("value does not parse as a float");
        }
        let name = match name_and_labels.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return err("unterminated label set");
                }
                let body = &labels[..labels.len() - 1];
                for pair in split_label_pairs(body) {
                    let (k, v) = match pair.split_once('=') {
                        Some(kv) => kv,
                        None => return err("label pair without '='"),
                    };
                    if !valid_metric_name(k) {
                        return err("bad label name");
                    }
                    if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return err("label value not quoted");
                    }
                }
                name
            }
            None => name_and_labels,
        };
        if !valid_metric_name(name) {
            return err("bad metric name");
        }
        if !declared.contains(&name) {
            return err("sample for undeclared family (missing # TYPE)");
        }
        samples += 1;
    }
    Ok(samples)
}

/// Splits `k1="v1",k2="v2"` on commas outside quotes.
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut in_quotes, mut escaped) = (0usize, false, false);
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if start < body.len() {
        out.push(&body[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_help_type_and_labeled_samples() {
        let mut expo = Exposition::new();
        expo.scalar("docs_up", "Service liveness.", MetricKind::Gauge, 1.0);
        expo.family("docs_ops_total", "Operations by kind.", MetricKind::Counter)
            .sample(&[("kind", "submit"), ("shard", "0")], 42.0)
            .sample(&[("kind", "assign"), ("shard", "0")], 7.0);
        let text = expo.render_prometheus();
        assert!(text.contains("# HELP docs_up Service liveness."));
        assert!(text.contains("# TYPE docs_up gauge"));
        assert!(text.contains("docs_up 1\n"));
        assert!(text.contains("docs_ops_total{kind=\"submit\",shard=\"0\"} 42"));
        assert_eq!(validate_prometheus(&text), Ok(3));
    }

    #[test]
    fn json_snapshot_mirrors_the_samples() {
        let mut expo = Exposition::new();
        expo.family("docs_lag_ns", "Lag.", MetricKind::Summary)
            .sample(&[("quantile", "0.99")], 1500.0);
        let json = expo.to_json();
        assert_eq!(
            json,
            "{\"docs_lag_ns\":[{\"labels\":{\"quantile\":\"0.99\"},\"value\":1500}]}"
        );
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(
            validate_prometheus("docs_up 1").is_err(),
            "undeclared family"
        );
        assert!(
            validate_prometheus("# TYPE docs_up gauge\ndocs_up one").is_err(),
            "non-numeric value"
        );
        assert!(
            validate_prometheus("# TYPE docs_up gauge\ndocs_up{k=\"v\" 1").is_err(),
            "unterminated labels"
        );
        assert!(
            validate_prometheus("# TYPE 9bad gauge").is_err(),
            "bad family name"
        );
        assert_eq!(
            validate_prometheus("# HELP x y\n# TYPE x counter\nx{a=\"b,c\"} 2.5"),
            Ok(1),
            "commas inside quoted label values are fine"
        );
    }

    #[test]
    fn integer_values_render_without_fraction() {
        assert_eq!(render_value(42.0), "42");
        assert_eq!(render_value(0.25), "0.25");
    }
}
