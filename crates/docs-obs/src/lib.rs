//! Observability primitives for the DOCS service stack.
//!
//! The paper's headline figures are latency distributions (Figure 8(b) is
//! *worst-case* assignment time); operating the reproduction at
//! production scale needs the same distributions, live, at near-zero hot
//! path cost. This crate holds the pieces, free of any service policy so
//! every layer can depend on it:
//!
//! * [`hist`] — log-bucketed latency histograms: the single-threaded
//!   [`LatencyHistogram`] (bench harness bookkeeping) and the lock-free
//!   [`AtomicHistogram`] (shared hot-path recording, one relaxed
//!   `fetch_add` per sample), sharing one bucket geometry so service
//!   quantiles and harness quantiles can never drift.
//! * [`trace`] — sampled request tracing: a [`TraceContext`] rides a
//!   request's envelope and accumulates typed [`Span`]s (client submit →
//!   router hop → queue wait → apply → flush wait → ship); finished
//!   traces land in a bounded [`FlightRecorder`] harvestable as JSON.
//! * [`journal`] — the [`ControlJournal`]: timestamped, severity-tagged
//!   control-plane events (promotions, fences, migrations, map installs,
//!   flush failures, follower disconnects, dispatch timeouts).
//! * [`expo`] — [`Exposition`]: renders one coherent snapshot of every
//!   counter/gauge/histogram as Prometheus text (`render_prometheus`)
//!   and JSON, with [`validate_prometheus`] for smoke assertions.

pub mod expo;
pub mod hist;
pub mod journal;
pub mod trace;

pub use expo::{validate_prometheus, Exposition, MetricKind};
pub use hist::{AtomicHistogram, LatencyHistogram};
pub use journal::{ControlJournal, JournalEntry, JournalKind, Severity};
pub use trace::{FlightRecorder, Span, SpanKind, Trace, TraceContext};
