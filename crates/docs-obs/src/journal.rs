//! Control-plane journal: a bounded ring of timestamped, severity-tagged
//! events for everything that changes the *shape* of the service — role
//! promotions, campaign fences, migrations, map installs — plus the rare
//! bad news (flush failures, follower disconnects, dispatch timeouts)
//! that previously went to `eprintln!` and vanished.
//!
//! The journal is the operator's answer to "what happened around 12:04?":
//! data-plane volume goes to histograms and counters, control-plane
//! *events* go here, each with a wall-clock timestamp (quantiles need
//! monotonic time; post-incident forensics need wall time), a severity,
//! a typed kind, and a free-form detail string. A bounded ring keeps the
//! most recent entries; a monotonically increasing sequence number makes
//! eviction visible to harvesters.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::{SystemTime, UNIX_EPOCH};

/// How loudly an entry should be treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected control-plane activity (promotion, map install, ...).
    Info,
    /// Degraded but self-healing (dispatch timeout, follower cut, ...).
    Warn,
    /// Something was lost or refused that should not have been.
    Error,
}

impl Severity {
    /// Stable lowercase label for JSON and text rendering.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// What happened. One variant per control-plane event class the service
/// emits; the set mirrors the counters in `RoutingStats` and friends so
/// every counted event class can also be journaled with its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JournalKind {
    /// A node changed replica role (follower → primary).
    Promotion,
    /// A campaign's write path was fenced (migration hand-off).
    Fence,
    /// A migration adopted a campaign on its destination node.
    MigrationAdopted,
    /// A new cluster map epoch was installed on a node.
    MapInstall,
    /// A WAL flush (write or fdatasync) failed.
    FlushFailure,
    /// A snapshot cycle failed.
    SnapshotFailure,
    /// A follower was cut from the replication stream for lagging.
    FollowerDisconnect,
    /// A pushed task lease expired and the task was re-enqueued.
    DispatchTimeout,
    /// A submission was refused because this node does not own the
    /// campaign (the `WrongNode` redirect).
    WrongNodeRejection,
}

impl JournalKind {
    /// Every kind, for exposition rendering.
    pub const ALL: [JournalKind; 9] = [
        JournalKind::Promotion,
        JournalKind::Fence,
        JournalKind::MigrationAdopted,
        JournalKind::MapInstall,
        JournalKind::FlushFailure,
        JournalKind::SnapshotFailure,
        JournalKind::FollowerDisconnect,
        JournalKind::DispatchTimeout,
        JournalKind::WrongNodeRejection,
    ];

    /// Stable snake_case label for JSON and the exposition.
    pub fn name(self) -> &'static str {
        match self {
            JournalKind::Promotion => "promotion",
            JournalKind::Fence => "fence",
            JournalKind::MigrationAdopted => "migration_adopted",
            JournalKind::MapInstall => "map_install",
            JournalKind::FlushFailure => "flush_failure",
            JournalKind::SnapshotFailure => "snapshot_failure",
            JournalKind::FollowerDisconnect => "follower_disconnect",
            JournalKind::DispatchTimeout => "dispatch_timeout",
            JournalKind::WrongNodeRejection => "wrong_node_rejection",
        }
    }
}

/// One journaled control-plane event.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Monotonically increasing per-journal sequence number. Gaps at the
    /// front of a snapshot mean older entries were evicted.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    pub severity: Severity,
    pub kind: JournalKind,
    /// Free-form context ("campaign c3 fenced at watermark 8812", ...).
    pub detail: String,
}

/// Default journal capacity (most recent entries kept).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 512;

/// Bounded ring of control-plane events.
///
/// Control-plane events are rare (per migration / failure, not per
/// request), so a mutex-guarded ring is the right cost model: the data
/// plane never touches it.
pub struct ControlJournal {
    inner: Mutex<JournalInner>,
    capacity: usize,
}

struct JournalInner {
    ring: VecDeque<JournalEntry>,
    next_seq: u64,
}

impl ControlJournal {
    /// A journal keeping the `capacity` most recent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        ControlJournal {
            inner: Mutex::new(JournalInner {
                ring: VecDeque::with_capacity(capacity.max(1)),
                next_seq: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// A journal with [`DEFAULT_JOURNAL_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Appends an event, evicting the oldest at capacity.
    pub fn log(&self, severity: Severity, kind: JournalKind, detail: impl Into<String>) {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(JournalEntry {
            seq,
            unix_ms,
            severity,
            kind,
            detail: detail.into(),
        });
    }

    /// Convenience for [`Severity::Info`].
    pub fn info(&self, kind: JournalKind, detail: impl Into<String>) {
        self.log(Severity::Info, kind, detail);
    }

    /// Convenience for [`Severity::Warn`].
    pub fn warn(&self, kind: JournalKind, detail: impl Into<String>) {
        self.log(Severity::Warn, kind, detail);
    }

    /// Convenience for [`Severity::Error`].
    pub fn error(&self, kind: JournalKind, detail: impl Into<String>) {
        self.log(Severity::Error, kind, detail);
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// Whether the journal holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ring.is_empty()
    }

    /// Total entries ever logged (`>= len()` once eviction starts).
    pub fn total_logged(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Copies out all held entries, oldest first.
    pub fn snapshot(&self) -> Vec<JournalEntry> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Per-kind entry counts over the held window, in [`JournalKind::ALL`]
    /// order — the exposition's `docs_journal_events` samples.
    pub fn counts_by_kind(&self) -> [(JournalKind, u64); JournalKind::ALL.len()] {
        let inner = self.inner.lock();
        let mut out = JournalKind::ALL.map(|k| (k, 0u64));
        for entry in inner.ring.iter() {
            for slot in out.iter_mut() {
                if slot.0 == entry.kind {
                    slot.1 += 1;
                }
            }
        }
        out
    }

    /// Renders every held entry as a JSON array.
    pub fn to_json(&self) -> String {
        let entries = self.snapshot();
        let mut out = String::from("[");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"unix_ms\":{},\"severity\":\"{}\",\"kind\":\"{}\",\"detail\":\"{}\"}}",
                e.seq,
                e.unix_ms,
                e.severity.name(),
                e.kind.name(),
                escape_json(&e.detail)
            ));
        }
        out.push(']');
        out
    }
}

impl Default for ControlJournal {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ControlJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlJournal")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("total_logged", &self.total_logged())
            .finish()
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_sequenced_and_timestamped() {
        let j = ControlJournal::new();
        j.info(JournalKind::Promotion, "node n1 promoted to primary");
        j.warn(JournalKind::DispatchTimeout, "lease expired for w3/t9");
        let snap = j.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
        assert!(snap[0].unix_ms > 1_500_000_000_000, "plausible wall clock");
        assert_eq!(snap[0].severity, Severity::Info);
        assert_eq!(snap[1].kind, JournalKind::DispatchTimeout);
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_sequence() {
        let j = ControlJournal::with_capacity(2);
        for i in 0..5 {
            j.info(JournalKind::MapInstall, format!("epoch {i}"));
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 3, "eviction visible through seq gap");
        assert_eq!(j.total_logged(), 5);
    }

    #[test]
    fn counts_by_kind_cover_the_window() {
        let j = ControlJournal::new();
        j.info(JournalKind::Fence, "c1");
        j.info(JournalKind::Fence, "c2");
        j.error(JournalKind::FlushFailure, "shard 0: sync failed");
        let counts = j.counts_by_kind();
        let get = |k: JournalKind| counts.iter().find(|(kk, _)| *kk == k).unwrap().1;
        assert_eq!(get(JournalKind::Fence), 2);
        assert_eq!(get(JournalKind::FlushFailure), 1);
        assert_eq!(get(JournalKind::Promotion), 0);
    }

    #[test]
    fn json_escapes_details() {
        let j = ControlJournal::new();
        j.info(JournalKind::MapInstall, "path \"a\\b\"\nnew line");
        let json = j.to_json();
        assert!(json.contains("\\\"a\\\\b\\\"\\nnew line"));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
