//! Simulated crowdsourcing platform — the AMT substitute.
//!
//! The paper evaluates on Amazon Mechanical Turk with live workers; we
//! cannot, so this crate simulates the platform end:
//!
//! * [`WorkerPopulation`] — workers with ground-truth per-domain quality
//!   vectors `q̃^w` drawn from an expert/normal/spammer mixture (matching the
//!   per-domain quality histogram shape of Figure 6(a)),
//! * [`AnswerModel`] — how a worker turns her true quality into an answer;
//!   the default is exactly the model DOCS assumes (correct with probability
//!   `q̃_k`, otherwise uniform over the `ℓ−1` wrong choices, Eq. 4), plus
//!   mismatch modes (confusion-biased, sloppy) for robustness experiments,
//! * [`AssignmentStrategy`] — the protocol every task-assignment method
//!   implements to talk to the platform,
//! * [`Platform`] — the parallel-comparison experiment protocol of
//!   Section 6.1: when a worker arrives, *every* method under comparison
//!   assigns `k` tasks, all answers are collected into per-method logs, and
//!   every method ends with the same number of answers,
//! * [`AdversarialPopulation`] — behavioral classes layered over a
//!   population (uniform spammers, golden-gaming sleepers, colluding
//!   cliques, quality drifters) for the scenario harness's adversarial
//!   workloads, with [`ArrivalProcess::Bursty`] supplying the matching
//!   flash-crowd arrival pattern.

mod behavior;
mod platform;
mod strategy;
mod worker;

pub use behavior::{AdversarialConfig, AdversarialPopulation, WorkerClass};
pub use platform::{
    accuracy_of, try_accuracy_of, ArrivalProcess, ArrivalSampler, ExperimentOutcome, Platform,
    PlatformConfig,
};
pub use strategy::AssignmentStrategy;
pub use worker::{AnswerContext, AnswerModel, PopulationConfig, SimulatedWorker, WorkerPopulation};
