//! The parallel-comparison experiment protocol of Section 6.1.
//!
//! "As the assigned tasks for each coming worker may be totally different for
//! different methods, to ensure that the same set of workers are used in
//! comparisons, similar to [54], we assign tasks to a coming worker in
//! parallel using different assignment methods. … We ensure that each method
//! collects the same number of answers in total."
//!
//! [`Platform`] reproduces exactly that: a shared worker arrival stream, a
//! shared per-(worker, task) answer cache (a worker gives the same answer to
//! the same task no matter which method asked), and per-method answer
//! budgets.

use crate::strategy::AssignmentStrategy;
use crate::worker::{AnswerModel, WorkerPopulation};
use docs_types::{Answer, AnswerLog, ChoiceIndex, Task, TaskId, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How workers arrive at the platform.
///
/// Real AMT activity is heavily skewed — a small core of workers performs
/// most HITs (which is why Figure 6(b) can single out "the 3 workers who
/// have answered the highest number of tasks"). [`ArrivalProcess::Zipf`]
/// reproduces that skew; [`ArrivalProcess::Uniform`] is the idealized
/// stream the comparison experiments default to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Every worker equally likely at each arrival.
    Uniform,
    /// Worker `i` arrives with probability ∝ `1 / (i + 1)^exponent` —
    /// worker 0 is the platform's most active regular.
    Zipf {
        /// Skew exponent (`1.0` is the classic Zipf law; larger = more
        /// concentrated).
        exponent: f64,
    },
    /// Bursty arrivals: a *hot cohort* of `window` consecutive workers
    /// (starting at a random offset) supplies the next `hold` arrivals,
    /// then the cohort re-bases at a fresh random offset. Models the
    /// forum-post / push-notification effect where a batch of related
    /// workers floods the campaign at once — the worst case for golden-gate
    /// calibration because many first-time workers hit the gate together.
    Bursty {
        /// Hot-cohort size (capped at the population size).
        window: usize,
        /// Arrivals served by one cohort before re-basing.
        hold: usize,
    },
}

/// Stateful sampler for a worker arrival stream.
///
/// [`ArrivalProcess::Uniform`] and [`ArrivalProcess::Zipf`] are memoryless,
/// but [`ArrivalProcess::Bursty`] carries cohort state between arrivals, so
/// sampling lives in its own (cheaply cloneable) object rather than on
/// [`Platform`]. Construction validates the process parameters.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    population: usize,
    kind: SamplerKind,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    Uniform,
    /// Cumulative arrival distribution over workers.
    Zipf(Vec<f64>),
    Bursty {
        window: usize,
        hold: usize,
        /// First worker of the current hot cohort.
        base: usize,
        /// Arrivals left before the cohort re-bases (0 = re-base now).
        left: usize,
    },
}

impl ArrivalSampler {
    /// Builds a sampler over a population of the given size. Panics on
    /// invalid parameters (non-positive Zipf exponent, zero bursty window
    /// or hold, empty population).
    pub fn new(process: ArrivalProcess, population: usize) -> Self {
        assert!(population > 0, "arrival sampler needs workers");
        let kind = match process {
            ArrivalProcess::Uniform => SamplerKind::Uniform,
            ArrivalProcess::Zipf { exponent } => {
                assert!(
                    exponent > 0.0 && exponent.is_finite(),
                    "Zipf exponent must be positive"
                );
                let mut acc = 0.0;
                let mut cdf: Vec<f64> = (0..population)
                    .map(|i| {
                        acc += 1.0 / ((i + 1) as f64).powf(exponent);
                        acc
                    })
                    .collect();
                let total = acc;
                cdf.iter_mut().for_each(|c| *c /= total);
                SamplerKind::Zipf(cdf)
            }
            ArrivalProcess::Bursty { window, hold } => {
                assert!(window >= 1, "bursty window must be positive");
                assert!(hold >= 1, "bursty hold must be positive");
                SamplerKind::Bursty {
                    window: window.min(population),
                    hold,
                    base: 0,
                    left: 0,
                }
            }
        };
        ArrivalSampler { population, kind }
    }

    /// Samples the next arriving worker.
    pub fn next(&mut self, rng: &mut SmallRng) -> WorkerId {
        match &mut self.kind {
            SamplerKind::Uniform => WorkerId::from(rng.gen_range(0..self.population)),
            SamplerKind::Zipf(cdf) => {
                let u: f64 = rng.gen();
                let idx = cdf.partition_point(|&c| c < u);
                WorkerId::from(idx.min(self.population - 1))
            }
            SamplerKind::Bursty {
                window,
                hold,
                base,
                left,
            } => {
                if *left == 0 {
                    *base = rng.gen_range(0..self.population);
                    *left = *hold;
                }
                *left -= 1;
                let offset = rng.gen_range(0..*window);
                WorkerId::from((*base + offset) % self.population)
            }
        }
    }
}

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Tasks assigned per method per worker arrival (the paper uses 3 in
    /// the parallel comparison, 20 in single-method deployments).
    pub k_per_hit: usize,
    /// Total answers each method may collect (the paper's budget is
    /// `10 × n`).
    pub answer_budget: usize,
    /// Answer model for the simulated workers.
    pub answer_model: AnswerModel,
    /// Worker arrival distribution.
    pub arrivals: ArrivalProcess,
    /// RNG seed for arrivals and answers.
    pub seed: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            k_per_hit: 3,
            answer_budget: 0, // set by the caller; 0 means 10 × n
            answer_model: AnswerModel::DomainUniform,
            arrivals: ArrivalProcess::Uniform,
            seed: 0xA37,
        }
    }
}

/// Per-method outcome of a platform run.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Method display name.
    pub name: &'static str,
    /// The answers this method collected.
    pub log: AnswerLog,
    /// Truths inferred by the method's own inference procedure.
    pub truths: Vec<ChoiceIndex>,
    /// Accuracy against ground truth.
    pub accuracy: f64,
    /// Worst-case single assignment latency observed (Figure 8(b) reports
    /// worst-case assignment time).
    pub worst_assign_time: Duration,
    /// Total time spent inside `assign` calls.
    pub total_assign_time: Duration,
}

/// The simulated crowdsourcing platform.
#[derive(Debug)]
pub struct Platform<'a> {
    tasks: &'a [Task],
    golden_ids: Vec<TaskId>,
    population: &'a WorkerPopulation,
    config: PlatformConfig,
    /// Validated sampler template — cloned per run so `run_parallel` stays
    /// `&self` while bursty arrivals keep per-run cohort state.
    sampler: ArrivalSampler,
}

impl<'a> Platform<'a> {
    /// Creates a platform over published tasks, pre-selected golden task
    /// ids, and a worker population. Tasks must carry ground truth and true
    /// domains (they drive the simulated answers).
    pub fn new(
        tasks: &'a [Task],
        golden_ids: Vec<TaskId>,
        population: &'a WorkerPopulation,
        config: PlatformConfig,
    ) -> Self {
        assert!(config.k_per_hit >= 1);
        let sampler = ArrivalSampler::new(config.arrivals, population.len());
        Platform {
            tasks,
            golden_ids,
            population,
            config,
            sampler,
        }
    }

    /// Runs the parallel comparison: all strategies see the same worker
    /// stream and each collects `answer_budget` answers (or as many as
    /// reachable). Returns one outcome per strategy, in input order.
    pub fn run_parallel(
        &self,
        strategies: &mut [&mut dyn AssignmentStrategy],
    ) -> Vec<ExperimentOutcome> {
        let n = self.tasks.len();
        let budget = if self.config.answer_budget == 0 {
            10 * n
        } else {
            self.config.answer_budget
        };
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        // Shared (worker, task) → answer cache: a worker is consistent
        // across methods.
        let mut cache: HashMap<(WorkerId, TaskId), ChoiceIndex> = HashMap::new();
        let mut seen_worker = vec![false; self.population.len()];
        let mut logs: Vec<AnswerLog> = strategies.iter().map(|_| AnswerLog::new(n)).collect();
        let mut collected = vec![0usize; strategies.len()];
        let mut worst = vec![Duration::ZERO; strategies.len()];
        let mut total = vec![Duration::ZERO; strategies.len()];

        // Worker arrival stream: uniformly random arrivals with replacement,
        // bounded so a stuck strategy cannot loop forever.
        let max_arrivals = (budget * strategies.len() / self.config.k_per_hit + 1) * 8;
        let mut arrivals = 0usize;
        let mut sampler = self.sampler.clone();
        while collected.iter().any(|&c| c < budget) && arrivals < max_arrivals {
            arrivals += 1;
            let w = sampler.next(&mut rng);

            // First visit: answer the golden tasks and initialize every
            // method's view of this worker.
            if !seen_worker[w.index()] {
                seen_worker[w.index()] = true;
                let golden: Vec<(TaskId, ChoiceIndex)> = self
                    .golden_ids
                    .iter()
                    .map(|&tid| (tid, self.answer_for(&mut cache, &mut rng, w, tid)))
                    .collect();
                for s in strategies.iter_mut() {
                    s.init_worker(w, &golden);
                }
            }

            for (si, s) in strategies.iter_mut().enumerate() {
                if collected[si] >= budget {
                    continue;
                }
                let k = self.config.k_per_hit.min(budget - collected[si]);
                let t0 = Instant::now();
                let assigned = s.assign(w, k);
                let dt = t0.elapsed();
                worst[si] = worst[si].max(dt);
                total[si] += dt;
                for tid in assigned {
                    if logs[si].has_answered(w, tid) {
                        // Protocol violation by the strategy; skip rather
                        // than corrupt the log.
                        continue;
                    }
                    let choice = self.answer_for(&mut cache, &mut rng, w, tid);
                    let answer = Answer {
                        task: tid,
                        worker: w,
                        choice,
                    };
                    logs[si].record(answer).expect("valid answer");
                    collected[si] += 1;
                    s.feedback(answer);
                }
            }
        }

        strategies
            .iter()
            .zip(logs)
            .zip(collected)
            .zip(worst.iter().zip(&total))
            .map(|(((s, log), _c), (w, t))| {
                let truths = s.truths();
                let accuracy = accuracy_of(&truths, self.tasks);
                ExperimentOutcome {
                    name: s.name(),
                    log,
                    truths,
                    accuracy,
                    worst_assign_time: *w,
                    total_assign_time: *t,
                }
            })
            .collect()
    }

    /// Collects a plain dataset: every task answered by `answers_per_task`
    /// distinct random workers (the Section 6.1 answer-collection protocol
    /// used for the TI experiments, where assignment is not under test).
    pub fn collect_uniform(&self, answers_per_task: usize) -> AnswerLog {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut cache: HashMap<(WorkerId, TaskId), ChoiceIndex> = HashMap::new();
        let mut log = AnswerLog::new(self.tasks.len());
        assert!(
            answers_per_task <= self.population.len(),
            "need at least as many workers as answers per task"
        );
        for task in self.tasks {
            // Sample distinct workers for this task.
            let mut chosen: Vec<usize> = Vec::with_capacity(answers_per_task);
            while chosen.len() < answers_per_task {
                let w = rng.gen_range(0..self.population.len());
                if !chosen.contains(&w) {
                    chosen.push(w);
                }
            }
            for w in chosen {
                let w = WorkerId::from(w);
                let choice = self.answer_for(&mut cache, &mut rng, w, task.id);
                log.record(Answer {
                    task: task.id,
                    worker: w,
                    choice,
                })
                .expect("distinct workers per task");
            }
        }
        log
    }

    /// Generates (and caches) worker `w`'s answer for a task.
    fn answer_for(
        &self,
        cache: &mut HashMap<(WorkerId, TaskId), ChoiceIndex>,
        rng: &mut SmallRng,
        w: WorkerId,
        tid: TaskId,
    ) -> ChoiceIndex {
        *cache.entry((w, tid)).or_insert_with(|| {
            self.population.worker(w).answer(
                &self.tasks[tid.index()],
                self.config.answer_model,
                rng,
            )
        })
    }

    /// Golden-task answers for a worker (exposed for single-method runs).
    pub fn golden_ids(&self) -> &[TaskId] {
        &self.golden_ids
    }
}

/// Accuracy of inferred truths against the tasks' ground truth, or `None`
/// when no task carries a ground truth (the fraction is then `0/0` —
/// undefined, not zero). Tasks without ground truth are skipped either way.
pub fn try_accuracy_of(truths: &[ChoiceIndex], tasks: &[Task]) -> Option<f64> {
    let mut correct = 0usize;
    let mut totaled = 0usize;
    for (task, &t) in tasks.iter().zip(truths) {
        if let Some(gt) = task.ground_truth {
            totaled += 1;
            if gt == t {
                correct += 1;
            }
        }
    }
    if totaled == 0 {
        None
    } else {
        Some(correct as f64 / totaled as f64)
    }
}

/// Accuracy of inferred truths against the tasks' ground truth.
///
/// NaN policy: when *no* task carries a ground truth the accuracy is
/// undefined and this returns `f64::NAN` — deliberately not `0.0`, which
/// would read as "everything wrong" and could trip quality gates on
/// evaluation-free campaigns. NaN is unequal to every threshold, so a
/// comparison against it fails loudly instead of silently passing. Callers
/// that need to branch on definedness use [`try_accuracy_of`].
pub fn accuracy_of(truths: &[ChoiceIndex], tasks: &[Task]) -> f64 {
    try_accuracy_of(truths, tasks).unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::PopulationConfig;
    use docs_types::{DomainVector, TaskBuilder};

    #[test]
    fn zipf_arrivals_concentrate_on_low_ids() {
        let mut sampler = ArrivalSampler::new(ArrivalProcess::Zipf { exponent: 1.2 }, 20);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0usize; 20];
        for _ in 0..20_000 {
            counts[sampler.next(&mut rng).index()] += 1;
        }
        // Worker 0 dominates; the tail is rare but non-zero.
        assert!(counts[0] > counts[10] * 5, "{counts:?}");
        assert!(counts[0] > counts[19] * 10, "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "every worker arrives");
    }

    #[test]
    fn uniform_arrivals_are_balanced() {
        let mut sampler = ArrivalSampler::new(ArrivalProcess::Uniform, 10);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[sampler.next(&mut rng).index()] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn bursty_arrivals_concentrate_within_cohorts() {
        let mut sampler = ArrivalSampler::new(
            ArrivalProcess::Bursty {
                window: 5,
                hold: 40,
            },
            100,
        );
        let mut rng = SmallRng::seed_from_u64(3);
        // Within one hold period, at most `window` distinct workers appear
        // and they are cyclically consecutive.
        for burst in 0..50 {
            let mut seen: Vec<usize> = (0..40).map(|_| sampler.next(&mut rng).index()).collect();
            seen.sort_unstable();
            seen.dedup();
            assert!(seen.len() <= 5, "burst {burst}: {seen:?}");
            // All ids fit inside a window of 5 on the 100-cycle.
            let spread = (0..seen.len())
                .map(|i| {
                    let next = seen[(i + 1) % seen.len()];
                    (next + 100 - seen[i]) % 100
                })
                .max()
                .unwrap_or(0);
            assert!(
                100 - spread < 5 || seen.len() == 1,
                "burst {burst}: {seen:?}"
            );
        }
        // Across many re-bases the whole population is reachable.
        let mut counts = vec![0usize; 100];
        for _ in 0..40_000 {
            counts[sampler.next(&mut rng).index()] += 1;
        }
        assert!(counts.iter().filter(|&&c| c > 0).count() > 90, "{counts:?}");
    }

    #[test]
    fn bursty_sampler_is_deterministic_per_seed() {
        let process = ArrivalProcess::Bursty {
            window: 3,
            hold: 10,
        };
        let mut a = ArrivalSampler::new(process, 50);
        let mut b = ArrivalSampler::new(process, 50);
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(a.next(&mut rng_a), b.next(&mut rng_b));
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn bursty_rejects_zero_window() {
        let _ = ArrivalSampler::new(ArrivalProcess::Bursty { window: 0, hold: 5 }, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zipf_rejects_non_positive_exponent() {
        let tasks = make_tasks(1, 1);
        let population = WorkerPopulation::generate(&PopulationConfig {
            m: 1,
            size: 2,
            seed: 9,
            ..Default::default()
        });
        let _ = Platform::new(
            &tasks,
            vec![],
            &population,
            PlatformConfig {
                arrivals: ArrivalProcess::Zipf { exponent: 0.0 },
                ..Default::default()
            },
        );
    }

    fn make_tasks(n: usize, m: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("t{i}"))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(i % m)
                    .with_domain_vector(DomainVector::one_hot(m, i % m))
                    .build()
                    .unwrap()
            })
            .collect()
    }

    /// A trivial strategy answering tasks round-robin; used to exercise the
    /// platform protocol.
    struct RoundRobin {
        n: usize,
        answered: std::collections::HashSet<(WorkerId, TaskId)>,
        counts: Vec<usize>,
        majority: Vec<[usize; 2]>,
        inited: Vec<WorkerId>,
    }

    impl RoundRobin {
        fn new(n: usize) -> Self {
            RoundRobin {
                n,
                answered: Default::default(),
                counts: vec![0; n],
                majority: vec![[0; 2]; n],
                inited: Vec::new(),
            }
        }
    }

    impl AssignmentStrategy for RoundRobin {
        fn name(&self) -> &'static str {
            "round-robin"
        }
        fn init_worker(&mut self, worker: WorkerId, _golden: &[(TaskId, ChoiceIndex)]) {
            self.inited.push(worker);
        }
        fn assign(&mut self, worker: WorkerId, k: usize) -> Vec<TaskId> {
            let mut order: Vec<usize> = (0..self.n).collect();
            order.sort_by_key(|&i| self.counts[i]);
            order
                .into_iter()
                .map(TaskId::from)
                .filter(|t| !self.answered.contains(&(worker, *t)))
                .take(k)
                .collect()
        }
        fn feedback(&mut self, a: Answer) {
            self.answered.insert((a.worker, a.task));
            self.counts[a.task.index()] += 1;
            self.majority[a.task.index()][a.choice.min(1)] += 1;
        }
        fn truths(&self) -> Vec<ChoiceIndex> {
            self.majority
                .iter()
                .map(|c| usize::from(c[1] > c[0]))
                .collect()
        }
    }

    #[test]
    fn parallel_run_respects_budget() {
        let tasks = make_tasks(20, 2);
        let pop = WorkerPopulation::generate(&PopulationConfig {
            m: 2,
            size: 30,
            ..Default::default()
        });
        let mut s1 = RoundRobin::new(20);
        let mut s2 = RoundRobin::new(20);
        let platform = Platform::new(
            &tasks,
            vec![],
            &pop,
            PlatformConfig {
                answer_budget: 100,
                ..Default::default()
            },
        );
        let outcomes = platform.run_parallel(&mut [&mut s1, &mut s2]);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert_eq!(o.log.len(), 100, "{}", o.name);
            assert_eq!(o.truths.len(), 20);
        }
    }

    #[test]
    fn zipf_arrivals_skew_per_worker_answer_counts() {
        let tasks = make_tasks(30, 2);
        let pop = WorkerPopulation::generate(&PopulationConfig {
            m: 2,
            size: 25,
            ..Default::default()
        });
        let mut s = RoundRobin::new(30);
        let platform = Platform::new(
            &tasks,
            vec![],
            &pop,
            PlatformConfig {
                answer_budget: 300,
                arrivals: ArrivalProcess::Zipf { exponent: 1.3 },
                seed: 77,
                ..Default::default()
            },
        );
        let outcomes = platform.run_parallel(&mut [&mut s]);
        let log = &outcomes[0].log;
        // Figure 6(b)'s precondition: a few workers dominate activity.
        let mut counts: Vec<usize> = (0..25)
            .map(|w| log.worker_answers(WorkerId::from(w)).len())
            .collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The most active workers saturate (each can answer every task at
        // most once, so the per-worker ceiling is n = 30) while the tail
        // barely participates.
        assert_eq!(counts[0], 30, "most active worker saturates: {counts:?}");
        let top5: usize = counts[..5].iter().sum();
        let bottom5: usize = counts[20..].iter().sum();
        assert!(
            top5 >= log.len() * 2 / 5,
            "top-5 workers should hold >=40% of answers: {counts:?}"
        );
        assert!(
            bottom5 * 4 < top5,
            "tail should be far less active than the head: {counts:?}"
        );
    }

    #[test]
    fn workers_are_consistent_across_methods() {
        let tasks = make_tasks(10, 2);
        let pop = WorkerPopulation::generate(&PopulationConfig {
            m: 2,
            size: 15,
            ..Default::default()
        });
        let mut s1 = RoundRobin::new(10);
        let mut s2 = RoundRobin::new(10);
        let platform = Platform::new(
            &tasks,
            vec![],
            &pop,
            PlatformConfig {
                answer_budget: 60,
                ..Default::default()
            },
        );
        let outcomes = platform.run_parallel(&mut [&mut s1, &mut s2]);
        // Any (worker, task) answered by both methods must agree.
        for (t, answers1) in outcomes[0].log.iter_tasks() {
            for &(w, c1) in answers1 {
                for &(w2, c2) in outcomes[1].log.task_answers(t) {
                    if w == w2 {
                        assert_eq!(c1, c2, "worker {w} inconsistent on task {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn golden_tasks_initialize_every_worker_once() {
        let tasks = make_tasks(10, 2);
        let pop = WorkerPopulation::generate(&PopulationConfig {
            m: 2,
            size: 5,
            ..Default::default()
        });
        let golden = vec![TaskId(0), TaskId(1)];
        let mut s = RoundRobin::new(10);
        let platform = Platform::new(
            &tasks,
            golden,
            &pop,
            PlatformConfig {
                answer_budget: 40,
                ..Default::default()
            },
        );
        platform.run_parallel(&mut [&mut s]);
        let mut inited = s.inited.clone();
        inited.sort();
        let before = inited.len();
        inited.dedup();
        assert_eq!(before, inited.len(), "workers must be initialized once");
    }

    #[test]
    fn collect_uniform_gives_exact_answer_counts() {
        let tasks = make_tasks(12, 2);
        let pop = WorkerPopulation::generate(&PopulationConfig {
            m: 2,
            size: 20,
            ..Default::default()
        });
        let platform = Platform::new(&tasks, vec![], &pop, PlatformConfig::default());
        let log = platform.collect_uniform(10);
        assert_eq!(log.len(), 120);
        for (_, v) in log.iter_tasks() {
            assert_eq!(v.len(), 10);
        }
    }

    #[test]
    fn collect_uniform_is_deterministic() {
        let tasks = make_tasks(5, 2);
        let pop = WorkerPopulation::generate(&PopulationConfig {
            m: 2,
            size: 10,
            ..Default::default()
        });
        let platform = Platform::new(&tasks, vec![], &pop, PlatformConfig::default());
        let a = platform.collect_uniform(4);
        let b = platform.collect_uniform(4);
        let av: Vec<_> = a.iter_answers().collect();
        let bv: Vec<_> = b.iter_answers().collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn accuracy_of_counts_correctly() {
        let tasks = make_tasks(4, 2);
        // Ground truths: [0, 1, 0, 1].
        assert_eq!(accuracy_of(&[0, 1, 0, 1], &tasks), 1.0);
        assert_eq!(accuracy_of(&[1, 0, 1, 0], &tasks), 0.0);
        assert_eq!(accuracy_of(&[0, 1, 1, 0], &tasks), 0.5);
    }

    #[test]
    fn accuracy_is_undefined_without_ground_truth() {
        // Empty task set: 0/0 — None / NaN, never 0.0.
        assert_eq!(try_accuracy_of(&[], &[]), None);
        assert!(accuracy_of(&[], &[]).is_nan());
        // Tasks that simply lack ground truth count the same as absent.
        let blind: Vec<Task> = (0..3)
            .map(|i| {
                TaskBuilder::new(i, format!("b{i}"))
                    .yes_no()
                    .with_true_domain(0)
                    .with_domain_vector(DomainVector::one_hot(2, 0))
                    .build()
                    .unwrap()
            })
            .collect();
        assert_eq!(try_accuracy_of(&[0, 1, 0], &blind), None);
        assert!(accuracy_of(&[0, 1, 0], &blind).is_nan());
        // Mixed: only the graded tasks enter the fraction.
        let mut mixed = make_tasks(2, 2);
        mixed.extend(blind);
        assert_eq!(try_accuracy_of(&[0, 1, 0, 0, 0], &mixed), Some(1.0));
    }
}
