//! Heterogeneous worker populations with adversarial sub-classes.
//!
//! [`WorkerPopulation`] models *quality* heterogeneity (experts, normals,
//! weak workers) under one shared [`AnswerModel`]. The scenario harness
//! needs *behavioral* heterogeneity on top: the same arrival stream mixing
//! honest workers with uniform spammers, sleeper spammers that game the
//! golden gate, colluding cliques, and workers whose per-domain quality
//! drifts as the campaign ages. [`AdversarialPopulation`] assigns each
//! worker of a base population to a [`WorkerClass`] via a seeded shuffle
//! (so classes are decorrelated from the expert-first ordering the base
//! generator uses) and routes every answer through the class's model.

use crate::worker::{
    AnswerContext, AnswerModel, PopulationConfig, SimulatedWorker, WorkerPopulation,
};
use docs_types::{ChoiceIndex, Task, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Behavioral class of one worker in an [`AdversarialPopulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerClass {
    /// Answers per the population's honest model at her true quality.
    Honest,
    /// Uniform random over all choices, golden tasks included.
    Spammer,
    /// Fakes expertise on the golden gate, uniform random elsewhere.
    Sleeper,
    /// Member of colluding clique `clique`: agrees with clique-mates on a
    /// canonical wrong answer with the configured probability.
    Colluder {
        /// Clique membership (0-based).
        clique: u32,
    },
    /// Honest, but her effective quality moves with campaign progress
    /// (`q + slope · progress`, clamped) — the worker who fatigues, or the
    /// account that is sold mid-campaign.
    Drifter,
}

/// Mixture configuration for an [`AdversarialPopulation`].
///
/// The behavioral fractions partition the population independently of the
/// base config's *quality* mixture (`base.spammer_fraction` describes
/// low-quality-but-honest workers; `spammer_fraction` here describes
/// workers who ignore tasks entirely). Fractions must sum to ≤ 1; the
/// remainder is honest.
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Quality mixture, size, and seed of the underlying population.
    pub base: PopulationConfig,
    /// Model honest (and drifting) workers answer under.
    pub honest_model: AnswerModel,
    /// Fraction of uniform spammers.
    pub spammer_fraction: f64,
    /// Fraction of sleeper spammers.
    pub sleeper_fraction: f64,
    /// Accuracy sleepers fake on golden tasks.
    pub sleeper_golden_quality: f64,
    /// Fraction of colluders (split round-robin across cliques).
    pub colluder_fraction: f64,
    /// Number of independent colluding cliques (≥ 1 when colluders exist).
    pub colluder_cliques: u32,
    /// Probability a colluder gives the clique's canonical wrong answer.
    pub collusion: f64,
    /// Fraction of drifting workers.
    pub drifter_fraction: f64,
    /// Quality slope for drifters: effective quality at progress `p` is
    /// `clamp(q + drift_slope · p, 0.02, 0.98)`. Negative = degrading.
    pub drift_slope: f64,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        AdversarialConfig {
            base: PopulationConfig::default(),
            honest_model: AnswerModel::DomainUniform,
            spammer_fraction: 0.0,
            sleeper_fraction: 0.0,
            sleeper_golden_quality: 0.95,
            colluder_fraction: 0.0,
            colluder_cliques: 1,
            collusion: 0.85,
            drifter_fraction: 0.0,
            drift_slope: -0.4,
        }
    }
}

/// A worker population where each worker carries a behavioral class.
#[derive(Debug, Clone)]
pub struct AdversarialPopulation {
    base: WorkerPopulation,
    classes: Vec<WorkerClass>,
    honest_model: AnswerModel,
    sleeper_golden_quality: f64,
    collusion: f64,
    drift_slope: f64,
}

impl AdversarialPopulation {
    /// Samples the base population and assigns behavioral classes by a
    /// seeded shuffle. Panics when the behavioral fractions exceed 1 or a
    /// positive colluder fraction comes with zero cliques.
    pub fn generate(config: &AdversarialConfig) -> Self {
        Self::with_base(WorkerPopulation::generate(&config.base), config)
    }

    /// Assigns behavioral classes over a caller-supplied quality
    /// population (e.g. a dataset's focus-domain population), ignoring the
    /// size and quality mixture of `config.base` but keeping its seed for
    /// the class shuffle. Same panics as [`AdversarialPopulation::generate`].
    pub fn with_base(base: WorkerPopulation, config: &AdversarialConfig) -> Self {
        let f_total = config.spammer_fraction
            + config.sleeper_fraction
            + config.colluder_fraction
            + config.drifter_fraction;
        assert!(
            (0.0..=1.0 + 1e-9).contains(&f_total),
            "behavioral fractions must sum to <= 1, got {f_total}"
        );
        assert!(
            config.colluder_fraction == 0.0 || config.colluder_cliques >= 1,
            "colluders need at least one clique"
        );
        let size = base.len();
        let count = |f: f64| ((size as f64) * f).round() as usize;
        let n_spam = count(config.spammer_fraction);
        let n_sleep = count(config.sleeper_fraction);
        let n_collude = count(config.colluder_fraction);
        let n_drift = count(config.drifter_fraction);
        assert!(
            n_spam + n_sleep + n_collude + n_drift <= size,
            "rounded class counts exceed the population"
        );

        let mut classes = Vec::with_capacity(size);
        classes.resize(n_spam, WorkerClass::Spammer);
        classes.resize(n_spam + n_sleep, WorkerClass::Sleeper);
        for i in 0..n_collude {
            classes.push(WorkerClass::Colluder {
                clique: (i as u32) % config.colluder_cliques.max(1),
            });
        }
        classes.resize(classes.len() + n_drift, WorkerClass::Drifter);
        classes.resize(size, WorkerClass::Honest);

        // Fisher-Yates on a seed derived from (but distinct from) the base
        // seed, so adversaries land uniformly across the quality mixture
        // instead of clustering on the expert-first prefix the base
        // generator emits.
        let mut rng = SmallRng::seed_from_u64(config.base.seed ^ 0xAD5E_ED00_0000_0001);
        for i in (1..size).rev() {
            let j = rng.gen_range(0..=i);
            classes.swap(i, j);
        }

        AdversarialPopulation {
            base,
            classes,
            honest_model: config.honest_model,
            sleeper_golden_quality: config.sleeper_golden_quality,
            collusion: config.collusion,
            drift_slope: config.drift_slope,
        }
    }

    /// Wraps an existing population with everyone honest — the degenerate
    /// case scenario specs use for pure-quality runs.
    pub fn all_honest(base: WorkerPopulation, honest_model: AnswerModel) -> Self {
        let classes = vec![WorkerClass::Honest; base.len()];
        AdversarialPopulation {
            base,
            classes,
            honest_model,
            sleeper_golden_quality: 0.95,
            collusion: 0.0,
            drift_slope: 0.0,
        }
    }

    /// Produces worker `w`'s answer to a task under her class's behavior.
    pub fn answer(
        &self,
        w: WorkerId,
        task: &Task,
        ctx: AnswerContext,
        rng: &mut SmallRng,
    ) -> ChoiceIndex {
        let worker = self.base.worker(w);
        match self.classes[w.index()] {
            WorkerClass::Drifter => {
                let domain = task
                    .true_domain
                    .expect("simulated workers need tasks with a true domain");
                let q = worker.true_quality[domain];
                let q_eff = (q + self.drift_slope * ctx.progress).clamp(0.02, 0.98);
                worker.answer_with_quality(q_eff, task, self.honest_model, ctx, rng)
            }
            class => worker.answer_in_context(task, self.model_of_class(class), ctx, rng),
        }
    }

    /// The answer model a (non-drifting) class resolves to.
    fn model_of_class(&self, class: WorkerClass) -> AnswerModel {
        match class {
            WorkerClass::Honest | WorkerClass::Drifter => self.honest_model,
            WorkerClass::Spammer => AnswerModel::UniformSpammer,
            WorkerClass::Sleeper => AnswerModel::Sleeper {
                golden_quality: self.sleeper_golden_quality,
            },
            WorkerClass::Colluder { clique } => AnswerModel::Clique {
                clique,
                collusion: self.collusion,
            },
        }
    }

    /// Behavioral class of a worker.
    pub fn class_of(&self, w: WorkerId) -> WorkerClass {
        self.classes[w.index()]
    }

    /// The model a worker answers under (drifters report the honest model;
    /// their quality shift happens in [`AdversarialPopulation::answer`]).
    pub fn model_of(&self, w: WorkerId) -> AnswerModel {
        self.model_of_class(self.classes[w.index()])
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True when empty (not constructible via `generate`).
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// The underlying quality population.
    pub fn base(&self) -> &WorkerPopulation {
        &self.base
    }

    /// One simulated worker.
    pub fn worker(&self, w: WorkerId) -> &SimulatedWorker {
        self.base.worker(w)
    }

    /// Workers in a given class (evaluation helpers).
    pub fn workers_in_class(&self, want: WorkerClass) -> Vec<WorkerId> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == want)
            .map(|(i, _)| WorkerId::from(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_types::{DomainVector, TaskBuilder};

    fn config(size: usize) -> AdversarialConfig {
        AdversarialConfig {
            base: PopulationConfig {
                m: 2,
                size,
                seed: 0xBEE5,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn task(l: usize, truth: usize, domain: usize) -> docs_types::Task {
        TaskBuilder::new(0usize, "t")
            .with_choices((0..l).map(|c| format!("c{c}")))
            .with_ground_truth(truth)
            .with_true_domain(domain)
            .with_domain_vector(DomainVector::one_hot(2, domain))
            .build()
            .unwrap()
    }

    #[test]
    fn class_counts_match_fractions() {
        let cfg = AdversarialConfig {
            spammer_fraction: 0.2,
            sleeper_fraction: 0.1,
            colluder_fraction: 0.3,
            colluder_cliques: 3,
            drifter_fraction: 0.1,
            ..config(100)
        };
        let pop = AdversarialPopulation::generate(&cfg);
        let count = |c: WorkerClass| pop.workers_in_class(c).len();
        assert_eq!(count(WorkerClass::Spammer), 20);
        assert_eq!(count(WorkerClass::Sleeper), 10);
        assert_eq!(count(WorkerClass::Drifter), 10);
        assert_eq!(count(WorkerClass::Honest), 30);
        let colluders: usize = (0..3)
            .map(|c| count(WorkerClass::Colluder { clique: c }))
            .sum();
        assert_eq!(colluders, 30);
        // Round-robin split across cliques.
        for c in 0..3 {
            assert_eq!(count(WorkerClass::Colluder { clique: c }), 10);
        }
    }

    #[test]
    fn class_shuffle_is_seeded_and_decorrelated() {
        let cfg = AdversarialConfig {
            spammer_fraction: 0.2,
            ..config(100)
        };
        let a = AdversarialPopulation::generate(&cfg);
        let b = AdversarialPopulation::generate(&cfg);
        for i in 0..100 {
            assert_eq!(a.class_of(WorkerId(i)), b.class_of(WorkerId(i)));
        }
        // Spammers must not cluster on the expert-first prefix: with 20
        // spammers uniformly shuffled over 100 slots, all landing in the
        // first 40 has probability ~1e-9.
        let spam = a.workers_in_class(WorkerClass::Spammer);
        assert!(
            spam.iter().any(|w| w.index() >= 40),
            "spammers stuck on the expert prefix: {spam:?}"
        );
        // A different base seed reshuffles.
        let mut cfg2 = cfg.clone();
        cfg2.base.seed = 0x5EED;
        let c = AdversarialPopulation::generate(&cfg2);
        assert!(
            (0..100).any(|i| a.class_of(WorkerId(i)) != c.class_of(WorkerId(i))),
            "seed change must move classes"
        );
    }

    #[test]
    fn drifter_quality_moves_with_progress() {
        let cfg = AdversarialConfig {
            drifter_fraction: 1.0,
            drift_slope: -0.5,
            base: PopulationConfig {
                m: 2,
                size: 4,
                base_quality: (0.88, 0.9),
                expert_fraction: 0.0,
                spammer_fraction: 0.0,
                seed: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let pop = AdversarialPopulation::generate(&cfg);
        let w = WorkerId(0);
        assert_eq!(pop.class_of(w), WorkerClass::Drifter);
        let t = task(2, 0, 0);
        let mut rng = SmallRng::seed_from_u64(11);
        let trials = 4000;
        let acc_at = |p: f64, rng: &mut SmallRng| {
            let ctx = AnswerContext {
                is_golden: false,
                progress: p,
            };
            (0..trials)
                .filter(|_| pop.answer(w, &t, ctx, rng) == 0)
                .count() as f64
                / trials as f64
        };
        let early = acc_at(0.0, &mut rng);
        let late = acc_at(1.0, &mut rng);
        // q ≈ 0.89 at progress 0; 0.89 − 0.5 ≈ 0.39 at progress 1.
        assert!((early - 0.89).abs() < 0.03, "{early}");
        assert!((late - 0.39).abs() < 0.03, "{late}");
    }

    #[test]
    fn honest_wrapper_answers_like_the_base_population() {
        let base_cfg = PopulationConfig {
            m: 2,
            size: 10,
            seed: 3,
            ..Default::default()
        };
        let pop = AdversarialPopulation::all_honest(
            WorkerPopulation::generate(&base_cfg),
            AnswerModel::DomainUniform,
        );
        let direct = WorkerPopulation::generate(&base_cfg);
        let t = task(3, 1, 1);
        // Same rng stream → byte-identical answers.
        let mut rng_a = SmallRng::seed_from_u64(12);
        let mut rng_b = SmallRng::seed_from_u64(12);
        for i in 0..10 {
            let w = WorkerId(i);
            assert_eq!(
                pop.answer(w, &t, AnswerContext::default(), &mut rng_a),
                direct
                    .worker(w)
                    .answer(&t, AnswerModel::DomainUniform, &mut rng_b)
            );
        }
    }

    #[test]
    fn with_base_matches_generate_on_the_same_base() {
        let cfg = AdversarialConfig {
            spammer_fraction: 0.2,
            ..config(50)
        };
        let a = AdversarialPopulation::generate(&cfg);
        let b = AdversarialPopulation::with_base(WorkerPopulation::generate(&cfg.base), &cfg);
        for i in 0..50 {
            assert_eq!(a.class_of(WorkerId(i)), b.class_of(WorkerId(i)));
        }
    }

    #[test]
    #[should_panic(expected = "sum to <= 1")]
    fn rejects_oversubscribed_fractions() {
        let cfg = AdversarialConfig {
            spammer_fraction: 0.7,
            colluder_fraction: 0.5,
            ..config(10)
        };
        let _ = AdversarialPopulation::generate(&cfg);
    }
}
