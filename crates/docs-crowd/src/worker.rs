//! Simulated workers with ground-truth per-domain qualities.

use docs_types::{ChoiceIndex, QualityVector, Task, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-answer situation the simulated worker observes — everything an
/// adversarial behavior may key on beyond the task itself.
///
/// The honest models ignore it entirely; the scenario harness
/// (`docs-scenarios`) threads it through every answer so sleeper spammers
/// can tell golden tasks apart and drifting workers know how far into the
/// campaign they are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerContext {
    /// Whether the platform presented this task as part of the golden HIT.
    /// Real platforms leak this: the golden HIT is always the worker's
    /// *first* HIT, which is exactly what a sleeper spammer exploits.
    pub is_golden: bool,
    /// Campaign progress in `[0, 1]`: answers collected so far over the
    /// collection budget. Drives per-domain quality drift.
    pub progress: f64,
}

impl Default for AnswerContext {
    fn default() -> Self {
        AnswerContext {
            is_golden: false,
            progress: 0.0,
        }
    }
}

/// How a simulated worker produces an answer from her true quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnswerModel {
    /// The model DOCS assumes (Eq. 4): correct with probability `q̃_k` where
    /// `d_k` is the task's true domain; wrong answers uniform over the
    /// remaining `ℓ − 1` choices.
    DomainUniform,
    /// Model mismatch: wrong answers concentrate on one "attractive"
    /// distractor (choice `(truth + 1) mod ℓ` with the given bias) instead
    /// of being uniform — the Dawid-Skene confusion-matrix world.
    Confused {
        /// Probability mass of the preferred distractor among wrong answers.
        bias: f64,
    },
    /// Model mismatch: with the given probability the worker ignores the
    /// task entirely and answers uniformly at random (including the truth).
    Sloppy {
        /// Probability of answering at random.
        carelessness: f64,
    },
    /// Adversarial collusion: with probability `malice` the worker
    /// *deliberately* answers the canonical wrong choice
    /// (`(truth + 1) mod ℓ`) — the same one every other adversary picks, so
    /// colluders agree with each other and look consistent to inference;
    /// otherwise she answers per [`AnswerModel::DomainUniform`]. This is the
    /// hardest stress for truth inference: the paper warns that weighted
    /// majority voting "is easy to be misled by the answers given by
    /// multiple low-quality workers", and collusion makes those answers
    /// correlate.
    Adversarial {
        /// Probability of giving the colluding wrong answer.
        malice: f64,
    },
    /// Uniform spammer: every answer is uniform over all `ℓ` choices
    /// (truth included), regardless of the worker's nominal quality — the
    /// classic click-through worker. Expected accuracy `1/ℓ`.
    UniformSpammer,
    /// Sleeper spammer: behaves like a high-quality worker on the golden
    /// HIT (correct with probability `golden_quality`) and answers
    /// uniformly at random everywhere else. The golden gate scores her as
    /// an expert, which is precisely the calibration error the quality
    /// harness measures ([`AnswerContext::is_golden`] tells her which
    /// regime she is in).
    Sleeper {
        /// Accuracy the sleeper fakes on golden tasks.
        golden_quality: f64,
    },
    /// Colluding clique member: with probability `collusion` the worker
    /// answers the clique's canonical wrong choice for the task — a
    /// deterministic function of `(task id, clique)`, so every member of
    /// the same clique gives the *same* wrong answer while different
    /// cliques usually disagree. Otherwise she answers per
    /// [`AnswerModel::DomainUniform`]. Unlike [`AnswerModel::Adversarial`]
    /// (whose single canonical distractor is shared by every adversary in
    /// the population), cliques let a scenario pit several internally
    /// consistent wrong consensuses against each other.
    Clique {
        /// Which clique the worker belongs to.
        clique: u32,
        /// Probability of giving the clique's colluding wrong answer.
        collusion: f64,
    },
}

/// The clique's canonical wrong choice for a task: a deterministic hash of
/// `(task id, clique)` over the `ℓ − 1` distractors, so clique members
/// agree with each other without any runtime coordination.
fn clique_wrong(task: &Task, clique: u32, truth: ChoiceIndex, l: usize) -> ChoiceIndex {
    let h = (task.id.index() as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((u64::from(clique) + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
    // xorshift-style mix so consecutive task ids don't map to consecutive
    // distractors.
    let h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let mut c = (h % (l as u64 - 1)) as usize;
    if c >= truth {
        c += 1;
    }
    c
}

/// One simulated worker: her identity and ground-truth quality vector `q̃^w`.
#[derive(Debug, Clone)]
pub struct SimulatedWorker {
    /// Platform identity.
    pub id: WorkerId,
    /// Ground-truth per-domain accuracy (the `q̃^w` of Section 6.3's
    /// worker-quality case studies).
    pub true_quality: QualityVector,
}

impl SimulatedWorker {
    /// Answers a task under the given answer model.
    ///
    /// The task must carry its ground truth and true domain (datasets built
    /// by `docs-datasets` always do). The worker's accuracy is her true
    /// quality in the task's true domain. Context-free form: golden tasks
    /// are not distinguished and no drift applies (the pre-adversarial
    /// behavior, byte-identical rng streams for the original variants).
    pub fn answer(&self, task: &Task, model: AnswerModel, rng: &mut SmallRng) -> ChoiceIndex {
        self.answer_in_context(task, model, AnswerContext::default(), rng)
    }

    /// [`SimulatedWorker::answer`] with an explicit [`AnswerContext`] —
    /// required by the context-sensitive models ([`AnswerModel::Sleeper`]
    /// keys on `ctx.is_golden`).
    pub fn answer_in_context(
        &self,
        task: &Task,
        model: AnswerModel,
        ctx: AnswerContext,
        rng: &mut SmallRng,
    ) -> ChoiceIndex {
        let domain = task
            .true_domain
            .expect("simulated workers need tasks with a true domain");
        self.answer_with_quality(self.true_quality[domain], task, model, ctx, rng)
    }

    /// Core answer generator with the per-domain accuracy supplied by the
    /// caller — the hook `AdversarialPopulation` uses to apply quality
    /// drift without mutating the worker's ground-truth vector.
    pub fn answer_with_quality(
        &self,
        q: f64,
        task: &Task,
        model: AnswerModel,
        ctx: AnswerContext,
        rng: &mut SmallRng,
    ) -> ChoiceIndex {
        let truth = task
            .ground_truth
            .expect("simulated workers need tasks with ground truth");
        let l = task.num_choices();

        match model {
            AnswerModel::DomainUniform => {
                if rng.gen::<f64>() < q {
                    truth
                } else {
                    wrong_uniform(truth, l, rng)
                }
            }
            AnswerModel::Confused { bias } => {
                if rng.gen::<f64>() < q {
                    truth
                } else if l == 2 {
                    1 - truth
                } else if rng.gen::<f64>() < bias {
                    (truth + 1) % l
                } else {
                    wrong_uniform(truth, l, rng)
                }
            }
            AnswerModel::Sloppy { carelessness } => {
                if rng.gen::<f64>() < carelessness {
                    rng.gen_range(0..l)
                } else if rng.gen::<f64>() < q {
                    truth
                } else {
                    wrong_uniform(truth, l, rng)
                }
            }
            AnswerModel::Adversarial { malice } => {
                if rng.gen::<f64>() < malice {
                    (truth + 1) % l
                } else if rng.gen::<f64>() < q {
                    truth
                } else {
                    wrong_uniform(truth, l, rng)
                }
            }
            AnswerModel::UniformSpammer => rng.gen_range(0..l),
            AnswerModel::Sleeper { golden_quality } => {
                if ctx.is_golden {
                    if rng.gen::<f64>() < golden_quality {
                        truth
                    } else {
                        wrong_uniform(truth, l, rng)
                    }
                } else {
                    rng.gen_range(0..l)
                }
            }
            AnswerModel::Clique { clique, collusion } => {
                if rng.gen::<f64>() < collusion {
                    clique_wrong(task, clique, truth, l)
                } else if rng.gen::<f64>() < q {
                    truth
                } else {
                    wrong_uniform(truth, l, rng)
                }
            }
        }
    }
}

fn wrong_uniform(truth: ChoiceIndex, l: usize, rng: &mut SmallRng) -> ChoiceIndex {
    let mut c = rng.gen_range(0..l - 1);
    if c >= truth {
        c += 1;
    }
    c
}

/// Mixture configuration for the worker population.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of domains `m`.
    pub m: usize,
    /// Number of workers.
    pub size: usize,
    /// Fraction of workers that are domain experts.
    pub expert_fraction: f64,
    /// How many domains each expert excels in (1 or 2 typically; capped
    /// at `m`).
    pub expert_domains: usize,
    /// Expert quality range inside their domains.
    pub expert_quality: (f64, f64),
    /// Quality range outside expert domains / for normal workers.
    pub base_quality: (f64, f64),
    /// Fraction of spammers (quality ≈ random guessing everywhere).
    pub spammer_fraction: f64,
    /// Spammer quality range.
    pub spammer_quality: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            m: 4,
            size: 50,
            expert_fraction: 0.4,
            expert_domains: 1,
            expert_quality: (0.85, 0.97),
            base_quality: (0.5, 0.7),
            spammer_fraction: 0.1,
            spammer_quality: (0.4, 0.55),
            seed: 0xC20D,
        }
    }
}

/// The simulated worker population.
#[derive(Debug, Clone)]
pub struct WorkerPopulation {
    workers: Vec<SimulatedWorker>,
}

impl WorkerPopulation {
    /// Samples a population from the mixture configuration. Expert domains
    /// rotate round-robin so every domain gets experts.
    pub fn generate(config: &PopulationConfig) -> Self {
        assert!(config.size > 0 && config.m > 0);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let n_expert = (config.size as f64 * config.expert_fraction).round() as usize;
        let n_spam = (config.size as f64 * config.spammer_fraction).round() as usize;
        let mut workers = Vec::with_capacity(config.size);
        for i in 0..config.size {
            let quality = if i < n_expert {
                let mut q: Vec<f64> = (0..config.m)
                    .map(|_| rng.gen_range(config.base_quality.0..config.base_quality.1))
                    .collect();
                let k0 = i % config.m;
                for d in 0..config.expert_domains.min(config.m) {
                    q[(k0 + d) % config.m] =
                        rng.gen_range(config.expert_quality.0..config.expert_quality.1);
                }
                q
            } else if i < n_expert + n_spam {
                (0..config.m)
                    .map(|_| rng.gen_range(config.spammer_quality.0..config.spammer_quality.1))
                    .collect()
            } else {
                (0..config.m)
                    .map(|_| rng.gen_range(config.base_quality.0..config.base_quality.1))
                    .collect()
            };
            workers.push(SimulatedWorker {
                id: WorkerId::from(i),
                true_quality: QualityVector::new(quality).expect("generated qualities in range"),
            });
        }
        WorkerPopulation { workers }
    }

    /// Builds a population from explicit quality vectors (tests, figures).
    pub fn from_qualities(qualities: Vec<Vec<f64>>) -> Self {
        let workers = qualities
            .into_iter()
            .enumerate()
            .map(|(i, q)| SimulatedWorker {
                id: WorkerId::from(i),
                true_quality: QualityVector::new(q).expect("valid quality"),
            })
            .collect();
        WorkerPopulation { workers }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when empty (not constructible via `generate`).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Worker by id.
    pub fn worker(&self, id: WorkerId) -> &SimulatedWorker {
        &self.workers[id.index()]
    }

    /// All workers.
    pub fn workers(&self) -> &[SimulatedWorker] {
        &self.workers
    }

    /// The true quality vector of a worker — evaluation-only ground truth.
    pub fn true_quality(&self, id: WorkerId) -> &QualityVector {
        &self.workers[id.index()].true_quality
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_types::{DomainVector, TaskBuilder};

    fn task(l: usize, truth: usize, domain: usize) -> Task {
        TaskBuilder::new(0usize, "t")
            .with_choices((0..l).map(|c| format!("c{c}")))
            .with_ground_truth(truth)
            .with_true_domain(domain)
            .with_domain_vector(DomainVector::one_hot(2, domain))
            .build()
            .unwrap()
    }

    #[test]
    fn answer_accuracy_tracks_true_quality() {
        let w = SimulatedWorker {
            id: WorkerId(0),
            true_quality: QualityVector::new(vec![0.9, 0.3]).unwrap(),
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let t_easy = task(2, 0, 0);
        let t_hard = task(2, 0, 1);
        let trials = 4000;
        let correct_easy = (0..trials)
            .filter(|_| w.answer(&t_easy, AnswerModel::DomainUniform, &mut rng) == 0)
            .count();
        let correct_hard = (0..trials)
            .filter(|_| w.answer(&t_hard, AnswerModel::DomainUniform, &mut rng) == 0)
            .count();
        let acc_easy = correct_easy as f64 / trials as f64;
        let acc_hard = correct_hard as f64 / trials as f64;
        assert!((acc_easy - 0.9).abs() < 0.03, "easy accuracy {acc_easy}");
        assert!((acc_hard - 0.3).abs() < 0.03, "hard accuracy {acc_hard}");
    }

    #[test]
    fn wrong_answers_are_uniform_over_distractors() {
        let w = SimulatedWorker {
            id: WorkerId(0),
            true_quality: QualityVector::new(vec![0.0, 0.0]).unwrap(),
        };
        let t = task(4, 1, 0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..6000 {
            counts[w.answer(&t, AnswerModel::DomainUniform, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "never correct at q=0");
        for (c, &cnt) in counts.iter().enumerate() {
            if c != 1 {
                let frac = cnt as f64 / 6000.0;
                assert!((frac - 1.0 / 3.0).abs() < 0.03, "choice {c}: {frac}");
            }
        }
    }

    #[test]
    fn confused_model_prefers_distractor() {
        let w = SimulatedWorker {
            id: WorkerId(0),
            true_quality: QualityVector::new(vec![0.0, 0.5]).unwrap(),
        };
        let t = task(4, 0, 0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[w.answer(&t, AnswerModel::Confused { bias: 0.8 }, &mut rng)] += 1;
        }
        assert!(counts[1] > counts[2] && counts[1] > counts[3]);
    }

    #[test]
    fn sloppy_model_dilutes_accuracy() {
        let w = SimulatedWorker {
            id: WorkerId(0),
            true_quality: QualityVector::new(vec![1.0, 1.0]).unwrap(),
        };
        let t = task(2, 0, 0);
        let mut rng = SmallRng::seed_from_u64(4);
        let trials = 4000;
        let correct = (0..trials)
            .filter(|_| w.answer(&t, AnswerModel::Sloppy { carelessness: 0.5 }, &mut rng) == 0)
            .count();
        // Expected accuracy: 0.5·1.0 + 0.5·0.5 = 0.75.
        let acc = correct as f64 / trials as f64;
        assert!((acc - 0.75).abs() < 0.03, "{acc}");
    }

    #[test]
    fn adversarial_model_colludes_on_one_distractor() {
        let w = SimulatedWorker {
            id: WorkerId(0),
            true_quality: QualityVector::new(vec![0.9, 0.9]).unwrap(),
        };
        let t = task(4, 0, 0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        let trials = 6000;
        for _ in 0..trials {
            counts[w.answer(&t, AnswerModel::Adversarial { malice: 0.4 }, &mut rng)] += 1;
        }
        // Truth share ≈ (1 − 0.4)·0.9 = 0.54; colluding distractor (choice 1)
        // ≈ 0.4 + 0.6·0.1/3 ≈ 0.42; the other distractors split the rest.
        let truth_frac = counts[0] as f64 / trials as f64;
        let collude_frac = counts[1] as f64 / trials as f64;
        assert!((truth_frac - 0.54).abs() < 0.03, "truth {truth_frac}");
        assert!(
            (collude_frac - 0.42).abs() < 0.03,
            "collusion {collude_frac}"
        );
        assert!(counts[2] < counts[1] / 4 && counts[3] < counts[1] / 4);
    }

    #[test]
    fn adversarial_with_zero_malice_is_domain_uniform() {
        let w = SimulatedWorker {
            id: WorkerId(0),
            true_quality: QualityVector::new(vec![0.8]).unwrap(),
        };
        let t = task(2, 0, 0);
        let trials = 4000;
        let mut rng = SmallRng::seed_from_u64(6);
        let correct = (0..trials)
            .filter(|_| w.answer(&t, AnswerModel::Adversarial { malice: 0.0 }, &mut rng) == 0)
            .count();
        let acc = correct as f64 / trials as f64;
        assert!((acc - 0.8).abs() < 0.03, "{acc}");
    }

    #[test]
    fn uniform_spammer_ignores_quality() {
        let w = SimulatedWorker {
            id: WorkerId(0),
            true_quality: QualityVector::new(vec![0.99, 0.99]).unwrap(),
        };
        let t = task(4, 2, 0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[w.answer(&t, AnswerModel::UniformSpammer, &mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 8000.0;
            assert!((frac - 0.25).abs() < 0.03, "{counts:?}");
        }
    }

    #[test]
    fn sleeper_is_expert_on_golden_and_noise_elsewhere() {
        let w = SimulatedWorker {
            id: WorkerId(0),
            // Nominal quality is irrelevant to a sleeper.
            true_quality: QualityVector::new(vec![0.5, 0.5]).unwrap(),
        };
        let t = task(4, 1, 0);
        let model = AnswerModel::Sleeper {
            golden_quality: 0.95,
        };
        let mut rng = SmallRng::seed_from_u64(8);
        let trials = 6000;
        let golden_ctx = AnswerContext {
            is_golden: true,
            progress: 0.0,
        };
        let correct_golden = (0..trials)
            .filter(|_| w.answer_in_context(&t, model, golden_ctx, &mut rng) == 1)
            .count() as f64
            / trials as f64;
        let correct_normal = (0..trials)
            .filter(|_| w.answer(&t, model, &mut rng) == 1)
            .count() as f64
            / trials as f64;
        assert!((correct_golden - 0.95).abs() < 0.03, "{correct_golden}");
        assert!((correct_normal - 0.25).abs() < 0.03, "{correct_normal}");
    }

    #[test]
    fn clique_members_agree_and_cliques_differ() {
        let w = SimulatedWorker {
            id: WorkerId(0),
            true_quality: QualityVector::new(vec![0.8, 0.8]).unwrap(),
        };
        let mut rng = SmallRng::seed_from_u64(9);
        // With collusion 1.0 the clique answer is deterministic per
        // (task, clique): two draws agree, and it is never the truth.
        let mut cross_clique_disagreements = 0usize;
        for i in 0..40 {
            let t = task(4, i % 4, 0);
            let a0 = w.answer(
                &t,
                AnswerModel::Clique {
                    clique: 0,
                    collusion: 1.0,
                },
                &mut rng,
            );
            let a0b = w.answer(
                &t,
                AnswerModel::Clique {
                    clique: 0,
                    collusion: 1.0,
                },
                &mut rng,
            );
            let a1 = w.answer(
                &t,
                AnswerModel::Clique {
                    clique: 1,
                    collusion: 1.0,
                },
                &mut rng,
            );
            assert_eq!(a0, a0b, "clique 0 must agree with itself on task {i}");
            assert_ne!(a0, i % 4, "collusion never lands on the truth");
            assert_ne!(a1, i % 4, "collusion never lands on the truth");
            if a0 != a1 {
                cross_clique_disagreements += 1;
            }
        }
        // Two cliques hashing over 3 distractors must split on a healthy
        // fraction of tasks (deterministic given the hash; ~2/3 expected).
        assert!(
            cross_clique_disagreements >= 15,
            "cliques should usually disagree: {cross_clique_disagreements}/40"
        );
    }

    #[test]
    fn clique_with_zero_collusion_is_domain_uniform() {
        let w = SimulatedWorker {
            id: WorkerId(0),
            true_quality: QualityVector::new(vec![0.8]).unwrap(),
        };
        let t = task(2, 0, 0);
        let trials = 4000;
        let mut rng = SmallRng::seed_from_u64(10);
        let correct = (0..trials)
            .filter(|_| {
                w.answer(
                    &t,
                    AnswerModel::Clique {
                        clique: 3,
                        collusion: 0.0,
                    },
                    &mut rng,
                ) == 0
            })
            .count();
        let acc = correct as f64 / trials as f64;
        assert!((acc - 0.8).abs() < 0.03, "{acc}");
    }

    #[test]
    fn population_mixture_shapes() {
        let cfg = PopulationConfig {
            m: 4,
            size: 100,
            expert_fraction: 0.4,
            spammer_fraction: 0.1,
            ..Default::default()
        };
        let pop = WorkerPopulation::generate(&cfg);
        assert_eq!(pop.len(), 100);
        // First 40 are experts: exactly one domain above 0.85.
        for w in &pop.workers()[..40] {
            let high = (0..4).filter(|&k| w.true_quality[k] >= 0.85).count();
            assert_eq!(high, 1, "{:?}", w.true_quality);
        }
        // Experts rotate across domains.
        for k in 0..4 {
            assert!(pop.workers()[..40]
                .iter()
                .any(|w| w.true_quality[k] >= 0.85));
        }
        // Spammers are uniformly weak.
        for w in &pop.workers()[40..50] {
            assert!((0..4).all(|k| w.true_quality[k] < 0.56));
        }
    }

    #[test]
    fn population_is_deterministic() {
        let cfg = PopulationConfig::default();
        let a = WorkerPopulation::generate(&cfg);
        let b = WorkerPopulation::generate(&cfg);
        for (x, y) in a.workers().iter().zip(b.workers()) {
            assert_eq!(x.true_quality, y.true_quality);
        }
    }

    #[test]
    fn from_qualities_roundtrip() {
        let pop = WorkerPopulation::from_qualities(vec![vec![0.3, 0.9], vec![0.8, 0.2]]);
        assert_eq!(pop.len(), 2);
        assert_eq!(pop.true_quality(WorkerId(1))[0], 0.8);
    }
}
