//! The protocol between the platform and a task-assignment method.

use docs_types::{Answer, ChoiceIndex, TaskId, WorkerId};

/// A task-assignment method under evaluation.
///
/// The platform drives each method through three calls:
///
/// 1. [`AssignmentStrategy::init_worker`] the first time a worker arrives,
///    with her answers to the shared golden tasks (Section 5.2),
/// 2. [`AssignmentStrategy::assign`] whenever the worker requests a HIT,
/// 3. [`AssignmentStrategy::feedback`] for every answer the worker submits
///    on the method's assignment.
///
/// Each method keeps its own answer state: the parallel comparison of
/// Section 6.1 runs all methods on the *same* worker stream but with
/// independent answer logs.
pub trait AssignmentStrategy {
    /// Display name (used in experiment reports, e.g. "DOCS", "QASCA").
    fn name(&self) -> &'static str;

    /// Called once per new worker with her golden-task answers.
    fn init_worker(&mut self, worker: WorkerId, golden: &[(TaskId, ChoiceIndex)]);

    /// Selects up to `k` tasks for the worker. Tasks the worker already
    /// answered under this method must not be returned. An empty result
    /// tells the platform this method has nothing left to ask this worker.
    fn assign(&mut self, worker: WorkerId, k: usize) -> Vec<TaskId>;

    /// Delivers one submitted answer for a task this method assigned.
    fn feedback(&mut self, answer: Answer);

    /// Final inferred truths, one per task, produced by the method's own
    /// truth-inference procedure (each baseline pairs assignment with the
    /// inference the original paper used).
    fn truths(&self) -> Vec<ChoiceIndex>;
}
